"""Quickstart: the JSON data model, navigation, JNL queries, JSL, schemas.

Run:  python examples/quickstart.py
"""

from repro import JSONTree, Navigator
from repro.jnl import evaluate_unary, parse_jnl, parse_jnl_path, target_nodes
from repro.jsl import parse_jsl_formula, satisfies
from repro.schema import SchemaValidator, parse_schema, schema_to_jsl


def main() -> None:
    # --- The paper's Figure 1 document as a JSON tree -----------------
    doc = JSONTree.from_json(
        """
        {
          "name": {"first": "John", "last": "Doe"},
          "age": 32,
          "hobbies": ["fishing", "yoga"]
        }
        """
    )
    print(f"nodes: {len(doc)}, height: {doc.height()}")

    # --- JSON navigation instructions (Section 2): J[key], J[i] -------
    nav = Navigator(doc)
    print("J[name][first] =", nav["name"]["first"].value())
    print("J[hobbies][1]  =", nav["hobbies"][1].value())
    print("J[hobbies][-1] =", nav["hobbies"][-1].value())  # from the end

    # --- JNL: the navigational logic (Section 4) ----------------------
    # [X_name o X_first] ^ EQ(X_age, 32)
    phi = parse_jnl('has(.name.first) and matches(.age, 32)')
    print("root satisfies phi:", doc.root in evaluate_unary(doc, phi))

    # Non-determinism + recursion: does any descendant equal "yoga"?
    deep = parse_jnl('has((.*|[*])* <matches(eps, "yoga")>)')
    print("some descendant is 'yoga':", doc.root in evaluate_unary(doc, deep))

    # Paths select nodes; here: every hobby.
    hobbies = target_nodes(doc, parse_jnl_path(".hobbies[*]"))
    print("hobbies:", sorted(doc.to_value(n) for n in hobbies))

    # Subtree equality is structural (Section 3.2): whole subtrees.
    twins = JSONTree.from_value({"a": {"x": [1, 2]}, "b": {"x": [1, 2]}})
    print("eq(.a, .b):", twins.root in evaluate_unary(twins, parse_jnl("eq(.a, .b)")))

    # --- JSL: the schema logic (Section 5) ----------------------------
    psi = parse_jsl_formula(
        'some(.name, all(.*, string)) and some(.age, min(17) and max(120))'
    )
    print("JSL validates:", satisfies(doc, psi))

    # --- JSON Schema (Table 1) with the Theorem 1 translation ---------
    schema = parse_schema(
        {
            "type": "object",
            "required": ["name", "age"],
            "properties": {
                "age": {"type": "number", "minimum": 0, "maximum": 120},
                "hobbies": {
                    "type": "array",
                    "additionalItems": {"type": "string"},
                    "uniqueItems": True,
                },
            },
        }
    )
    validator = SchemaValidator(schema)
    print("schema validates:", validator.validate(doc))
    translated = schema_to_jsl(schema)
    print("JSL translation agrees:", satisfies(doc, translated))


if __name__ == "__main__":
    main()
