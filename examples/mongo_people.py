"""MongoDB-style querying on the JNL core (Section 4.1, Example 1).

The paper's Example 1:  db.collection.find({name: {$eq: "Sue"}}, {})

Run:  python examples/mongo_people.py
"""

from repro.mongo import compile_filter
from repro.workloads import people_collection
from repro import api


def main() -> None:
    people = api.collection(people_collection(50, seed=11))

    # The paper's Example 1 (navigation condition J[name] = "Sue").
    sues = people.find({"name.first": {"$eq": "Sue"}})
    print(f"people named Sue: {len(sues)}")

    # Filters compile to JNL unary formulas; inspect one:
    formula = compile_filter({"name.first": {"$eq": "Sue"}})
    print("compiled formula:", type(formula).__name__)

    # Richer filters: ranges, arrays, nested paths, booleans.
    queries = [
        ("adults in Santiago",
         {"age": {"$gte": 18}, "address.city": "Santiago"}),
        ("yogis", {"hobbies": "yoga"}),                 # array containment
        ("two hobbies", {"hobbies": {"$size": 2}}),
        ("chess-playing thirty-somethings",
         {"$and": [{"hobbies": {"$elemMatch": {"$eq": "chess"}}},
                   {"age": {"$gte": 30, "$lt": 40}}]}),
        ("no hobbies or very young",
         {"$or": [{"hobbies": {"$size": 0}}, {"age": {"$lt": 21}}]}),
        ("names not starting with S", {"name.first": {"$not": {"$regex": "^S"}}}),
    ]
    for label, query in queries:
        results = people.find(query)
        sample = [doc["name"]["first"] for doc in results[:4]]
        print(f"{label:38s} -> {len(results):3d} matches {sample}")

    # The second find() argument -- projection, the JSON-to-JSON
    # transformation the paper's Section 6 describes.
    cards = people.find(
        {"address.city": "Santiago", "age": {"$lt": 40}},
        {"name.first": 1, "age": 1},
    )
    print("projected contact cards:", cards[:3])

    full = people.find({"name.first": "Sue"}, {"address": 0, "hobbies": 0})
    print("Sue without address/hobbies:", full[:1])


if __name__ == "__main__":
    main()
