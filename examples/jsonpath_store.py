"""JSONPath on the JNL core (Section 4.1): the classic bookstore.

Run:  python examples/jsonpath_store.py
"""

from repro.jsonpath import jsonpath_query, parse_jsonpath
from repro.jnl import is_deterministic, is_recursive
from repro.model import JSONTree

STORE = JSONTree.from_value(
    {
        "store": {
            "book": [
                {"category": "reference", "author": "Nigel Rees",
                 "title": "Sayings of the Century", "price": 8},
                {"category": "fiction", "author": "Evelyn Waugh",
                 "title": "Sword of Honour", "price": 12},
                {"category": "fiction", "author": "Herman Melville",
                 "title": "Moby Dick", "price": 9},
                {"category": "fiction", "author": "J. R. R. Tolkien",
                 "title": "The Lord of the Rings", "price": 22},
            ],
            "bicycle": {"color": "red", "price": 19},
        }
    }
)

QUERIES = [
    "$.store.book[0].title",
    "$.store.book[*].author",
    "$..price",
    "$.store.book[1:3].title",
    "$.store.book[-1].title",
    "$.store.book[0,2].title",
    "$.store.book[?(@.price < 10)].title",
    '$.store.book[?(@.category == "fiction")].title',
    "$..book[?(@.price > 10)].author",
]


def main() -> None:
    for query in QUERIES:
        path = parse_jsonpath(query)
        flavour = (
            "recursive" if is_recursive(path)
            else "deterministic" if is_deterministic(path)
            else "non-deterministic"
        )
        results = jsonpath_query(STORE, query)
        print(f"{query:45s} [{flavour:17s}] -> {results}")


if __name__ == "__main__":
    main()
