"""Static reasoning about schemas: satisfiability with witnesses.

The paper stresses that satisfiability is "important in the context of
JSON Schema" (e.g. learning schemas from examples).  This example uses
the Proposition 7/10 engine to answer design questions no validator
can: is a schema satisfiable at all?  do two schemas conflict?  and it
reconstructs the paper's Examples 2 and 5.

Run:  python examples/schema_reasoning.py
"""

from repro.jsl import And, Not, parse_jsl
from repro.jsl.satisfiability import jsl_satisfiable
from repro.schema import parse_schema, schema_to_jsl


def main() -> None:
    # --- An unsatisfiable schema: no document can ever validate --------
    broken = parse_schema(
        {
            "allOf": [
                {"type": "number", "minimum": 10},
                {"type": "number", "maximum": 8},
            ]
        }
    )
    result = jsl_satisfiable(schema_to_jsl(broken))
    print("broken schema satisfiable:", result.satisfiable,
          "(complete:", result.complete, ")")

    # --- Witness generation: an instance conforming to a schema -------
    api_schema = parse_schema(
        {
            "type": "object",
            "required": ["id", "tags"],
            "properties": {
                "id": {"type": "number", "minimum": 1},
                "tags": {
                    "type": "array",
                    "items": [{"type": "string", "pattern": "[a-z]{3,8}"}],
                    "additionalItems": {"type": "string"},
                    "uniqueItems": True,
                },
            },
        }
    )
    result = jsl_satisfiable(schema_to_jsl(api_schema))
    print("example instance:", result.witness.to_json())

    # --- Schema compatibility: does S1 admit documents S2 rejects? ----
    s1 = schema_to_jsl(parse_schema({"type": "number", "multipleOf": 6}))
    s2 = schema_to_jsl(parse_schema({"type": "number", "multipleOf": 3}))
    gap = jsl_satisfiable(And(s1, Not(s2)))
    print("multipleOf 6 but not multipleOf 3 possible:", gap.satisfiable)
    gap_reverse = jsl_satisfiable(And(s2, Not(s1)))
    print("multipleOf 3 but not multipleOf 6 possible:",
          gap_reverse.satisfiable,
          "e.g.", gap_reverse.witness.to_json())

    # --- The paper's Example 2: even root-to-leaf paths ----------------
    even = parse_jsl(
        "def g1 := all(.*, $g2);"
        "def g2 := some(.*, true) and all(.*, $g1);"
        "object and some(.*, true) and $g1"
    )
    result = jsl_satisfiable(even)
    print("Example 2 witness (paths of even length):",
          result.witness.to_json())

    # --- The paper's Example 5: complete binary trees via ~Unique -----
    complete = parse_jsl(
        "def g := not some([0:0], true) or "
        "(minch(2) and maxch(2) and not unique and all([0:1], $g));"
        "array and minch(2) and $g"
    )
    result = jsl_satisfiable(complete)
    print("Example 5 witness (complete binary tree, equal siblings):",
          result.witness.to_json())


if __name__ == "__main__":
    main()
