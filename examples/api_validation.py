"""Validating API payloads: recursive schemas and streaming (Section 6).

The paper motivates JSON Schema with Web APIs (the Open API initiative)
and conjectures streaming validation for the deterministic fragment.
This example wires both: a recursive schema with ``definitions`` /
``$ref`` validates nested comment threads, and a deterministic schema
validates a large response *as a token stream*, without building trees.

Run:  python examples/api_validation.py
"""

import json

from repro.jsl import is_deterministic, parse_jsl_formula
from repro.schema import SchemaValidator, parse_schema, schema_to_jsl
from repro.streaming import StreamingJSLValidator

# --- A recursive schema: comment threads reference themselves ---------
THREAD_SCHEMA = parse_schema(
    {
        "definitions": {
            "comment": {
                "type": "object",
                "required": ["author", "body"],
                "properties": {
                    "author": {"type": "string"},
                    "body": {"type": "string"},
                    "replies": {
                        "type": "array",
                        "additionalItems": {"$ref": "#/definitions/comment"},
                    },
                },
            }
        },
        "$ref": "#/definitions/comment",
    }
)

GOOD_THREAD = {
    "author": "sue",
    "body": "JSON trees are deterministic!",
    "replies": [
        {"author": "bob", "body": "keys are unique per object",
         "replies": []},
        {"author": "eve", "body": "and arrays give random access",
         "replies": [{"author": "sue", "body": "exactly"}]},
    ],
}

BAD_THREAD = {
    "author": "sue",
    "body": "oops",
    "replies": [{"author": 42, "body": "numeric author"}],
}


def main() -> None:
    validator = SchemaValidator(THREAD_SCHEMA)
    print("good thread validates:", validator.validate_value(GOOD_THREAD))
    print("bad thread validates: ", validator.validate_value(BAD_THREAD))

    # Theorem 3: the recursive schema is a recursive JSL expression.
    expression = schema_to_jsl(THREAD_SCHEMA)
    print("translated to recursive JSL with definitions:",
          [name for name, _ in expression.definitions])

    # --- Streaming validation of a deterministic constraint -----------
    # "Record 5 has a string name and a numeric age" -- deterministic,
    # so a single pass over the token stream suffices.
    phi = parse_jsl_formula(
        "all([5:5], some(.name, string) and some(.age, number and min(-1)))"
        " and minch(6)"
    )
    assert is_deterministic(phi)
    stream_validator = StreamingJSLValidator(phi)

    records = [{"name": f"user{i}", "age": 20 + i} for i in range(1000)]
    text = json.dumps(records)
    print("streaming over", len(text) // 1024, "KiB of JSON ...")
    print("stream validates:", stream_validator.validate_text(text))
    print("frame high-water mark (memory tracks depth, not size):",
          stream_validator.max_depth)

    records[5]["age"] = "not a number"
    print("corrupted stream validates:",
          stream_validator.validate_text(json.dumps(records)))


if __name__ == "__main__":
    main()
