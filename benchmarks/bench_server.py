"""F7 -- Concurrent serving: snapshot reads, group-committed writes.

Reproduction targets for the asyncio serving tier
(:mod:`repro.server`), pinned by ``run_all.py --check-targets``:

1. **Reader concurrency** -- 8 client processes hammering ``find`` must
   push >= 3x the throughput of one sequential client.  A sequential
   client is round-trip bound (one request in flight); concurrent
   connections overlap framing, planning and socket I/O on the server's
   event loop.  The floor only binds on >= 4 CPUs (fewer cores measure
   the machine, not the code).

2. **Read isolation under writes** -- read p95 while a writer client
   streams updates must stay within 5x of the idle read p95.  Reads
   answer from pinned :class:`~repro.store.snapshot.CollectionSnapshot`
   views and never wait behind the writer queue, so a write burst must
   not stall them.

3. **Group commit** -- with 32 concurrent writer connections against a
   durable (``sync=fsync``) database, the WAL must spend **< 1.5
   fsyncs per 10 batched write requests**: the single writer task
   drains the queue into batches that share one sync
   (:meth:`~repro.store.wal.WriteAheadLog.commit_batch`).

The differential identity (server results == local planner results) is
asserted on every run, gate or not.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import random
import threading
import time

from repro.bench.harness import format_table, smoke_mode

DOCS = 500 if smoke_mode() else 5_000
READS = 80 if smoke_mode() else 2_000
READERS = 8
WRITER_CONNECTIONS = 32
GROUP_WRITES = 64 if smoke_mode() else 1_600

#: Pinned floors/ceilings (see the module docstring).
THROUGHPUT_FLOOR = 3.0
P95_CEILING = 5.0
FSYNCS_PER_10_CEILING = 1.5

_CITIES = [f"city{index:02d}" for index in range(20)]

FILTER = {"city": "city07"}


def _documents(count: int) -> list[dict]:
    rng = random.Random(23)
    return [
        {
            "user": index,
            "age": rng.randrange(18, 90),
            "city": _CITIES[rng.randrange(len(_CITIES))],
            "score": rng.randrange(10_000),
        }
        for index in range(count)
    ]


# ---------------------------------------------------------------------------
# In-process server on a dedicated event-loop thread.
# ---------------------------------------------------------------------------


class _ServerHandle:
    """A :class:`~repro.server.ReproServer` running on its own thread.

    Clients (this process's threads, or worker processes) connect over
    real TCP; the handle exposes the database for direct inspection
    (WAL sync counters) after the workload.
    """

    def __init__(self, path: "str | None" = None, sync: str = "fsync") -> None:
        from repro import api
        from repro.server import ReproServer

        if path is None:
            self.database = api.connect()
        else:
            self.database = api.connect(path, sync=sync)
        self.server = ReproServer(self.database)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        started.wait()
        self.address = self.server.address

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def stop(self) -> None:
        self.run(self.server.aclose())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


# ---------------------------------------------------------------------------
# Client workloads.
# ---------------------------------------------------------------------------


def _timed_reads(address: tuple, count: int) -> list[float]:
    """Sequential finds on one connection; per-request latencies."""
    from repro.client import connect

    latencies = []
    with connect(address) as remote:
        collection = remote.collection()
        for _ in range(count):
            started = time.perf_counter()
            collection.find(FILTER)
            latencies.append(time.perf_counter() - started)
    return latencies


def _reader_worker(address, count, out):
    """One concurrent reader process (spawn-safe top-level function)."""
    _timed_reads(tuple(address), count)
    out.put(count)


def _concurrent_read_throughput(address: tuple, total: int) -> float:
    """``total`` finds spread over READERS processes; ops/second."""
    context = multiprocessing.get_context()
    out = context.Queue()
    share = total // READERS
    workers = [
        context.Process(
            target=_reader_worker, args=(list(address), share, out)
        )
        for _ in range(READERS)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    done = sum(out.get() for _ in workers)
    elapsed = time.perf_counter() - started
    for worker in workers:
        worker.join()
    return done / elapsed


def _update_stream(address: tuple, stop: threading.Event) -> int:
    """A writer client streaming updates until told to stop."""
    from repro.client import connect

    writes = 0
    with connect(address) as remote:
        collection = remote.collection()
        while not stop.is_set():
            collection.update_many(
                {"user": {"$lt": 50}}, {"$inc": {"score": 1}}
            )
            writes += 1
    return writes


async def _async_write_burst(address: tuple, connections: int, total: int):
    """``total`` update requests over ``connections`` concurrent
    clients -- the arrival pattern group commit amortises."""
    from repro.client import aconnect

    share = total // connections

    async def one_writer(index: int) -> None:
        remote = await aconnect(address)
        try:
            collection = remote.collection()
            for step in range(share):
                await collection.update_one(
                    {"user": (index * share + step) % DOCS},
                    {"$inc": {"score": 1}},
                )
        finally:
            await remote.aclose()

    await asyncio.gather(*[one_writer(i) for i in range(connections)])


def _percentile(values: list[float], fraction: float) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(len(ranked) * fraction))]


# ---------------------------------------------------------------------------
# The measured experiment.
# ---------------------------------------------------------------------------


def _measure_all(tmp_dir: str) -> dict:
    from repro import api

    docs = _documents(DOCS)

    # -- volatile server: throughput + isolation --------------------------
    handle = _ServerHandle()
    try:
        handle.database.collection(documents=docs)
        expected = api.collection(docs).find(FILTER)

        from repro.client import connect

        with connect(handle.address) as remote:
            assert remote.collection().find(FILTER) == expected, (
                "server results diverge from the local planner"
            )

        idle_latencies = _timed_reads(handle.address, READS)
        seq_throughput = len(idle_latencies) / sum(idle_latencies)
        conc_throughput = _concurrent_read_throughput(handle.address, READS * READERS)

        stop = threading.Event()
        writer = threading.Thread(
            target=_update_stream, args=(handle.address, stop), daemon=True
        )
        writer.start()
        try:
            contended_latencies = _timed_reads(handle.address, READS)
        finally:
            stop.set()
            writer.join(timeout=10)
    finally:
        handle.stop()

    # -- durable server: group-commit amortisation ------------------------
    durable_dir = os.path.join(tmp_dir, "bench_server_db")
    handle = _ServerHandle(durable_dir, sync="fsync")
    try:
        collection = handle.database.collection(documents=docs)
        wal = collection.engine.wal
        synced_before = wal.sync_count
        metrics = handle.server.metrics
        batched_before = metrics.batched_writes
        asyncio.run(
            _async_write_burst(
                handle.address, WRITER_CONNECTIONS, GROUP_WRITES
            )
        )
        batched = metrics.batched_writes - batched_before
        fsyncs = wal.sync_count - synced_before
        groups = metrics.group_commits
    finally:
        handle.stop()

    return {
        "seq_throughput": seq_throughput,
        "conc_throughput": conc_throughput,
        "idle_p95": _percentile(idle_latencies, 0.95),
        "contended_p95": _percentile(contended_latencies, 0.95),
        "batched_writes": batched,
        "fsyncs": fsyncs,
        "group_commits": groups,
    }


#: Measured ratios of the last check (recorded by ``run_all.py
#: --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}

#: Whether the reader-throughput gate was enforceable (>= 4 CPUs).
LAST_GATE_ACTIVE = False


def _gate_active() -> bool:
    return (os.cpu_count() or 1) >= 4


def speedups() -> dict[str, float]:
    """Measured ratios (the differential identity always asserts)."""
    global LAST_GATE_ACTIVE
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        timings = _measure_all(tmp_dir)
    measured = {
        f"{READERS}-reader throughput vs sequential": (
            timings["conc_throughput"] / timings["seq_throughput"]
        ),
        "contended read p95 vs idle": (
            timings["contended_p95"] / max(timings["idle_p95"], 1e-9)
        ),
        "fsyncs per 10 batched writes": (
            10.0 * timings["fsyncs"] / max(timings["batched_writes"], 1)
        ),
    }
    LAST_GATE_ACTIVE = _gate_active()
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    measured = speedups()
    failures = []
    throughput = measured[f"{READERS}-reader throughput vs sequential"]
    if LAST_GATE_ACTIVE and throughput < THROUGHPUT_FLOOR:
        failures.append(
            f"bench_server: {READERS}-reader throughput {throughput:.1f}x "
            f"< {THROUGHPUT_FLOOR}x sequential target"
        )
    p95_ratio = measured["contended read p95 vs idle"]
    if p95_ratio > P95_CEILING:
        failures.append(
            f"bench_server: contended read p95 {p95_ratio:.1f}x idle "
            f"> {P95_CEILING}x ceiling"
        )
    amortised = measured["fsyncs per 10 batched writes"]
    if amortised >= FSYNCS_PER_10_CEILING:
        failures.append(
            f"bench_server: {amortised:.2f} fsyncs per 10 batched writes "
            f">= {FSYNCS_PER_10_CEILING} ceiling (group commit broken?)"
        )
    return failures


def main() -> str:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        timings = _measure_all(tmp_dir)
    speedup = timings["conc_throughput"] / timings["seq_throughput"]
    p95_ratio = timings["contended_p95"] / max(timings["idle_p95"], 1e-9)
    amortised = 10.0 * timings["fsyncs"] / max(timings["batched_writes"], 1)
    table = format_table(
        "F7 / concurrent serving: snapshot reads + group commit "
        f"(targets: >= {THROUGHPUT_FLOOR}x reader scaling, "
        f"<= {P95_CEILING}x contended p95, "
        f"< {FSYNCS_PER_10_CEILING} fsyncs/10 writes)",
        ["metric", "value"],
        [
            [
                "sequential read throughput",
                f"{timings['seq_throughput']:.0f} ops/s",
            ],
            [
                f"{READERS}-reader throughput",
                f"{timings['conc_throughput']:.0f} ops/s ({speedup:.1f}x)",
            ],
            ["idle read p95", f"{timings['idle_p95'] * 1e3:.2f} ms"],
            [
                "contended read p95",
                f"{timings['contended_p95'] * 1e3:.2f} ms ({p95_ratio:.1f}x)",
            ],
            [
                "group commit",
                f"{timings['batched_writes']} writes / "
                f"{timings['group_commits']} groups / "
                f"{timings['fsyncs']} fsyncs ({amortised:.2f} per 10)",
            ],
        ],
    )
    if not _gate_active():
        table += (
            "\n(throughput gate inactive: needs >= 4 CPUs -- identity and "
            "amortisation checks still enforced)"
        )
    return table


if __name__ == "__main__":
    print(main())
