"""E7 -- Proposition 7: QBF --> JSL satisfiability (PSPACE-hardness).

Reproduction target: the reduction decides exactly like brute-force
QBF expansion on every instance, and cost grows with quantifier count.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure
from repro.jsl.satisfiability import jsl_satisfiable
from repro.reductions import brute_force_qbf, qbf_to_jsl, random_qbf

INSTANCES = [(2, 3), (3, 4), (4, 5), (5, 6)]


@pytest.mark.parametrize("num_vars,num_clauses", INSTANCES)
def test_qbf_reduction_solving(benchmark, num_vars, num_clauses):
    qbf = random_qbf(num_vars, num_clauses, seed=num_vars * 7)
    formula = qbf_to_jsl(qbf)
    result = benchmark(lambda: jsl_satisfiable(formula))
    assert result.satisfiable == brute_force_qbf(qbf)


def main() -> str:
    rows = []
    for num_vars, num_clauses in INSTANCES:
        agreements, total = 0, 6
        solver_time = 0.0
        for seed in range(total):
            qbf = random_qbf(num_vars, num_clauses, seed)
            formula = qbf_to_jsl(qbf)
            solver_time += measure(
                lambda f=formula: jsl_satisfiable(f), repeat=1
            )
            if jsl_satisfiable(formula).satisfiable == brute_force_qbf(qbf):
                agreements += 1
        rows.append(
            [
                f"{num_vars}v/{num_clauses}c",
                f"{agreements}/{total}",
                f"{solver_time / total * 1e3:.1f} ms",
            ]
        )
    return format_table(
        "E7 / Prop 7: QBF -> JSL satisfiability (paper: PSPACE-complete "
        "without Unique; reduction must agree with QBF expansion)",
        ["instance", "agreement", "JSL solver"],
        rows,
    )


if __name__ == "__main__":
    print(main())
