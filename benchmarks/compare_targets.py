"""Diff two ``run_all.py --check-targets --json`` artifacts (warn-only).

Usage::

    python benchmarks/compare_targets.py previous.json current.json

Emits a GitHub-flavoured markdown table of pinned-benchmark speedup
deltas -- CI appends it to the workflow step summary so a PR's effect
on the measured ratios is visible at a glance.  Deliberately
*informational*: timings on shared runners are noisy, so this script
always exits 0 (the enforcing gate is ``--check-targets`` itself); a
missing or old-format previous artifact degrades to a note.
"""

from __future__ import annotations

import json
import sys


def _load(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _flatten(report: dict | None) -> dict[tuple[str, str], float]:
    if not isinstance(report, dict):
        return {}
    speedups = report.get("speedups")
    if not isinstance(speedups, dict):
        return {}
    flat: dict[tuple[str, str], float] = {}
    for module, ratios in speedups.items():
        if not isinstance(ratios, dict):
            continue
        for label, ratio in ratios.items():
            if isinstance(ratio, (int, float)):
                flat[(module, label)] = float(ratio)
    return flat


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: compare_targets.py PREVIOUS.json CURRENT.json",
            file=sys.stderr,
        )
        return 0  # warn-only by design
    previous = _flatten(_load(argv[0]))
    current = _flatten(_load(argv[1]))
    print("### Benchmark speedup deltas vs previous run")
    print()
    if not current:
        print("_No speedup measurements in the current artifact._")
        return 0
    if not previous:
        print("_No previous artifact to compare against (first run, "
              "expired retention, or pre-speedups format); current "
              "measurements below._")
        print()
    print("| benchmark | workload | previous | current | delta |")
    print("|---|---|---:|---:|---:|")
    for (module, label), ratio in sorted(current.items()):
        before = previous.get((module, label))
        if before is None:
            prev_cell, delta_cell = "--", "new"
        else:
            change = (ratio - before) / before * 100.0
            marker = " :warning:" if change <= -20.0 else ""
            prev_cell = f"{before:.1f}x"
            delta_cell = f"{change:+.1f}%{marker}"
        print(f"| {module} | {label} | {prev_cell} | {ratio:.1f}x "
              f"| {delta_cell} |")
    dropped = sorted(set(previous) - set(current))
    if dropped:
        print()
        workloads = ", ".join(f"{module}: {label}" for module, label in dropped)
        print(f"_No longer measured: {workloads}_")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
