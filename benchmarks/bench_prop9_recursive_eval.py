"""E9 -- Proposition 9: recursive JSL evaluation is PTIME.

Reproduction targets: (a) the bottom-up algorithm scales linearly in
|J| where the paper's unfold semantics blows up in formula size, and
(b) the circuit-value reduction evaluates correctly (the PTIME-hardness
direction).
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import (
    SeriesPoint,
    format_table,
    loglog_slope,
    run_series,
)
from repro.jsl import formula_size
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.parser import parse_jsl
from repro.jsl.unfold import unfold
from repro.reductions import circuit_to_jsl, evaluate_circuit, random_circuit
from repro.reductions.circuits import assignment_to_document
from repro.workloads import even_depth_tree

EVEN = parse_jsl(
    "def g1 := all(.*, $g2);"
    "def g2 := some(.*, true) and all(.*, $g1);"
    "$g1"
)

DEPTHS = [4, 6, 8, 10]


@pytest.mark.parametrize("depth", DEPTHS)
def test_bottom_up_even_paths(benchmark, depth):
    tree = even_depth_tree(depth)
    assert benchmark(lambda: satisfies_recursive(tree, EVEN))


@pytest.mark.parametrize("gates", [10, 20, 40])
def test_circuit_value_reduction(benchmark, gates):
    circuit = random_circuit(num_inputs=5, num_gates=gates, seed=gates)
    rng = random.Random(gates)
    inputs = {i: rng.random() < 0.5 for i in range(1, 6)}
    doc = assignment_to_document(circuit, inputs)
    expression = circuit_to_jsl(circuit)
    result = benchmark(lambda: satisfies_recursive(doc, expression))
    assert result == evaluate_circuit(circuit, inputs)


# A definition referencing itself under two different modalities: its
# unfold_J doubles at every height level -- the "very inefficient
# evaluation algorithms" the paper replaces with Proposition 9.
DOUBLING = parse_jsl(
    "def d := all(.a, $d) and all(.b, $d) and maxch(2);"
    "$d"
)


def main() -> str:
    bottom_up = run_series(
        DEPTHS,
        make_input=even_depth_tree,
        run=lambda tree: satisfies_recursive(tree, EVEN),
    )
    sized = [
        SeriesPoint(len(even_depth_tree(d)), p.seconds)
        for d, p in zip(DEPTHS, bottom_up)
    ]
    rows = []
    for depth, point in zip(DEPTHS, bottom_up):
        tree = even_depth_tree(depth)
        unfolded_size = formula_size(unfold(DOUBLING, depth))
        rows.append(
            [
                len(tree),
                f"{point.seconds * 1e3:.2f} ms",
                unfolded_size,
            ]
        )
    return format_table(
        "E9 / Prop 9: recursive JSL evaluation (paper: PTIME bottom-up "
        f"[slope {loglog_slope(sized):.2f}] while unfold_J of a "
        "doubly-referencing definition grows exponentially with height)",
        ["|J|", "bottom-up time", "unfold_J size (doubling def)"],
        rows,
    )


if __name__ == "__main__":
    print(main())
