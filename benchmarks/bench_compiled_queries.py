"""F2 -- Compiled query plans: compile once, evaluate many times.

Reproduction target: the paper's per-evaluation bounds (Propositions 1
and 3) describe the cost *after* the formula is in hand.  A document
store amortises parsing and automaton construction across millions of
executions, so the compiled path (:mod:`repro.query`) must make
repeated evaluation of a cached query >= 5x cheaper per call than the
one-shot path that re-compiles every time.  Differential tests in
``tests/test_query_compiled.py`` pin the compiled results to the
reference evaluator; this script pins the speedup.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure_amortised, smoke_mode
from repro.model.tree import JSONTree
from repro.query import (
    compile_mongo_find,
    compile_query,
    evaluate_queries,
)
from repro.workloads import people_collection
from repro import api

# Small documents and chunky query texts: the regime where compilation
# dominates one-shot evaluation, i.e. where caching pays.
DOC = JSONTree.from_value(
    {
        "name": {"first": "Sue", "last": "Doe"},
        "age": 47,
        "address": {"city": "Santiago", "zip": "832"},
        "hobbies": ["fishing", "yoga", "chess"],
    }
)
STORE = JSONTree.from_value(
    {"library": [person for person in people_collection(4, seed=7)]}
)

JNL_TEXT = (
    "has(.age<test(min(29)) and test(max(60))>) "
    'and matches(.address.city, "Santiago") and has(.hobbies[0:5])'
)
JSONPATH_TEXT = "$.library[?(@.age >= 18)].name.first"
MONGO_FILTER = {
    "age": {"$gte": 30, "$lt": 60},
    "address.city": {"$in": ["Santiago", "Valdivia", "Arica"]},
    "hobbies": {"$elemMatch": {"$regex": "fish|yoga"}},
}

PEOPLE = api.collection(people_collection(300, seed=4))

# Ten queries sharing subformulas: the shared-evaluator batch memoises
# the common `age >= 18` filter across all of them.
QUERY_FAMILY = [
    f"$.library[?(@.age >= 18)].{field}"
    for field in (
        "name.first", "name.last", "age", "address.city", "address.zip",
        "id", "hobbies[0]", "hobbies[1]", "name", "hobbies",
    )
]


def _one_shot(source, dialect, tree):
    """The pre-compiled-subsystem behaviour: recompile on every call."""
    return compile_query(source, dialect, cache=None).values(tree)


def _mongo_one_shot():
    return compile_mongo_find(MONGO_FILTER, cache=None).matches(DOC)


def _rows():
    calls = 200
    rows = []
    for label, one_shot, cached in [
        (
            "JNL filter (root match)",
            lambda: compile_query(JNL_TEXT, "jnl", cache=None).matches(DOC),
            lambda query=compile_query(JNL_TEXT, "jnl"): query.matches(DOC),
        ),
        (
            "JSONPath",
            lambda: _one_shot(JSONPATH_TEXT, "jsonpath", STORE),
            lambda query=compile_query(JSONPATH_TEXT, "jsonpath"): query.values(
                STORE
            ),
        ),
        (
            "Mongo find filter",
            _mongo_one_shot,
            lambda query=compile_mongo_find(MONGO_FILTER): query.matches(DOC),
        ),
    ]:
        cold = measure_amortised(one_shot, calls=calls)
        warm = measure_amortised(cached, calls=calls)
        rows.append((label, cold, warm, cold / warm))
    return rows


def _batch_rows():
    queries = [compile_query(text, "jsonpath") for text in QUERY_FAMILY]

    def independent():
        return [query.values(STORE) for query in queries]

    def shared():
        return evaluate_queries(queries, STORE)

    assert independent() == shared()
    solo = measure_amortised(independent, calls=20)
    batch = measure_amortised(shared, calls=20)
    return [("10 JSONPaths, shared evaluator", solo, batch, solo / batch)]


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}


def amortised_speedups() -> dict[str, float]:
    """Per-dialect one-shot/cached per-call ratios (used by tests)."""
    measured = {label: speedup for label, _, _, speedup in _rows()}
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    speedups = amortised_speedups()
    best = max(speedups.values())
    if best < 5.0:
        return [
            "bench_compiled_queries: best amortised speedup "
            f"{best:.1f}x < 5x target ({speedups})"
        ]
    return []


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# ---------------------------------------------------------------------------


def test_cached_jsonpath(benchmark):
    query = compile_query(JSONPATH_TEXT, "jsonpath")
    results = benchmark(lambda: query.values(STORE))
    assert all(isinstance(name, str) for name in results)


def test_one_shot_jsonpath(benchmark):
    results = benchmark(lambda: _one_shot(JSONPATH_TEXT, "jsonpath", STORE))
    assert all(isinstance(name, str) for name in results)


def test_collection_scan(benchmark):
    results = benchmark(lambda: PEOPLE.find(MONGO_FILTER))
    assert all(30 <= doc["age"] < 60 for doc in results)


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_amortised_speedup_target():
    speedups = amortised_speedups()
    assert max(speedups.values()) >= 5.0, speedups


def main() -> str:
    rows = _rows() + _batch_rows()
    table = format_table(
        "F2 / compiled query plans: amortised per-call cost "
        "(target: >= 5x for cached vs one-shot)",
        ["query", "one-shot", "cached", "speedup"],
        [
            [label, f"{cold * 1e6:.1f} us", f"{warm * 1e6:.1f} us", f"{ratio:.1f}x"]
            for label, cold, warm, ratio in rows
        ],
    )
    if not smoke_mode():
        best = max(ratio for _, _, _, ratio in rows[:3])
        table += f"\n(best single-query amortised speedup: {best:.1f}x)"
    return table


if __name__ == "__main__":
    print(main())
