"""S1 -- Section 6: streaming validation memory profile.

Reproduction target: the paper conjectures deterministic JSL (without
tree equality) validates streams in constant memory.  Peak memory of
the streaming validator must stay flat as documents grow, against the
linearly growing in-memory pipeline.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.bench.harness import format_table
from repro.jsl.evaluator import satisfies
from repro.jsl.parser import parse_jsl_formula
from repro.model.tree import JSONTree
from repro.streaming import StreamingJSLValidator
from repro.workloads import people_collection

FORMULA = parse_jsl_formula(
    "all([5:5], some(.name, some(.first, string)) and some(.age, number))"
)

SIZES = [200, 400, 800]


def _doc_text(count: int) -> str:
    return json.dumps(people_collection(count, seed=1))


@pytest.mark.parametrize("count", SIZES)
def test_streaming_validation(benchmark, count):
    text = _doc_text(count)
    validator = StreamingJSLValidator(FORMULA)
    assert benchmark(lambda: validator.validate_text(text))


@pytest.mark.parametrize("count", SIZES)
def test_in_memory_validation(benchmark, count):
    text = _doc_text(count)

    def pipeline():
        tree = JSONTree.from_json(text)
        return satisfies(tree, FORMULA)

    assert benchmark(pipeline)


def _peak_memory(fn) -> int:
    tracemalloc.start()
    fn()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def main() -> str:
    rows = []
    validator = StreamingJSLValidator(FORMULA)
    for count in SIZES:
        text = _doc_text(count)
        stream_peak = _peak_memory(lambda: validator.validate_text(text))
        memory_peak = _peak_memory(
            lambda: satisfies(JSONTree.from_json(text), FORMULA)
        )
        rows.append(
            [
                count,
                f"{len(text) // 1024} KiB",
                f"{stream_peak // 1024} KiB",
                f"{memory_peak // 1024} KiB",
                validator.max_depth,
            ]
        )
    return format_table(
        "S1 / Section 6: streaming vs in-memory validation peak memory "
        "(conjecture: streaming stays flat; frames track depth only)",
        ["docs", "text size", "streaming peak", "in-memory peak", "max frames"],
        rows,
    )


if __name__ == "__main__":
    print(main())
