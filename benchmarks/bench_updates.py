"""F6 -- Update pipeline: delta index maintenance vs remove+reinsert.

Reproduction target: the write path must not pay read-path prices.  An
update compiles once into a ``CompiledUpdate`` program, selects its
targets through the planner (index-pruned), and maintains the
secondary indexes by **delta** -- only postings whose per-document
entry refcount crosses zero are touched, and the tree rebuild is
deferred to the next read.  The pinned floor: on a 10k-document
collection, counter-style updates must run >= 5x faster than the same
updates with ``maintenance="rebuild"`` (drop and re-insert the full
posting set of every modified document, eager tree rebuild) -- with
final documents and index tables differentially identical, pinned by
``tests/test_update.py`` and re-asserted here.
"""

from __future__ import annotations

import copy

import pytest

from repro.bench.harness import format_table, measure, smoke_mode
from repro.workloads import people_collection
from repro import api

DOCS = 300 if smoke_mode() else 10_000

_PEOPLE = people_collection(DOCS, seed=23)

# (label, filter, update, pinned floor).  The counter workloads are the
# headline (>= 5x, the issue's pinned target); $push keeps every
# modified array growing across rounds, so its delta is bigger and the
# floor lower.
WORKLOADS = [
    (
        f"counter $inc, all {DOCS} docs",
        {},
        {"$inc": {"counters.visits": 1}},
        5.0,
    ),
    (
        "selective $inc, city eq (~25%)",
        {"address.city": "Talca"},
        {"$inc": {"age": 1}},
        5.0,
    ),
    (
        "$push hobby, city eq (~25%)",
        {"address.city": "Talca"},
        {"$push": {"hobbies": "kayaking"}},
        3.0,
    ),
]

#: Measured naive/delta ratios of the last speedups() call (what
#: ``run_all.py --check-targets --json`` records for the CI delta
#: comparison).
LAST_SPEEDUPS: dict[str, float] = {}


def _measure_one(filter_doc, update_doc, maintenance: str) -> float:
    collection = api.collection(copy.deepcopy(_PEOPLE))
    # Warm: compile caches, first-touch to_value materialisation.
    collection.update_many(filter_doc, update_doc, maintenance=maintenance)
    return measure(
        lambda: collection.update_many(
            filter_doc, update_doc, maintenance=maintenance
        ),
        repeat=5,
    )


def _rows():
    rows = []
    for label, filter_doc, update_doc, _floor in WORKLOADS:
        rebuild = _measure_one(filter_doc, update_doc, "rebuild")
        delta = _measure_one(filter_doc, update_doc, "delta")
        rows.append((label, rebuild, delta, rebuild / delta))
    return rows


def _check_results_identical() -> None:
    """Delta maintenance must leave exactly the documents *and* index
    tables that remove+reinsert leaves (the strategies only differ in
    which postings they touch along the way)."""
    delta = api.collection(copy.deepcopy(_PEOPLE))
    rebuild = api.collection(copy.deepcopy(_PEOPLE))
    for _, filter_doc, update_doc, _floor in WORKLOADS:
        delta.update_many(filter_doc, update_doc, maintenance="delta")
        rebuild.update_many(filter_doc, update_doc, maintenance="rebuild")
    assert [tree.to_value() for _, tree in delta.documents()] == [
        tree.to_value() for _, tree in rebuild.documents()
    ]
    assert delta.indexes.snapshot() == rebuild.indexes.snapshot()


def _check_index_pruned() -> None:
    """Selective filters must provably route through the planner."""
    collection = api.collection(copy.deepcopy(_PEOPLE))
    report = collection.explain_update(
        {"address.city": "Talca"}, {"$inc": {"age": 1}}
    )
    assert report.used_indexes, report
    assert report.scanned < report.total, report


def speedups() -> dict[str, float]:
    """Per-workload rebuild/delta ratios (used by tests and CI)."""
    _check_results_identical()
    _check_index_pruned()
    measured = {label: ratio for label, _, _, ratio in _rows()}
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    floors = {label: floor for label, _, _, floor in WORKLOADS}
    failures = []
    for label, ratio in speedups().items():
        floor = floors[label]
        if ratio < floor:
            failures.append(
                f"bench_updates: {label} delta-maintenance speedup "
                f"{ratio:.1f}x < {floor:.0f}x target"
            )
    return failures


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# ---------------------------------------------------------------------------


def test_delta_update(benchmark):
    collection = api.collection(copy.deepcopy(_PEOPLE))
    benchmark(
        lambda: collection.update_many(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}
        )
    )
    assert collection.count({"address.city": "Talca"}) > 0


def test_rebuild_update(benchmark):
    collection = api.collection(copy.deepcopy(_PEOPLE))
    benchmark(
        lambda: collection.update_many(
            {"address.city": "Talca"},
            {"$inc": {"age": 1}},
            maintenance="rebuild",
        )
    )
    assert collection.count({"address.city": "Talca"}) > 0


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_delta_speedup_target():
    assert not check_targets(), speedups()


def main() -> str:
    _check_results_identical()
    _check_index_pruned()
    rows = _rows()
    table = format_table(
        "F6 / update pipeline: delta index maintenance vs remove+reinsert "
        "(target: >= 5x for counter updates)",
        ["workload", "remove+reinsert", "delta", "speedup"],
        [
            [
                label,
                f"{cold * 1e3:.2f} ms",
                f"{warm * 1e3:.2f} ms",
                f"{ratio:.1f}x",
            ]
            for label, cold, warm, ratio in rows
        ],
    )
    collection = api.collection(copy.deepcopy(_PEOPLE))
    report = collection.explain_update(
        {"address.city": "Talca"}, {"$inc": {"age": 1}}
    )
    table += (
        f"\n(selective workload: {report.total} documents, "
        f"{report.candidates} candidates after index pruning, "
        f"{report.modified} would be modified, touching "
        f"{report.entries_added + report.entries_removed} postings in "
        f"{'/'.join(report.touched_tables)})"
    )
    if not smoke_mode():
        best = max(ratio for _, _, _, ratio in rows)
        table += f"\n(best delta speedup: {best:.1f}x)"
    return table


if __name__ == "__main__":
    print(main())
