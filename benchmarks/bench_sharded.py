"""F6 -- Sharded scatter-gather: 4-shard parallel vs one collection.

Reproduction target: hash-partitioning a collection across a worker
pool must buy near-linear scaling on the workloads that dominate bulk
document serving -- ingest (per-shard index builds run concurrently)
and selective ``$match`` + ``$group`` aggregation (each shard prunes
through its own postings, folds survivors map-side, and only partial
accumulator states cross the process boundary).  Over >= 1M documents
the 4-shard pool must be >= 2.5x faster than the single-collection
path on both -- with results differentially identical, pinned by
``tests/test_sharded.py`` and re-asserted here.

The floor only binds where the hardware can show it: comparing 4-way
parallelism against one core measures the machine, not the code, so
the gate requires >= 4 CPUs and a started worker pool (CI's runners
have 4).  The identity checks always run.
"""

from __future__ import annotations

import gc
import os
import random
import time

import pytest

from repro.bench.harness import format_table, measure, smoke_mode
from repro.mongo.aggregate import compile_pipeline
from repro.store import ShardedCollection
from repro import api

DOCS = 2_000 if smoke_mode() else 1_000_000
SHARDS = 4

#: The pinned scaling floor (4 shards vs the single-collection path).
FLOOR = 2.5

_CITIES = [f"city{index:02d}" for index in range(20)]


def _documents(count: int) -> list[dict]:
    """Flat 4-field records: heavy enough to index, cheap to pickle
    (the batches cross the worker pipes during sharded ingest)."""
    rng = random.Random(97)
    return [
        {
            "user": index,
            "age": rng.randrange(18, 90),
            "city": _CITIES[rng.randrange(len(_CITIES))],
            "score": rng.randrange(10_000),
        }
        for index in range(count)
    ]


# A 1-in-20 equality: the city postings prune ~95% of every shard
# before any value-space work, the $group folds survivors map-side and
# only ~70 partial states per shard reach the coordinator.
GROUP_PIPELINE = [
    {"$match": {"city": "city07"}},
    {
        "$group": {
            "_id": "$age",
            "n": {"$count": {}},
            "avg_score": {"$avg": "$score"},
        }
    },
    {"$sort": {"_id": 1}},
]

# Order-sensitive merge: per-shard sorted runs, k-way heap merge, with
# the $skip+$limit window truncating each run map-side.
TOPK_PIPELINE = [
    {"$match": {"city": "city07"}},
    {"$sort": {"score": -1, "user": 1}},
    {"$skip": 5},
    {"$limit": 25},
]


def _gate_active(parallel: bool) -> bool:
    return parallel and (os.cpu_count() or 1) >= SHARDS


def _measure_all() -> dict:
    """Build both sides sequentially (never resident together -- the
    1M-doc index is the memory hog), timing ingest and the pipelines.
    """
    docs = _documents(DOCS)
    repeat = 1 if smoke_mode() else 3
    group = compile_pipeline(GROUP_PIPELINE)
    topk = compile_pipeline(TOPK_PIPELINE)

    started = time.perf_counter()
    single = api.collection(docs)
    single_ingest = time.perf_counter() - started
    single_group = measure(lambda: group.execute(single), repeat=repeat)
    expected_group = group.execute(single)
    expected_topk = topk.execute(single)
    del single
    gc.collect()

    started = time.perf_counter()
    sharded = ShardedCollection(docs, shards=SHARDS)
    sharded_ingest = time.perf_counter() - started
    try:
        parallel = sharded.parallel
        sharded_group = measure(lambda: group.execute(sharded), repeat=repeat)
        # Differential identity: scatter-gather is an execution
        # strategy, never a semantics change.
        assert group.execute(sharded) == expected_group
        assert topk.execute(sharded) == expected_topk
        assert len(sharded) == DOCS
        report = sharded.explain_aggregate(GROUP_PIPELINE)
        assert report.merge == "group-merge", report
        assert len(report.shards) == SHARDS, report
        # Every shard must prune through its own postings.
        assert all(shard.used_indexes for shard in report.shards), report
        assert all(shard.scanned < shard.total for shard in report.shards)
    finally:
        sharded.close()
    return {
        "parallel": parallel,
        "single_ingest": single_ingest,
        "sharded_ingest": sharded_ingest,
        "single_group": single_group,
        "sharded_group": sharded_group,
    }


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}

#: Whether the last speedups call ran with an enforceable gate
#: (worker pool up, >= SHARDS CPUs).
LAST_GATE_ACTIVE = False


def speedups() -> dict[str, float]:
    """Single-collection / 4-shard ratios (used by tests and CI)."""
    global LAST_GATE_ACTIVE
    timings = _measure_all()
    measured = {
        f"bulk ingest ({DOCS} docs, {SHARDS} shards)": (
            timings["single_ingest"] / timings["sharded_ingest"]
        ),
        f"$match+$group ({DOCS} docs, {SHARDS} shards)": (
            timings["single_group"] / timings["sharded_group"]
        ),
    }
    LAST_GATE_ACTIVE = _gate_active(timings["parallel"])
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    measured = speedups()  # identity checks run unconditionally
    if not LAST_GATE_ACTIVE:
        return []
    return [
        f"bench_sharded: {label} sharded speedup "
        f"{ratio:.1f}x < {FLOOR}x target"
        for label, ratio in measured.items()
        if ratio < FLOOR
    ]


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# The entries cap the corpus so an interactive pytest run stays quick;
# the pinned 1M-doc gate lives in check_targets/CI.
# ---------------------------------------------------------------------------

_BENCH_DOCS = min(DOCS, 20_000)


@pytest.fixture(scope="module")
def _bench_pair():
    docs = _documents(_BENCH_DOCS)
    single = api.collection(docs)
    sharded = ShardedCollection(docs, shards=SHARDS)
    yield single, sharded
    sharded.close()


def test_single_collection_aggregate(benchmark, _bench_pair):
    single, _ = _bench_pair
    compiled = compile_pipeline(GROUP_PIPELINE)
    results = benchmark(lambda: compiled.execute(single))
    assert results


def test_sharded_aggregate(benchmark, _bench_pair):
    single, sharded = _bench_pair
    compiled = compile_pipeline(GROUP_PIPELINE)
    results = benchmark(lambda: compiled.execute(sharded))
    assert results == compiled.execute(single)


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_sharded_speedup_target():
    assert not check_targets(), LAST_SPEEDUPS


def main() -> str:
    timings = _measure_all()
    rows = [
        (
            f"bulk ingest ({DOCS} docs)",
            timings["single_ingest"],
            timings["sharded_ingest"],
        ),
        (
            f"$match+$group, 1-in-20 eq ({DOCS} docs)",
            timings["single_group"],
            timings["sharded_group"],
        ),
    ]
    table = format_table(
        f"F6 / sharded scatter-gather: {SHARDS}-shard worker pool vs the "
        f"single-collection path (target: >= {FLOOR}x on >= 4 CPUs)",
        ["workload", "1 collection", f"{SHARDS} shards", "speedup"],
        [
            [label, f"{cold:.3f} s", f"{warm:.3f} s", f"{cold / warm:.1f}x"]
            for label, cold, warm in rows
        ],
    )
    mode = "parallel" if timings["parallel"] else "serial fallback"
    table += f"\n(worker pool: {mode}; cpus: {os.cpu_count()})"
    if not _gate_active(timings["parallel"]):
        table += (
            f"\n(gate inactive: needs a started pool and >= {SHARDS} CPUs "
            "-- identity checks still enforced)"
        )
    return table


if __name__ == "__main__":
    print(main())
