"""The semantic optimizer's three pinned wins, measured honestly.

(a) *Unsat => empty*: a filter the schema refutes answers without
    touching an index or a document.  The baseline cannot hide behind
    postings -- ``$not`` lifts to TRUE in the Pred layer, so the
    unoptimized path full-scans every document.
(b) *Implied => verify-free*: a filter the schema entails drops every
    per-document verification call (counted, not timed).
(c) *Timeout fall-through*: a prover starved to a zero budget must
    cost (almost) nothing -- the optimizer is a pure performance
    question, never a tax.

Pinned gates (``run_all.py --check-targets``): (a) >= 20x on 100k
docs, (b) >= 90% of verify calls dropped, (c) <= 5% overhead vs
``optimize="off"``.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import api
from repro.bench.harness import format_table, measure, smoke_mode
from repro.query import compile_mongo_find, optimizer

DOCS = 2_000 if smoke_mode() else 100_000

#: Pinned floors/ceilings (the CI gate).
FLOOR_UNSAT_SPEEDUP = 20.0
FLOOR_VERIFY_DROP = 0.90
CEIL_TIMEOUT_OVERHEAD = 1.05

SCHEMA = {
    "type": "object",
    "required": ["age", "name"],
    "properties": {
        "age": {"type": "number", "minimum": 0, "maximum": 120},
        "name": {"type": "string"},
    },
}

#: Schema-refuted, postings-proof filter: the Pred layer lifts ``$not``
#: to TRUE, so without the semantic verdict every document is scanned.
UNSAT_FILTER = {"age": {"$not": {"$lte": 200}}}

#: Schema-entailed filter: matches everything, and the proof discharges
#: the per-document verification entirely.
IMPLIED_FILTER = {"age": {"$gte": 0}}

_OFF = {"no_semantic": True}


def _documents(count: int) -> list[dict]:
    return [{"age": index % 120, "name": f"u{index}"} for index in range(count)]


def _collection():
    return api.collection(_documents(DOCS), schema=SCHEMA)


def _timeout_filters(pivots: list[int]) -> list[dict]:
    """Satisfiable, postings-proof filters with distinct texts.

    Distinct texts => distinct verdict-cache keys, so every query pays
    a fresh proof attempt; satisfiable (the schema admits ``age`` above
    the pivot), so the emptiness obligation fails and the zero budget
    trips *between* obligations -- the starved fall-through under test.
    """
    return [{"age": {"$not": {"$lte": pivot}}} for pivot in pivots]


def _measure_all() -> dict:
    people = _collection()
    repeat = 1 if smoke_mode() else 5

    # (a) unsat => empty: proved short-circuit vs forced full scan.
    assert people.count(UNSAT_FILTER) == 0
    assert people.count(UNSAT_FILTER, hint=_OFF) == 0
    unsat_on = measure(lambda: people.count(UNSAT_FILTER), repeat=repeat)
    unsat_off = measure(
        lambda: people.count(UNSAT_FILTER, hint=_OFF), repeat=repeat
    )

    # (b) implied => verify-free, counted per document.
    optimizer.reset_verify_calls()
    matched = len(people.find(IMPLIED_FILTER))
    verify_on = optimizer.verify_calls()
    optimizer.reset_verify_calls()
    assert len(people.find(IMPLIED_FILTER, hint=_OFF)) == matched == DOCS
    verify_off = optimizer.verify_calls()
    drop = 1.0 - (verify_on / verify_off) if verify_off else 0.0

    # (c) timeout fall-through.  The starved path *is* the classic
    # path plus exactly one (instantly deadline-tripped) proof
    # attempt, so the overhead is the attempt's cost over the scan's
    # -- measured separately, because a full-verification scan of
    # ``DOCS`` documents is seconds of work with run-to-run noise far
    # above the 5% ceiling, while the attempt itself is microseconds.
    starved = optimizer.OptimizerConfig(budget_ms=0.0)
    starved_filter = _timeout_filters([119])[0]
    starved_query = compile_mongo_find(starved_filter)
    probe = optimizer.semantic_plan(
        people, starved_query, config=starved, cache=None
    )
    assert probe is not None and probe.verdict.timed_out, probe

    def starved_attempt() -> None:
        # cache=None: every call pays the full cache-miss attempt.
        optimizer.semantic_plan(people, starved_query, config=starved, cache=None)

    calls = 5 if smoke_mode() else 50
    started = perf_counter()
    for _ in range(calls):
        starved_attempt()
    attempt = (perf_counter() - started) / calls
    scan = measure(
        lambda: people.count(starved_filter, hint=_OFF),
        repeat=min(repeat, 2),
    )

    return {
        "unsat_on": unsat_on,
        "unsat_off": unsat_off,
        "verify_on": verify_on,
        "verify_off": verify_off,
        "drop": drop,
        "timeout_attempt": attempt,
        "timeout_scan": scan,
    }


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}


def speedups() -> dict[str, float]:
    """The three gated ratios (used by tests and CI)."""
    timings = _measure_all()
    measured = {
        f"unsat count short-circuit ({DOCS} docs)": (
            timings["unsat_off"] / timings["unsat_on"]
        ),
        f"implied verify-call drop ({DOCS} docs)": timings["drop"],
        "timeout fall-through overhead (on/off)": (
            (timings["timeout_scan"] + timings["timeout_attempt"])
            / timings["timeout_scan"]
        ),
    }
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    measured = speedups()
    unsat_label = f"unsat count short-circuit ({DOCS} docs)"
    drop_label = f"implied verify-call drop ({DOCS} docs)"
    overhead_label = "timeout fall-through overhead (on/off)"
    failures = []
    if measured[unsat_label] < FLOOR_UNSAT_SPEEDUP:
        failures.append(
            f"bench_optimizer: unsat speedup {measured[unsat_label]:.1f}x "
            f"< {FLOOR_UNSAT_SPEEDUP}x target"
        )
    if measured[drop_label] < FLOOR_VERIFY_DROP:
        failures.append(
            f"bench_optimizer: verify-call drop {measured[drop_label]:.0%} "
            f"< {FLOOR_VERIFY_DROP:.0%} target"
        )
    if measured[overhead_label] > CEIL_TIMEOUT_OVERHEAD:
        failures.append(
            "bench_optimizer: timeout fall-through overhead "
            f"{measured[overhead_label]:.2f}x > "
            f"{CEIL_TIMEOUT_OVERHEAD}x ceiling"
        )
    return failures


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# The pinned 100k-doc gate lives in check_targets/CI.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def people():
    return _collection()


def test_unsat_semantic(benchmark, people):
    benchmark(lambda: people.count(UNSAT_FILTER))


def test_unsat_classic(benchmark, people):
    benchmark(lambda: people.count(UNSAT_FILTER, hint=_OFF))


def test_implied_semantic(benchmark, people):
    benchmark(lambda: people.count(IMPLIED_FILTER))


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_targets():
    assert not check_targets(), LAST_SPEEDUPS


def main() -> str:
    measured = speedups()
    rows = [[label, f"{value:.2f}x"] for label, value in measured.items()]
    return format_table(
        "Semantic optimizer: unsat short-circuit, verify-free implied "
        f"filters, starved-prover fall-through ({DOCS} docs; targets: "
        f">= {FLOOR_UNSAT_SPEEDUP:.0f}x, >= {FLOOR_VERIFY_DROP:.0%}, "
        f"<= {CEIL_TIMEOUT_OVERHEAD:.2f}x)",
        ["measurement", "ratio"],
        rows,
    )


if __name__ == "__main__":
    print(main())
