"""F4 -- Indexed collections: prune with indexes, scan only survivors.

Reproduction target: the store layer must make *selective* queries over
a many-document collection cheap.  The PR-1 batch APIs already amortise
compilation, but still evaluate every document; the store's secondary
indexes (path/value/kind/key-presence postings over the stripped key
paths of :mod:`repro.query.ir`) let the planner intersect a handful of
postings and run the compiled evaluation on the few candidate
documents only.  On a 10k-document collection, selective queries must
run >= 10x faster index-backed than the PR-1 full batch scan -- with
identical results, pinned by the differential tests in
``tests/test_planner.py`` and re-asserted here.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure, smoke_mode
from repro.query import compile_mongo_find, compile_query, filter_many
from repro.workloads import people_collection
from repro import api

DOCS = 300 if smoke_mode() else 10_000

_PEOPLE = people_collection(DOCS, seed=11)
COLLECTION = api.collection(_PEOPLE)
TREES = COLLECTION.trees  # The PR-1 view: same trees, no indexes.

# Selective workloads: equality postings cut 10k documents to a few
# dozen candidates before any tree is evaluated.  The JSONPath one
# looks up a near-unique zip code through a wildcard filter (pruned by
# the anywhere-value posting).
MONGO_FILTER = {
    "name.first": "Sue",
    "name.last": "Chen",
    "address.city": "Santiago",
}
_ZIP = _PEOPLE[DOCS // 2]["address"]["zip"]
JSONPATH_TEXT = f'$.address[?(@ == "{_ZIP}")]'
JNL_TEXT = 'matches(.address.city, "Talca") and has(.age<test(min(84))>)'


def _rows():
    rows = []
    for label, query, batch_scan in [
        (
            f"Mongo find, 3-way eq ({DOCS} docs)",
            compile_mongo_find(MONGO_FILTER),
            lambda query: filter_many(query, TREES),
        ),
        (
            f"JNL filter, eq + range ({DOCS} docs)",
            compile_query(JNL_TEXT, "jnl"),
            lambda query: [tree.to_value() for tree in TREES if query.matches(tree)],
        ),
        (
            f"JSONPath tail filter ({DOCS} docs)",
            compile_query(JSONPATH_TEXT, "jsonpath"),
            lambda query: [values for tree in TREES if (values := query.values(tree))],
        ),
    ]:
        from repro.query import planner

        def indexed(query=query):
            return planner.find_documents(COLLECTION, query)

        def scan(query=query, batch_scan=batch_scan):
            return batch_scan(query)

        cold = measure(scan)
        warm = measure(indexed)
        rows.append((label, cold, warm, cold / warm))
    return rows


def _check_results_identical() -> None:
    """Index-backed results must equal the full scan, document for
    document (the planner only ever *skips* non-matches)."""
    from repro.query import planner

    query = compile_mongo_find(MONGO_FILTER)
    assert planner.find_documents(COLLECTION, query) == filter_many(query, TREES)


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}


def speedups() -> dict[str, float]:
    """Per-workload scan/indexed ratios (used by tests and CI)."""
    _check_results_identical()
    measured = {label: ratio for label, _, _, ratio in _rows()}
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


# Every workload is gated individually -- the three stress different
# posting tables (eq+tails, eq+range, anywhere-value), so a max() gate
# would let a single-table pruning regression slip.  The JNL floor is
# lower: its range predicate unions postings per distinct value, which
# is inherently costlier than a point equality lookup.
_FLOORS = {"Mongo": 10.0, "JSONPath": 10.0, "JNL": 5.0}


def _floor_for(label: str) -> float:
    for prefix, floor in _FLOORS.items():
        if label.startswith(prefix):
            return floor
    return 10.0


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    failures = []
    for label, ratio in speedups().items():
        floor = _floor_for(label)
        if ratio < floor:
            failures.append(
                f"bench_collection_queries: {label} index-backed speedup "
                f"{ratio:.1f}x < {floor:.0f}x target"
            )
    return failures


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# ---------------------------------------------------------------------------


def test_indexed_find(benchmark):
    from repro.query import planner

    query = compile_mongo_find(MONGO_FILTER)
    results = benchmark(lambda: planner.find_documents(COLLECTION, query))
    assert all(doc["name"]["first"] == "Sue" for doc in results)


def test_batch_scan_find(benchmark):
    query = compile_mongo_find(MONGO_FILTER)
    results = benchmark(lambda: filter_many(query, TREES))
    assert all(doc["name"]["first"] == "Sue" for doc in results)


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_indexed_speedup_target():
    assert not check_targets(), speedups()


def main() -> str:
    _check_results_identical()
    rows = _rows()
    table = format_table(
        "F4 / indexed collection queries: selective query latency "
        "(target: >= 10x for index-backed vs PR-1 batch scan)",
        ["workload", "batch scan", "index-backed", "speedup"],
        [
            [label, f"{cold * 1e3:.2f} ms", f"{warm * 1e3:.2f} ms", f"{ratio:.1f}x"]
            for label, cold, warm, ratio in rows
        ],
    )
    stats = COLLECTION.index_stats()
    if stats is not None:
        table += (
            f"\n(indexes: {stats.paths} paths, {stats.eq_entries} eq entries, "
            f"{stats.keys} keys over {stats.documents} documents)"
        )
    if not smoke_mode():
        best = max(ratio for _, _, _, ratio in rows)
        table += f"\n(best index-backed speedup: {best:.1f}x)"
    return table


if __name__ == "__main__":
    print(main())
