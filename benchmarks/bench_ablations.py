"""A1 -- Ablations of the design choices DESIGN.md calls out.

(a) *Product reachability vs naive semantics*: the Proposition-1
    evaluator against the textbook denotational evaluator (explicit
    pair sets, fixpoint star) -- the gap is why the paper's algorithm
    matters.
(b) *Evaluator reuse*: sharing one memoised ``JNLEvaluator`` across a
    query batch vs a fresh engine per query (subformula node sets and
    compiled path automata are cached per tree).
"""

from __future__ import annotations

from repro.bench.harness import format_table, measure
from repro.jnl.efficient import JNLEvaluator, evaluate_unary
from repro.jnl.evaluator import eval_unary
from repro.jnl.parser import parse_jnl
from repro.workloads import balanced_tree, deep_chain

TREE = balanced_tree(4, 3)
# The star ablation runs on a chain: the naive fixpoint materialises
# the O(n^2) reflexive-transitive closure, the product stays linear.
CHAIN = deep_chain(200)
RECURSIVE = parse_jnl('has((.a)* <matches(eps, "0")>)')

BATCH = [
    parse_jnl("has(.c0.c1)"),
    parse_jnl("has(.c0.c1) and has(.c1.c2)"),
    parse_jnl("has(.c0.c1) or matches(.c2.c0.c1, 3)"),
    parse_jnl("not has(.c0.c1) or has(.c3)"),
    parse_jnl("has(.c0.c1) and not matches(.c2.c0.c1, 3)"),
]


def test_efficient_evaluator(benchmark):
    benchmark(lambda: evaluate_unary(CHAIN, RECURSIVE))


def test_reference_evaluator(benchmark):
    benchmark(lambda: eval_unary(CHAIN, RECURSIVE))


def test_shared_evaluator_batch(benchmark):
    def run():
        evaluator = JNLEvaluator(TREE)
        return [evaluator.nodes_satisfying(phi) for phi in BATCH]

    benchmark(run)


def test_fresh_evaluator_batch(benchmark):
    def run():
        return [evaluate_unary(TREE, phi) for phi in BATCH]

    benchmark(run)


def main() -> str:
    efficient = measure(lambda: evaluate_unary(CHAIN, RECURSIVE), repeat=3)
    reference = measure(lambda: eval_unary(CHAIN, RECURSIVE), repeat=3)

    def shared():
        evaluator = JNLEvaluator(TREE)
        for phi in BATCH:
            evaluator.nodes_satisfying(phi)

    def fresh():
        for phi in BATCH:
            evaluate_unary(TREE, phi)

    shared_time = measure(shared, repeat=3)
    fresh_time = measure(fresh, repeat=3)
    return format_table(
        "A1 / ablations: algorithmic choices "
        f"(product reachability {reference / efficient:.0f}x faster than "
        "naive semantics on a starred query; "
        f"shared memo {fresh_time / shared_time:.1f}x faster on a batch)",
        ["variant", "time"],
        [
            ["Prop-1 product reachability", f"{efficient * 1e3:.2f} ms"],
            ["naive denotational semantics", f"{reference * 1e3:.2f} ms"],
            ["batch, shared memoised engine", f"{shared_time * 1e3:.2f} ms"],
            ["batch, fresh engine per query", f"{fresh_time * 1e3:.2f} ms"],
        ],
    )


if __name__ == "__main__":
    print(main())
