"""E2 -- Proposition 2: JNL satisfiability is NP-complete.

Reproduction targets: (a) the 3SAT reduction decides exactly like a
brute-force SAT solver, (b) witnesses decode to satisfying assignments,
(c) runtime grows with instance size (the hardness is inherent).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure
from repro.jnl.satisfiability import jnl_satisfiable
from repro.reductions import brute_force_sat, cnf_to_jnl, random_3cnf

INSTANCES = [(3, 6), (4, 8), (5, 10), (6, 12)]


@pytest.mark.parametrize("num_vars,num_clauses", INSTANCES)
def test_sat3_reduction_solving(benchmark, num_vars, num_clauses):
    cnf = random_3cnf(num_vars, num_clauses, seed=num_vars)
    formula = cnf_to_jnl(cnf)
    result = benchmark(lambda: jnl_satisfiable(formula))
    assert result.satisfiable == (brute_force_sat(cnf) is not None)


def test_sat3_brute_force_baseline(benchmark):
    cnf = random_3cnf(6, 12, seed=6)
    benchmark(lambda: brute_force_sat(cnf))


def main() -> str:
    rows = []
    for num_vars, num_clauses in INSTANCES:
        agreements = 0
        total = 6
        solver_time = 0.0
        brute_time = 0.0
        for seed in range(total):
            cnf = random_3cnf(num_vars, num_clauses, seed)
            formula = cnf_to_jnl(cnf)
            expected = None
            brute_time += measure(
                lambda c=cnf: brute_force_sat(c), repeat=1
            )
            expected = brute_force_sat(cnf) is not None
            solver_time += measure(
                lambda f=formula: jnl_satisfiable(f), repeat=1
            )
            if jnl_satisfiable(formula).satisfiable == expected:
                agreements += 1
        rows.append(
            [
                f"{num_vars}v/{num_clauses}c",
                f"{agreements}/{total}",
                f"{solver_time / total * 1e3:.1f} ms",
                f"{brute_time / total * 1e3:.3f} ms",
            ]
        )
    return format_table(
        "E2 / Prop 2: 3SAT -> JNL satisfiability (paper: NP-complete; "
        "reduction must agree with brute force)",
        ["instance", "agreement", "JNL solver", "brute force"],
        rows,
    )


if __name__ == "__main__":
    print(main())
