"""E6 -- Proposition 6: JSL evaluation; the Unique ablation.

Reproduction targets: linear evaluation without Unique (slope ~1);
with Unique, the naive pairwise comparison the paper prices quadratic
(slope ~2 on duplicate-heavy arrays) against the hash-grouped variant
that stays near-linear -- the ablation DESIGN.md calls out.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, loglog_slope, run_series
from repro.jsl.evaluator import satisfies
from repro.jsl.parser import parse_jsl_formula
from repro.model.tree import JSONTree
from repro.workloads import balanced_tree

PLAIN = parse_jsl_formula(
    "object and all(./c.*/, object or number) and some(.c0, minch(1))"
)
UNIQUE = parse_jsl_formula("unique")

WIDTHS = [100, 200, 400, 800]


def _all_distinct_array(width: int) -> JSONTree:
    # All children distinct: the pairwise loop cannot exit early, so it
    # performs every one of the n(n-1)/2 comparisons.
    return JSONTree.from_value([[i] for i in range(width)])


@pytest.mark.parametrize("branching", [2, 4, 8, 16])
def test_plain_jsl_eval(benchmark, branching):
    tree = balanced_tree(branching, 3)
    benchmark(lambda: satisfies(tree, PLAIN))


@pytest.mark.parametrize("width", WIDTHS)
def test_unique_exact_pairwise(benchmark, width):
    tree = _all_distinct_array(width)
    benchmark(lambda: satisfies(tree, UNIQUE, exact_unique=True))


@pytest.mark.parametrize("width", WIDTHS)
def test_unique_hash_grouped(benchmark, width):
    tree = _all_distinct_array(width)
    benchmark(lambda: satisfies(tree, UNIQUE, exact_unique=False))


def main() -> str:
    def unique_series(exact: bool):
        return run_series(
            WIDTHS,
            make_input=_all_distinct_array,
            run=lambda tree: satisfies(tree, UNIQUE, exact_unique=exact),
        )

    exact = unique_series(True)
    hashed = unique_series(False)
    rows = [
        [p1.x, f"{p1.seconds*1e3:.2f} ms", f"{p2.seconds*1e3:.2f} ms"]
        for p1, p2 in zip(exact, hashed)
    ]
    return format_table(
        "E6 / Prop 6: Unique evaluation, pairwise vs hash-grouped "
        f"(paper: quadratic [slope {loglog_slope(exact):.2f}] vs the "
        f"linear-in-practice ablation [slope {loglog_slope(hashed):.2f}])",
        ["array width", "exact pairwise", "hash grouped"],
        rows,
    )


if __name__ == "__main__":
    print(main())
