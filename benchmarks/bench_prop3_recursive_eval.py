"""E3 -- Proposition 3: non-det + recursive JNL evaluation.

Reproduction target: linear scaling (slope ~1) without EQ(alpha,beta),
super-linear (the paper prices the full logic cubic; our per-node
forward scheme is ~quadratic on these trees) when EQ(alpha,beta) joins
non-determinism -- the crossover the paper's statement describes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SeriesPoint, format_table, loglog_slope, run_series
from repro.jnl.efficient import evaluate_unary
from repro.jnl.parser import parse_jnl
from repro.workloads import deep_chain

# On a chain of depth n, EQ(alpha, beta) with a starred path needs the
# set of subtree values below every node: Theta(n^2) work; the same
# star without EQ(a, b) is a single backward reachability pass.
LINEAR_FORMULA = parse_jnl('has((.a)* <matches(eps, "0")>)')
EQPATH_FORMULA = parse_jnl("eq((.a)*, .a)")

DEPTHS = [100, 200, 400, 800]


def _tree(depth: int):
    return deep_chain(depth)


@pytest.mark.parametrize("depth", DEPTHS)
def test_recursive_eval_without_eqpath(benchmark, depth):
    tree = _tree(depth)
    benchmark(lambda: evaluate_unary(tree, LINEAR_FORMULA))


@pytest.mark.parametrize("depth", [100, 200, 400])
def test_recursive_eval_with_eqpath(benchmark, depth):
    tree = _tree(depth)
    benchmark(lambda: evaluate_unary(tree, EQPATH_FORMULA))


def main() -> str:
    def series(formula, depths):
        raw = run_series(
            depths,
            make_input=_tree,
            run=lambda tree, f=formula: evaluate_unary(tree, f),
        )
        return [
            SeriesPoint(d + 1, p.seconds) for d, p in zip(depths, raw)
        ]

    without = series(LINEAR_FORMULA, DEPTHS)
    with_eq = series(EQPATH_FORMULA, DEPTHS)
    rows = [
        [p1.x, f"{p1.seconds*1e3:.2f} ms", f"{p2.seconds*1e3:.2f} ms"]
        for p1, p2 in zip(without, with_eq)
    ]
    return format_table(
        "E3 / Prop 3: recursive non-det JNL evaluation vs |J| "
        f"(paper: linear w/o EQ(a,b) [slope {loglog_slope(without):.2f}], "
        f"super-linear with it [slope {loglog_slope(with_eq):.2f}])",
        ["|J|", "without EQ(a,b)", "with EQ(a,b)"],
        rows,
    )


if __name__ == "__main__":
    print(main())
