"""E1 -- Proposition 1: deterministic JNL evaluation is O(|J| x |phi|).

Reproduction target: runtime linear in the document size and in the
formula size, including the equality operators (via online canonical
hashing).  The fitted log-log slope against |J| should sit near 1.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, loglog_slope, run_series
from repro.jnl import builder as q
from repro.jnl.efficient import evaluate_unary
from repro.jnl.parser import parse_jnl
from repro.workloads import balanced_tree

SIZES = [2, 4, 8, 16, 32]  # branching of a depth-3 balanced tree

FORMULA = parse_jnl(
    "has(.c0.c1.c2) and matches(.c1.c0, 3) and "
    "eq(.c0.c1, .c1.c1) and not has(.c0.missing)"
)


def _formula_of_size(length: int):
    parts = [q.has(q.compose(*(q.key(f"c{i % 3}") for i in range(1, 3))))
             for _ in range(length)]
    return q.conj(parts)


@pytest.mark.parametrize("branching", SIZES)
def test_det_eval_scaling_in_document(benchmark, branching):
    tree = balanced_tree(branching, 3)
    benchmark(lambda: evaluate_unary(tree, FORMULA))


@pytest.mark.parametrize("length", [4, 8, 16, 32])
def test_det_eval_scaling_in_formula(benchmark, length):
    tree = balanced_tree(8, 3)
    formula = _formula_of_size(length)
    benchmark(lambda: evaluate_unary(tree, formula))


def main() -> str:
    doc_series = run_series(
        SIZES,
        make_input=lambda b: balanced_tree(b, 3),
        run=lambda tree: evaluate_unary(tree, FORMULA),
    )
    sizes = [len(balanced_tree(b, 3)) for b in SIZES]
    rows = [
        [n, f"{p.seconds * 1e3:.2f} ms"]
        for n, p in zip(sizes, doc_series)
    ]
    points = [type(p)(n, p.seconds) for n, p in zip(sizes, doc_series)]
    slope = loglog_slope(points)
    table = format_table(
        "E1 / Prop 1: deterministic JNL evaluation vs |J| "
        f"(paper: linear; fitted slope {slope:.2f})",
        ["|J| (nodes)", "time"],
        rows,
    )
    return table


if __name__ == "__main__":
    print(main())
