"""F5 -- Aggregation pipelines: index-pruned leading $match, staged rest.

Reproduction target: multi-stage aggregation -- the dominant real
document-database workload -- must inherit the store's pruning.  A
pipeline compiles once into a staged physical plan whose leading
``$match`` run lowers into the logical-plan IR; over a 10k-document
collection the planner's index pruning must make a *selective*
``$match`` + ``$group`` pipeline >= 10x faster than the naive
per-document reference evaluator (eager, value-space, no indexes) --
with results differentially identical, pinned by ``tests/
test_aggregate.py`` and re-asserted here.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure, smoke_mode
from repro.mongo.aggregate import compile_pipeline, naive_aggregate
from repro.workloads import people_collection
from repro import api

DOCS = 300 if smoke_mode() else 10_000

_PEOPLE = people_collection(DOCS, seed=23)
COLLECTION = api.collection(_PEOPLE)

# A selective three-way equality cuts 10k documents to a few dozen
# candidates via the eq postings before any per-document work; the
# $group then folds only the survivors.  The naive evaluator pays a
# full value-space scan plus an eager group per call.
SELECTIVE_PIPELINE = [
    {
        "$match": {
            "name.first": "Sue",
            "name.last": "Chen",
            "address.city": "Santiago",
        }
    },
    {
        "$group": {
            "_id": "$address.city",
            "people": {"$count": {}},
            "avg_age": {"$avg": "$age"},
            "oldest": {"$max": "$age"},
        }
    },
]

# A restructuring pipeline (unwind + group + sort) behind a selective
# range+eq $match: the floor is lower -- range pruning unions postings
# per distinct value, and every survivor pays the unwind/group work --
# but the leading $match still prunes via indexes.
UNWIND_PIPELINE = [
    {"$match": {"address.city": "Talca", "age": {"$gt": 84}}},
    {"$unwind": "$hobbies"},
    {"$group": {"_id": "$hobbies", "n": {"$sum": 1}}},
    {"$sort": {"n": -1, "_id": 1}},
]


def _rows():
    rows = []
    for label, pipeline in [
        (f"$match+$group, 3-way eq ({DOCS} docs)", SELECTIVE_PIPELINE),
        (f"$match+$unwind+$group+$sort ({DOCS} docs)", UNWIND_PIPELINE),
    ]:
        compiled = compile_pipeline(pipeline)

        def staged(compiled=compiled):
            return compiled.execute(COLLECTION)

        def naive(pipeline=pipeline):
            return naive_aggregate(_PEOPLE, pipeline)

        # Staged runs are ~1 ms, so scheduler noise moves single
        # timings a lot; best-of-7 keeps the pinned ratio stable.
        cold = measure(naive, repeat=7)
        warm = measure(staged, repeat=7)
        rows.append((label, cold, warm, cold / warm))
    return rows


def _check_results_identical() -> None:
    """The staged executor must agree with the naive reference row for
    row (pruning and streaming only ever skip provable non-matches)."""
    for pipeline in (SELECTIVE_PIPELINE, UNWIND_PIPELINE):
        staged = compile_pipeline(pipeline).execute(COLLECTION)
        assert staged == naive_aggregate(_PEOPLE, pipeline)


def _check_index_pruned() -> None:
    """The leading $match must provably route through the planner."""
    report = compile_pipeline(SELECTIVE_PIPELINE).explain(COLLECTION)
    assert report.used_indexes, report
    assert report.scanned < report.total, report


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}


def speedups() -> dict[str, float]:
    """Per-pipeline naive/staged ratios (used by tests and CI)."""
    _check_results_identical()
    _check_index_pruned()
    measured = {label: ratio for label, _, _, ratio in _rows()}
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


# The selective pipeline is the pinned headline (>= 10x, matching the
# collection-query gate); the unwind pipeline keeps most documents
# alive past the $match, so pruning buys proportionally less.
_FLOORS = {"$match+$group": 10.0, "$match+$unwind": 5.0}


def _floor_for(label: str) -> float:
    for prefix, floor in _FLOORS.items():
        if label.startswith(prefix):
            return floor
    return 10.0


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    failures = []
    for label, ratio in speedups().items():
        floor = _floor_for(label)
        if ratio < floor:
            failures.append(
                f"bench_aggregation: {label} staged speedup "
                f"{ratio:.1f}x < {floor:.0f}x target"
            )
    return failures


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# ---------------------------------------------------------------------------


def test_staged_aggregate(benchmark):
    compiled = compile_pipeline(SELECTIVE_PIPELINE)
    results = benchmark(lambda: compiled.execute(COLLECTION))
    assert all(row["_id"] == "Santiago" for row in results)


def test_naive_aggregate(benchmark):
    results = benchmark(lambda: naive_aggregate(_PEOPLE, SELECTIVE_PIPELINE))
    assert all(row["_id"] == "Santiago" for row in results)


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_staged_speedup_target():
    assert not check_targets(), speedups()


def main() -> str:
    _check_results_identical()
    _check_index_pruned()
    rows = _rows()
    table = format_table(
        "F5 / aggregation pipelines: staged + index-pruned vs naive "
        "per-document evaluation (target: >= 10x for selective $match+$group)",
        ["pipeline", "naive", "staged", "speedup"],
        [
            [label, f"{cold * 1e3:.2f} ms", f"{warm * 1e3:.2f} ms", f"{ratio:.1f}x"]
            for label, cold, warm, ratio in rows
        ],
    )
    report = compile_pipeline(SELECTIVE_PIPELINE).explain(COLLECTION)
    table += (
        f"\n(selective pipeline: {report.total} documents, "
        f"{report.candidates} candidates after index pruning, "
        f"{report.scanned} scanned, {report.results} result rows)"
    )
    if not smoke_mode():
        best = max(ratio for _, _, _, ratio in rows)
        table += f"\n(best staged speedup: {best:.1f}x)"
    return table


if __name__ == "__main__":
    print(main())
