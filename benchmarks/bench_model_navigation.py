"""M1 -- Section 2: navigation instructions as the primitive.

Reproduction target: the model's typed navigation (J[key]/J[i]) costs a
small constant factor over raw Python dict/list access -- the
"lightweight nature" the paper attributes to JSON access, preserved by
the arena representation.
"""

from __future__ import annotations

from repro.bench.harness import format_table, measure
from repro.model.tree import JSONTree
from repro.workloads import people_collection

PEOPLE = people_collection(500, seed=9)
TREES = [JSONTree.from_value(person) for person in PEOPLE]
PATHS = [["name", "first"], ["address", "city"], ["hobbies", 0], ["age"]]


def _navigate_all():
    hits = 0
    for tree in TREES:
        for path in PATHS:
            from repro.model.navigation import try_navigate

            if try_navigate(tree, path) is not None:
                hits += 1
    return hits


def _raw_all():
    hits = 0
    for person in PEOPLE:
        for path in PATHS:
            current = person
            ok = True
            for step in path:
                try:
                    current = current[step]
                except (KeyError, IndexError, TypeError):
                    ok = False
                    break
            if ok:
                hits += 1
    return hits


def test_tree_navigation(benchmark):
    assert benchmark(_navigate_all) == _raw_all()


def test_raw_python_access(benchmark):
    benchmark(_raw_all)


def test_parse_people_collection(benchmark):
    benchmark(lambda: [JSONTree.from_value(person) for person in PEOPLE])


def main() -> str:
    tree_time = measure(_navigate_all, repeat=3)
    raw_time = measure(_raw_all, repeat=3)
    factor = tree_time / raw_time if raw_time else float("inf")
    return format_table(
        "M1 / Section 2: navigation-instruction overhead vs raw Python "
        f"(overhead factor {factor:.1f}x)",
        ["engine", "time (2000 navigations)"],
        [
            ["JSONTree navigate", f"{tree_time * 1e3:.2f} ms"],
            ["raw dict/list", f"{raw_time * 1e3:.2f} ms"],
        ],
    )


if __name__ == "__main__":
    print(main())
