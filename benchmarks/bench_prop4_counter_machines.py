"""E4 -- Proposition 4: the undecidability encoding, executed.

Reproduction target: the two-counter-machine formula is satisfied by
encodings of halting runs and rejected on corrupted ones; checking cost
grows with run length (each step checks whole-counter subtree
equalities).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure
from repro.jnl.efficient import evaluate_unary
from repro.reductions import (
    TwoCounterMachine,
    encode_run,
    machine_to_jnl,
    run_machine,
)


def _count_up_down_machine(rounds: int) -> TwoCounterMachine:
    """inc counter 1 ``rounds`` times, then drain it, then halt."""
    program: dict = {}
    for i in range(rounds):
        program[f"u{i}"] = ("inc", 1, f"u{i + 1}")
    program[f"u{rounds}"] = ("jz", 1, "qf", "d0")
    program["d0"] = ("dec", 1, f"u{rounds}")
    program["qf"] = ("halt",)
    return TwoCounterMachine(program, "u0", "qf")


ROUNDS = [2, 4, 8, 12]


@pytest.mark.parametrize("rounds", ROUNDS)
def test_halting_run_check(benchmark, rounds):
    machine = _count_up_down_machine(rounds)
    trace = run_machine(machine)
    assert trace is not None
    tree = encode_run(trace)
    formula = machine_to_jnl(machine)
    accepted = benchmark(lambda: tree.root in evaluate_unary(tree, formula))
    assert accepted


def main() -> str:
    rows = []
    for rounds in ROUNDS:
        machine = _count_up_down_machine(rounds)
        trace = run_machine(machine)
        assert trace is not None
        tree = encode_run(trace)
        formula = machine_to_jnl(machine)
        seconds = measure(
            lambda: evaluate_unary(tree, formula), repeat=2
        )
        accepted = tree.root in evaluate_unary(tree, formula)
        corrupted = [list(c) for c in trace]
        corrupted[1][0] = "qf"
        bad_tree = encode_run([tuple(c) for c in corrupted])
        rejected = bad_tree.root not in evaluate_unary(bad_tree, formula)
        rows.append(
            [
                len(trace),
                len(tree),
                "yes" if accepted else "NO",
                "yes" if rejected else "NO",
                f"{seconds * 1e3:.2f} ms",
            ]
        )
    return format_table(
        "E4 / Prop 4: two-counter-machine encoding "
        "(halting runs accepted, corrupted runs rejected; "
        "satisfiability itself is undecidable and refused by the solver)",
        ["run len", "|J|", "run accepted", "corruption rejected", "check time"],
        rows,
    )


if __name__ == "__main__":
    print(main())
