"""E5 -- Proposition 5: satisfiability of the non-deterministic logic.

Reproduction target: the JSL route decides the PSPACE fragment
(star-free) and the EXPTIME fragment (with stars); cost grows with the
number of modalities -- the paper's point that these fragments are
inherently harder than the NP deterministic core.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_table, measure
from repro.jnl import builder as q
from repro.jnl.satisfiability import jnl_satisfiable

DEPTHS = [2, 4, 6, 8]


def _nondet_formula(depth: int):
    """Nested regex-key requirements with typing conflicts below."""
    inner = q.conj(
        [
            q.has(q.compose(q.key_regex("x+"), q.test(q.has(q.index(0))))),
            q.has(q.compose(q.key_regex("x.*"), q.test(q.has(q.key("k"))))),
        ]
    )
    formula = inner
    for level in range(depth):
        formula = q.has(
            q.compose(q.key_regex(f"l{level}|m{level}"), q.test(formula))
        )
    return formula


def _recursive_formula(depth: int):
    chain = q.compose(q.star(q.key_regex("a|b")), q.key("stop"))
    parts = [q.has(chain)]
    for level in range(depth):
        parts.append(q.has(q.compose(q.key_regex(f"l{level}.*"), q.test(q.top()))))
    return q.conj(parts)


@pytest.mark.parametrize("depth", DEPTHS)
def test_nondet_starfree_sat(benchmark, depth):
    formula = _nondet_formula(depth)
    result = benchmark(lambda: jnl_satisfiable(formula))
    assert result.satisfiable  # the x-conflict sits under *different* keys


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_nondet_recursive_sat(benchmark, depth):
    formula = _recursive_formula(depth)
    result = benchmark(lambda: jnl_satisfiable(formula))
    assert result.satisfiable


def main() -> str:
    rows = []
    for depth in DEPTHS:
        starfree = _nondet_formula(depth)
        recursive = _recursive_formula(depth)
        t1 = measure(lambda f=starfree: jnl_satisfiable(f), repeat=1)
        t2 = measure(lambda f=recursive: jnl_satisfiable(f), repeat=1)
        rows.append([depth, f"{t1 * 1e3:.1f} ms", f"{t2 * 1e3:.1f} ms"])
    return format_table(
        "E5 / Prop 5: non-deterministic JNL satisfiability via the "
        "recursive-JSL route (paper: PSPACE-c star-free, EXPTIME-c "
        "recursive)",
        ["nesting", "star-free", "recursive"],
        rows,
    )


if __name__ == "__main__":
    print(main())
