"""E10 -- Proposition 10: recursive JSL satisfiability via J-automata.

Reproduction targets: emptiness of growing definition systems is
decided with witnesses (EXPTIME-c without Unique); Example 5's
complete-binary-tree expression -- which needs the Unique counting the
paper prices one exponential higher -- also solves, and round-trips
through the J-automaton interface.
"""

from __future__ import annotations

import pytest

from repro.automata.jautomata import from_recursive_jsl
from repro.bench.harness import format_table, measure
from repro.jsl.parser import parse_jsl
from repro.jsl.satisfiability import jsl_satisfiable

EXAMPLE5 = parse_jsl(
    "def g := not some([0:0], true) or "
    "(minch(2) and maxch(2) and not unique and all([0:1], $g));"
    "array and minch(2) and $g"
)


def _chain_expression(length: int):
    """gamma_0 -> ... -> gamma_n, each step forcing one more key level."""
    text_parts = []
    for index in range(length):
        nxt = f"$g{index + 1}" if index + 1 < length else 'value("end")'
        text_parts.append(f"def g{index} := some(.k{index}, {nxt});")
    text_parts.append("$g0")
    return parse_jsl("".join(text_parts))


LENGTHS = [2, 4, 8, 12]


@pytest.mark.parametrize("length", LENGTHS)
def test_recursive_sat_chain(benchmark, length):
    expression = _chain_expression(length)
    result = benchmark(lambda: jsl_satisfiable(expression))
    assert result.satisfiable
    assert result.witness.height() == length


def test_example5_with_unique_counting(benchmark):
    result = benchmark(lambda: jsl_satisfiable(EXAMPLE5))
    assert result.satisfiable


def test_jautomaton_emptiness(benchmark):
    automaton = from_recursive_jsl(_chain_expression(6))
    assert not benchmark(lambda: automaton.is_empty())


def main() -> str:
    rows = []
    for length in LENGTHS:
        expression = _chain_expression(length)
        seconds = measure(lambda e=expression: jsl_satisfiable(e), repeat=2)
        result = jsl_satisfiable(expression)
        rows.append(
            [
                length,
                "SAT" if result.satisfiable else "UNSAT",
                result.goals_explored,
                f"{seconds * 1e3:.1f} ms",
            ]
        )
    ex5 = jsl_satisfiable(EXAMPLE5)
    ex5_time = measure(lambda: jsl_satisfiable(EXAMPLE5), repeat=2)
    rows.append(
        ["Ex.5 (Unique)", "SAT" if ex5.satisfiable else "UNSAT",
         ex5.goals_explored, f"{ex5_time * 1e3:.1f} ms"]
    )
    return format_table(
        "E10 / Prop 10: recursive JSL satisfiability "
        "(paper: EXPTIME-c without Unique, 2EXPTIME with; "
        "witnesses certified)",
        ["definitions", "verdict", "goals", "time"],
        rows,
    )


if __name__ == "__main__":
    print(main())
