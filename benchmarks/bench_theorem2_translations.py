"""T2 -- Theorem 2: JNL <-> JSL translation costs.

Reproduction targets: JSL -> JNL output grows linearly with the input
(the paper: polynomial), JNL -> JSL blows up exponentially on the
union-chain worst case, and both translations preserve node sets.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import SeriesPoint, format_table, loglog_slope
from repro.jnl import ast as jnl
from repro.jnl.efficient import evaluate_unary
from repro.jsl import ast as jsl_ast
from repro.jsl.evaluator import nodes_satisfying
from repro.translate import jnl_to_jsl, jsl_to_jnl
from repro.workloads import TreeShape, random_jsl_formula, random_tree


def _union_chain(length: int) -> jnl.Unary:
    step = jnl.Union(jnl.Key("a"), jnl.Key("b"))
    path: jnl.Binary = step
    for _ in range(length - 1):
        path = jnl.Compose(step, path)
    return jnl.Exists(path)


@pytest.mark.parametrize("depth", [3, 4, 5])
def test_jsl_to_jnl_translation(benchmark, depth):
    rng = random.Random(depth)
    formula = random_jsl_formula(rng, depth)
    benchmark(lambda: jsl_to_jnl(formula))


@pytest.mark.parametrize("length", [4, 6, 8])
def test_jnl_to_jsl_worst_case(benchmark, length):
    formula = _union_chain(length)
    benchmark(lambda: jnl_to_jsl(formula))


def test_translations_preserve_semantics(benchmark):
    rng = random.Random(42)
    formulas = [random_jsl_formula(rng, 3) for _ in range(10)]
    trees = [
        random_tree(i, TreeShape(max_depth=3, max_children=3))
        for i in range(5)
    ]

    def verify():
        for formula in formulas:
            translated = jsl_to_jnl(formula)
            for tree in trees:
                if set(nodes_satisfying(tree, formula)) != set(
                    evaluate_unary(tree, translated)
                ):
                    return False
        return True

    assert benchmark(verify)


def main() -> str:
    forward_rows = []
    for depth in (2, 3, 4, 5):
        rng = random.Random(depth)
        formula = random_jsl_formula(rng, depth)
        translated = jsl_to_jnl(formula)
        forward_rows.append(
            SeriesPoint(
                jsl_ast.formula_size(formula),
                float(jnl.formula_size(translated)),
            )
        )
    backward_rows = []
    for length in (2, 4, 6, 8, 10):
        formula = _union_chain(length)
        translated = jnl_to_jsl(formula)
        backward_rows.append(
            (length, jnl.formula_size(formula),
             jsl_ast.formula_size(translated))
        )
    rows = [
        [point.x, int(point.seconds)] for point in forward_rows
    ]
    table1 = format_table(
        "T2a / Theorem 2: JSL -> JNL output size vs input size "
        f"(paper: polynomial; fitted slope {loglog_slope(forward_rows):.2f})",
        ["|JSL input|", "|JNL output|"],
        rows,
    )
    table2 = format_table(
        "T2b / Theorem 2: JNL -> JSL on the union-chain worst case "
        "(paper: worst-case exponential)",
        ["chain length", "|JNL input|", "|JSL output|"],
        [list(row) for row in backward_rows],
    )
    return table1 + "\n\n" + table2


if __name__ == "__main__":
    print(main())
