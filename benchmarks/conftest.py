"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_*.py``
module also has a ``main()`` printing the paper-style scaling series
(fitted log-log slopes); ``python benchmarks/run_all.py`` regenerates
the full EXPERIMENTS.md measurement block.
"""

collect_ignore = ["run_all.py"]
