"""F3 -- Compiled validation pipeline: compile once, validate many.

Reproduction target: the validation analogue of F2.  Both "Validation
of Modern JSON Schema" (Attouche et al.) and the MongoDB-standard
report treat high-throughput validation over document corpora as the
workload that matters; a registry enforcing one schema over millions of
documents amortises well-formedness checking, reference resolution and
program construction across calls.  The compiled path
(:mod:`repro.validate`) must make repeated validation with a cached
validator >= 5x cheaper per call than the seed interpreter pipeline
(``SchemaValidator(schema).validate_value(doc)``), which re-checks,
re-resolves and re-materialises on every call.  Differential tests in
``tests/test_validate_compiled.py`` pin the compiled verdicts to the
seed validator; this script pins the speedup.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import format_table, measure_amortised, smoke_mode
from repro.jsl.evaluator import JSLEvaluator
from repro.model.tree import JSONTree
from repro.schema.parser import parse_schema
from repro.schema.to_jsl import schema_to_jsl
from repro.schema.validator import SchemaValidator
from repro.streaming.validator import StreamingJSLValidator
from repro.validate import (
    compile_jsl_validator,
    compile_schema_validator,
    validate_corpus,
)
from repro.workloads import people_collection

# A registry-style person schema exercising every compiled-op family:
# definitions/$ref, required, patterns, bounds, arrays and enum.
SCHEMA_VALUE = {
    "definitions": {
        "name": {
            "type": "object",
            "required": ["first", "last"],
            "properties": {
                "first": {"type": "string"},
                "last": {"type": "string"},
            },
            "additionalProperties": {"type": "string"},
        },
        "address": {
            "type": "object",
            "required": ["city", "zip"],
            "properties": {
                "city": {
                    "enum": ["Santiago", "Lille", "Oxford", "Talca"]
                },
                "zip": {"type": "string", "pattern": "[0-9]+"},
            },
        },
    },
    "type": "object",
    "required": ["id", "name", "age"],
    "minProperties": 3,
    "properties": {
        "id": {"type": "number", "minimum": 0},
        "name": {"$ref": "#/definitions/name"},
        "age": {"type": "number", "minimum": 0, "maximum": 120},
        "hobbies": {
            "type": "array",
            "additionalItems": {"type": "string", "pattern": "[a-z]+"},
            "uniqueItems": True,
        },
        "address": {"$ref": "#/definitions/address"},
    },
    "patternProperties": {"x-.*": {"type": "string"}},
    "additionalProperties": {"type": "string"},
}
SCHEMA = parse_schema(SCHEMA_VALUE)

CORPUS = people_collection(150, seed=11)
# Batch ingestion with shared interning (JSONTree.from_values).
TREES = JSONTree.from_values(CORPUS)
DOC = CORPUS[0]
TREE = TREES[0]

# A definition-free variant for the plain (non-recursive) JSL row.
FLAT_SCHEMA_VALUE = {
    key: value for key, value in SCHEMA_VALUE.items() if key != "definitions"
}
FLAT_SCHEMA_VALUE["properties"] = {
    key: value
    for key, value in SCHEMA_VALUE["properties"].items()
    if key not in ("name", "address")
}
FLAT_SCHEMA = parse_schema(FLAT_SCHEMA_VALUE)
JSL_FORMULA = schema_to_jsl(FLAT_SCHEMA.root)

# A deterministic, equality-free schema for the streaming row.
DET_SCHEMA = parse_schema(
    {
        "type": "object",
        "required": ["id", "age"],
        "properties": {
            "id": {"type": "number", "minimum": 0},
            "age": {"type": "number", "minimum": 0, "maximum": 120},
            "name": {"$ref": "#/definitions/name"},
        },
        "definitions": {
            "name": {
                "type": "object",
                "required": ["first"],
                "properties": {"first": {"type": "string"}},
            }
        },
    }
)
DET_FORMULA = schema_to_jsl(DET_SCHEMA)
DOC_TEXT = json.dumps(DOC)


def _corpus_one_shot() -> list[bool]:
    """The pre-compiled-subsystem corpus idiom: fresh validator and
    fresh tree per document."""
    return [SchemaValidator(SCHEMA).validate_value(doc) for doc in CORPUS]


def _rows():
    compiled = compile_schema_validator(SCHEMA)
    compiled_jsl = compile_jsl_validator(JSL_FORMULA)
    stream = StreamingJSLValidator(DET_FORMULA)
    rows = []
    for label, one_shot, cached, calls in [
        (
            "schema over raw values",
            lambda: SchemaValidator(SCHEMA).validate_value(DOC),
            lambda: compiled.validate_value(DOC),
            300,
        ),
        (
            "schema over a prebuilt tree",
            lambda: SchemaValidator(SCHEMA).validate(TREE),
            lambda: compiled.validate_tree(TREE),
            300,
        ),
        (
            "JSL root check",
            lambda: JSLEvaluator(TREE).satisfies(JSL_FORMULA),
            lambda: compiled_jsl.validate_tree(TREE),
            300,
        ),
        (
            f"corpus of {len(CORPUS)} docs",
            _corpus_one_shot,
            lambda: validate_corpus(compiled, CORPUS),
            20,
        ),
        (
            "streaming (hoisted modal index)",
            lambda: StreamingJSLValidator(DET_FORMULA).validate_text(DOC_TEXT),
            lambda: stream.validate_text(DOC_TEXT),
            100,
        ),
    ]:
        cold = measure_amortised(one_shot, calls=calls)
        warm = measure_amortised(cached, calls=calls)
        rows.append((label, cold, warm, cold / warm))
    return rows


#: Measured ratios of the last speedups call (recorded by
#: ``run_all.py --check-targets --json`` for the CI delta table).
LAST_SPEEDUPS: dict[str, float] = {}


def amortised_speedups() -> dict[str, float]:
    """Per-workload one-shot/cached per-call ratios (used by tests/CI)."""
    measured = {label: speedup for label, _, _, speedup in _rows()}
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    speedups = amortised_speedups()
    headline = speedups["schema over raw values"]
    corpus = max(
        ratio for label, ratio in speedups.items() if label.startswith("corpus")
    )
    failures = []
    if headline < 5.0:
        failures.append(
            "bench_schema_validation: compiled validate_value speedup "
            f"{headline:.1f}x < 5x target"
        )
    if corpus < 5.0:
        failures.append(
            "bench_schema_validation: corpus validation speedup "
            f"{corpus:.1f}x < 5x target"
        )
    return failures


# ---------------------------------------------------------------------------
# pytest entry points (pytest benchmarks/ --benchmark-only for timings).
# ---------------------------------------------------------------------------


def test_compiled_agrees_with_seed():
    compiled = compile_schema_validator(SCHEMA)
    seed = SchemaValidator(SCHEMA)
    for value, tree in zip(CORPUS, TREES):
        assert compiled.validate_value(value) == seed.validate(tree)
        assert compiled.validate_tree(tree) == seed.validate(tree)


def test_cached_corpus_validation(benchmark):
    compiled = compile_schema_validator(SCHEMA)
    report = benchmark(lambda: validate_corpus(compiled, CORPUS))
    assert report.checked == len(CORPUS)


def test_one_shot_corpus_validation(benchmark):
    verdicts = benchmark(_corpus_one_shot)
    assert len(verdicts) == len(CORPUS)


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_amortised_speedup_target():
    speedups = amortised_speedups()
    assert speedups["schema over raw values"] >= 5.0, speedups


def main() -> str:
    rows = _rows()
    table = format_table(
        "F3 / compiled validation pipeline: amortised per-call cost "
        "(target: >= 5x for cached compiled vs seed interpreter)",
        ["workload", "one-shot", "cached", "speedup"],
        [
            [label, f"{cold * 1e6:.1f} us", f"{warm * 1e6:.1f} us", f"{ratio:.1f}x"]
            for label, cold, warm, ratio in rows
        ],
    )
    if not smoke_mode():
        best = max(ratio for _, _, _, ratio in rows)
        table += f"\n(best amortised speedup: {best:.1f}x)"
    return table


if __name__ == "__main__":
    print(main())
