"""T1/T3 -- Theorems 1 and 3: JSON Schema <-> JSL.

Reproduction targets: the direct validator and the translation pipeline
(schema -> JSL -> evaluate) agree on every random schema/document pair,
in both directions, including recursive schemas ($ref / definitions);
translation costs stay proportional to input size.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import format_table, measure
from repro.jsl import RecursiveJSL
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.evaluator import satisfies
from repro.model.tree import JSONTree
from repro.schema import (
    SchemaValidator,
    jsl_to_schema,
    parse_schema,
    schema_to_jsl,
)
from repro.workloads import TreeShape, random_schema_value, random_tree

RECURSIVE_SCHEMA = parse_schema(
    {
        "definitions": {
            "tree": {
                "anyOf": [
                    {"type": "number"},
                    {
                        "type": "object",
                        "required": ["left", "right"],
                        "properties": {
                            "left": {"$ref": "#/definitions/tree"},
                            "right": {"$ref": "#/definitions/tree"},
                        },
                    },
                ]
            }
        },
        "$ref": "#/definitions/tree",
    }
)


def _nested_tree_doc(depth: int):
    value: object = 0
    for _ in range(depth):
        value = {"left": value, "right": value}
    return JSONTree.from_value(value)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_validator_vs_translation(benchmark, seed):
    rng = random.Random(seed)
    schema = parse_schema(random_schema_value(rng, depth=3))
    validator = SchemaValidator(schema)
    formula = schema_to_jsl(schema)
    trees = [
        random_tree(seed * 10 + i, TreeShape(max_depth=3, max_children=4))
        for i in range(20)
    ]

    def agree():
        return [
            validator.validate(tree) == satisfies(tree, formula)
            for tree in trees
        ]

    assert all(benchmark(agree))


@pytest.mark.parametrize("depth", [4, 8, 12])
def test_recursive_schema_validation(benchmark, depth):
    validator = SchemaValidator(RECURSIVE_SCHEMA)
    doc = _nested_tree_doc(depth)
    assert benchmark(lambda: validator.validate(doc))


def main() -> str:
    rows = []
    agreements = total = 0
    translate_time = 0.0
    for seed in range(30):
        rng = random.Random(seed)
        schema = parse_schema(random_schema_value(rng, depth=2))
        translate_time += measure(lambda s=schema: schema_to_jsl(s), repeat=1)
        validator = SchemaValidator(schema)
        formula = schema_to_jsl(schema)
        back = SchemaValidator(jsl_to_schema(formula))
        for doc_seed in range(6):
            tree = random_tree(
                seed * 101 + doc_seed, TreeShape(max_depth=3, max_children=3)
            )
            total += 1
            direct = validator.validate(tree)
            via_jsl = (
                satisfies_recursive(tree, formula)
                if isinstance(formula, RecursiveJSL)
                else satisfies(tree, formula)
            )
            reverse = back.validate(tree)
            if direct == via_jsl == reverse:
                agreements += 1
    rows.append(
        [
            "random schemas x docs",
            f"{agreements}/{total}",
            f"{translate_time / 30 * 1e3:.2f} ms",
        ]
    )
    rec_validator = SchemaValidator(RECURSIVE_SCHEMA)
    rec_formula = schema_to_jsl(RECURSIVE_SCHEMA)
    rec_total = rec_agree = 0
    for depth in range(5):
        doc = _nested_tree_doc(depth)
        rec_total += 1
        if rec_validator.validate(doc) == satisfies_recursive(doc, rec_formula):
            rec_agree += 1
    rows.append(["recursive $ref schema", f"{rec_agree}/{rec_total}", "-"])
    return format_table(
        "T1+T3 / Theorems 1 and 3: Schema <-> JSL equivalence "
        "(validator vs translation pipeline, both directions)",
        ["workload", "agreement", "avg translate time"],
        rows,
    )


if __name__ == "__main__":
    print(main())
