"""Regenerate the measurement block of EXPERIMENTS.md.

Usage::

    python benchmarks/run_all.py          # print all experiment tables
    python benchmarks/run_all.py --smoke  # CI smoke: run everything, fast

Smoke mode (also reachable via ``REPRO_BENCH_SMOKE=1``) truncates every
series to its two smallest sizes and drops repeats to 1 -- the numbers
are meaningless, but every script still executes end to end, so CI
catches perf-script rot without minutes of timing.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

MODULES = [
    "bench_model_navigation",
    "bench_prop1_det_eval",
    "bench_prop2_sat3",
    "bench_prop3_recursive_eval",
    "bench_prop4_counter_machines",
    "bench_prop5_nondet_sat",
    "bench_prop6_jsl_eval",
    "bench_prop7_qbf",
    "bench_prop9_recursive_eval",
    "bench_prop10_recursive_sat",
    "bench_theorem1_schema_jsl",
    "bench_theorem2_translations",
    "bench_streaming",
    "bench_frontends",
    "bench_compiled_queries",
    "bench_schema_validation",
    "bench_collection_queries",
    "bench_aggregation",
    "bench_updates",
    "bench_durability",
    "bench_sharded",
    "bench_server",
    "bench_ablations",
    "bench_optimizer",
]


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: tiny sizes, single repeats, meaningless numbers",
    )
    parser.add_argument(
        "--check-targets",
        action="store_true",
        help="run every registered benchmark's pinned-target check "
        "(real timings) and exit non-zero on any regression",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="with --check-targets: also write the gate's verdict "
        "(checked modules, failures) as JSON (uploaded as a CI artifact)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # Must be set before the bench modules import (module-level
        # setup) and call into repro.bench.harness.
        os.environ["REPRO_BENCH_SMOKE"] = "1"

    import importlib

    here = __file__.rsplit("/", 1)[0]
    sys.path.insert(0, here)
    try:  # installed package, or PYTHONPATH already set
        importlib.import_module("repro")
    except ImportError:  # clean checkout: fall back to the src/ layout
        sys.path.insert(0, f"{here}/../src")

    if args.check_targets:
        # A benchmark registers a pinned target by defining
        # ``check_targets() -> list[str]`` (failure messages, empty when
        # the target holds).  A miss is re-measured once before failing,
        # so one noisy-neighbour timing on a shared CI runner cannot
        # sink the build while a persistent regression still does.
        failures: list[str] = []
        checked: list[str] = []
        remeasured: list[str] = []
        speedups: dict[str, dict[str, float]] = {}
        for name in MODULES:
            module = importlib.import_module(name)
            check = getattr(module, "check_targets", None)
            if check is None:
                continue
            checked.append(name)
            first_try = check()
            if first_try:
                for failure in first_try:
                    print(f"target missed, re-measuring: {failure}")
                remeasured.append(name)
                failures.extend(check())
            # Benchmarks expose the ratios their last check measured
            # via LAST_SPEEDUPS; the artifact records them so CI can
            # diff speedups against the previous run (warn-only).
            measured = getattr(module, "LAST_SPEEDUPS", None)
            if measured:
                speedups[name] = dict(measured)
        if args.json:
            # The artifact records exactly the verdict this gate
            # reached -- never a separate re-measurement, which would
            # double the runtime and could disagree with the gate.
            import json

            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "mode": "check-targets",
                        "checked": checked,
                        "remeasured": remeasured,
                        "failures": failures,
                        "ok": not failures,
                        "speedups": speedups,
                    },
                    handle,
                    indent=2,
                )
            print(f"(wrote {args.json})")
        if failures:
            for failure in failures:
                print(f"TARGET REGRESSION: {failure}")
            sys.exit(1)
        print(f"all pinned benchmark targets hold ({len(checked)} checked)")
        return

    started = time.perf_counter()
    for name in MODULES:
        module = importlib.import_module(name)
        print(module.main())
        print()
    print(f"(total wall time: {time.perf_counter() - started:.1f} s)")


if __name__ == "__main__":
    main()
