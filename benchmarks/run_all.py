"""Regenerate the measurement block of EXPERIMENTS.md.

Usage::

    python benchmarks/run_all.py        # print all experiment tables
"""

from __future__ import annotations

import importlib
import sys
import time

MODULES = [
    "bench_model_navigation",
    "bench_prop1_det_eval",
    "bench_prop2_sat3",
    "bench_prop3_recursive_eval",
    "bench_prop4_counter_machines",
    "bench_prop5_nondet_sat",
    "bench_prop6_jsl_eval",
    "bench_prop7_qbf",
    "bench_prop9_recursive_eval",
    "bench_prop10_recursive_sat",
    "bench_theorem1_schema_jsl",
    "bench_theorem2_translations",
    "bench_streaming",
    "bench_frontends",
    "bench_ablations",
]


def main() -> None:
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    started = time.perf_counter()
    for name in MODULES:
        module = importlib.import_module(name)
        print(module.main())
        print()
    print(f"(total wall time: {time.perf_counter() - started:.1f} s)")


if __name__ == "__main__":
    main()
