"""F1 -- Section 4.1: the surveyed front-ends share the JNL core.

Reproduction target: MongoDB find filters and JSONPath queries compile
to JNL and run at latency comparable to hand-written JNL -- the paper's
claim that JNL is the common core of those systems, made measurable.
"""

from __future__ import annotations

from repro.bench.harness import format_table, measure
from repro.jnl.efficient import JNLEvaluator
from repro.jnl.parser import parse_jnl
from repro.jsonpath import jsonpath_query, parse_jsonpath
from repro.model.tree import JSONTree
from repro.query import compile_formula, match_many
from repro.workloads import people_collection
from repro import api

PEOPLE = people_collection(300, seed=4)
COLLECTION = api.collection(PEOPLE)
FILTER = {"age": {"$gte": 30, "$lt": 60}, "address.city": "Santiago"}
HAND_WRITTEN = parse_jnl(
    "has(.age<test(min(29)) and test(max(60))>) "
    'and matches(.address.city, "Santiago")'
)
STORE = JSONTree.from_value(
    {"library": [person for person in PEOPLE[:100]]}
)
JSONPATH = "$.library[?(@.age > 50)].name.first"


def test_mongo_find(benchmark):
    results = benchmark(lambda: COLLECTION.find(FILTER))
    assert all(30 <= doc["age"] < 60 for doc in results)


def test_hand_written_jnl(benchmark):
    def run():
        return [
            tree.to_value()
            for tree in COLLECTION.trees
            if JNLEvaluator(tree).satisfies(tree.root, HAND_WRITTEN)
        ]

    results = benchmark(run)
    assert [doc["id"] for doc in results] == [
        doc["id"] for doc in COLLECTION.find(FILTER)
    ]


def test_jsonpath_query(benchmark):
    results = benchmark(lambda: jsonpath_query(STORE, JSONPATH))
    assert all(isinstance(name, str) for name in results)


def test_jsonpath_parse(benchmark):
    benchmark(lambda: parse_jsonpath(JSONPATH))


def main() -> str:
    mongo_time = measure(lambda: COLLECTION.find(FILTER), repeat=3)
    hand_time = measure(
        lambda: [
            tree
            for tree in COLLECTION.trees
            if JNLEvaluator(tree).satisfies(tree.root, HAND_WRITTEN)
        ],
        repeat=3,
    )
    # The same hand-written formula through the compiled batch path
    # (plan built once, point evaluation per document).
    hand_compiled = compile_formula(HAND_WRITTEN)
    hand_compiled_time = measure(
        lambda: match_many(hand_compiled, COLLECTION.trees), repeat=3
    )
    jsonpath_time = measure(lambda: jsonpath_query(STORE, JSONPATH), repeat=3)
    return format_table(
        "F1 / Section 4.1: front-ends on the JNL core "
        "(300-doc collection / 100-book store)",
        ["query engine", "time"],
        [
            ["MongoDB-find filter -> JNL", f"{mongo_time * 1e3:.2f} ms"],
            ["hand-written JNL", f"{hand_time * 1e3:.2f} ms"],
            ["hand-written JNL, compiled batch", f"{hand_compiled_time * 1e3:.2f} ms"],
            ["JSONPath -> JNL", f"{jsonpath_time * 1e3:.2f} ms"],
        ],
    )


if __name__ == "__main__":
    print(main())
