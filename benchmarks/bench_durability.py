"""F7 -- Durable storage engine: WAL overhead, replay, compaction.

Reproduction target: durability must be a bounded tax, not a rewrite of
the performance story.  Three measurements:

* **WAL ingest overhead** -- per-commit inserts through a
  :class:`~repro.store.durable.DurableEngine` (``sync="flush"``: the
  process-crash durability point) vs the same commits on a memory
  engine.  Pinned ceiling: <= 5x the memory engine.  Since the
  fault-injection PR every byte routes through an
  :class:`~repro.store.faults.IOAdapter`; that indirection is part of
  the measured hot path and must fit inside the same unchanged gate.
* **Replay throughput** -- reopening a collection whose entire state
  lives in the WAL (no snapshot); reported as documents/second,
  unpinned (absolute numbers are machine noise).
* **Compaction win** -- reopening from a checkpointed snapshot vs
  replaying the equivalent long WAL (inserts plus update churn).
  Pinned floor: snapshot-open >= 3x faster.

Recovered state is re-checked against the memory-engine result and the
from-scratch index oracle before any timing is trusted --
``tests/test_durability.py`` pins the same equivalences exhaustively.
"""

from __future__ import annotations

import copy
import os
import shutil
import tempfile

import pytest

from repro.bench.harness import format_table, measure, smoke_mode
from repro.store import Collection, DocumentIndexes, DurableEngine
from repro.workloads import people_collection
from repro import api

DOCS = 60 if smoke_mode() else 2_000

#: The compaction scenario: modest live state behind a long log of
#: update churn.  Replay cost scales with log length, snapshot-open
#: cost with live state -- the gap *is* what compaction buys.
CHURN_DOCS = 20 if smoke_mode() else 150
CHURN_ROUNDS = 3 if smoke_mode() else 150

_PEOPLE = people_collection(DOCS, seed=31)
_CHURN = people_collection(CHURN_DOCS, seed=13)

#: Pinned ratios: ingest overhead is a ceiling (durable may cost at
#: most this multiple of memory), compaction win is a floor.
INGEST_OVERHEAD_CEILING = 5.0
COMPACTION_WIN_FLOOR = 3.0

#: Measured ratios of the last check_targets()/speedups() call.
LAST_SPEEDUPS: dict[str, float] = {}


def _durable(directory: str, **kwargs) -> Collection:
    kwargs.setdefault("sync", "flush")
    return Collection(engine=DurableEngine(directory, "main", **kwargs))


def _ingest_per_commit(collection: Collection) -> None:
    for doc in _PEOPLE:
        collection.insert(copy.deepcopy(doc))


def _measure_ingest() -> tuple[float, float]:
    memory = measure(
        lambda: _ingest_per_commit(api.collection()), repeat=3
    )

    def durable_run() -> None:
        with tempfile.TemporaryDirectory() as scratch:
            collection = _durable(scratch)
            _ingest_per_commit(collection)
            collection.close()

    return memory, measure(durable_run, repeat=3)


def _churn(collection: Collection) -> None:
    for _ in range(CHURN_ROUNDS):
        collection.update_many({}, {"$inc": {"counters.visits": 1}})


def _build_wal_only(directory: str) -> None:
    """State carried entirely by the log: one insert, heavy churn."""
    collection = _durable(directory)
    collection.insert_many(copy.deepcopy(_CHURN))
    _churn(collection)
    collection.close()


def _reopen(directory: str) -> Collection:
    collection = _durable(directory)
    assert len(collection) == CHURN_DOCS
    collection.close()
    return collection


def _measure_recovery() -> tuple[float, float, float]:
    """(replay seconds, snapshot-open seconds, values/sec replayed)."""
    with tempfile.TemporaryDirectory() as scratch:
        wal_dir = os.path.join(scratch, "wal-only")
        snap_dir = os.path.join(scratch, "compacted")
        _build_wal_only(wal_dir)
        shutil.copytree(wal_dir, snap_dir)
        compacted = _durable(snap_dir)
        report = compacted.compact()
        assert report.wal_records == 1 + CHURN_ROUNDS
        compacted.close()

        replay = measure(lambda: _reopen(wal_dir), repeat=3)
        snapshot = measure(lambda: _reopen(snap_dir), repeat=3)
    # Replay folds one post-image per document per churn round.
    replayed_values = CHURN_DOCS * (1 + CHURN_ROUNDS)
    return replay, snapshot, replayed_values / replay


def _check_recovered_state_identical() -> None:
    """The durable collection must reopen to exactly the state the
    memory engine computes, with oracle-consistent indexes."""
    reference = api.collection(copy.deepcopy(_CHURN))
    _churn(reference)
    with tempfile.TemporaryDirectory() as scratch:
        _build_wal_only(scratch)
        recovered = _durable(scratch)
        assert [tree.to_value() for _, tree in recovered.documents()] == [
            tree.to_value() for _, tree in reference.documents()
        ]
        fresh = DocumentIndexes()
        for doc_id, tree in recovered.documents():
            fresh.add(doc_id, tree)
        assert recovered.indexes.snapshot() == fresh.snapshot()
        recovered.close()


def speedups() -> dict[str, float]:
    """Measured ratios (overhead is durable/memory, win is replay/snapshot)."""
    _check_recovered_state_identical()
    memory, durable_time = _measure_ingest()
    replay, snapshot, _rate = _measure_recovery()
    measured = {
        "wal ingest overhead (x memory)": durable_time / memory,
        "compaction win (x replay)": replay / snapshot,
    }
    LAST_SPEEDUPS.clear()
    LAST_SPEEDUPS.update(measured)
    return measured


def check_targets() -> list[str]:
    """Pinned-target regression check (``run_all.py --check-targets``)."""
    measured = speedups()
    failures = []
    overhead = measured["wal ingest overhead (x memory)"]
    if overhead > INGEST_OVERHEAD_CEILING:
        failures.append(
            f"bench_durability: WAL ingest overhead {overhead:.1f}x > "
            f"{INGEST_OVERHEAD_CEILING:.0f}x ceiling"
        )
    win = measured["compaction win (x replay)"]
    if win < COMPACTION_WIN_FLOOR:
        failures.append(
            f"bench_durability: compacted-snapshot open {win:.1f}x < "
            f"{COMPACTION_WIN_FLOOR:.0f}x floor over WAL replay"
        )
    return failures


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only).
# ---------------------------------------------------------------------------


def test_durable_ingest(benchmark):
    def run():
        with tempfile.TemporaryDirectory() as scratch:
            collection = _durable(scratch)
            collection.insert_many(copy.deepcopy(_PEOPLE))
            collection.close()

    benchmark(run)


def test_replay_on_open(benchmark, tmp_path):
    _build_wal_only(str(tmp_path))
    benchmark(lambda: _reopen(str(tmp_path)))


@pytest.mark.skipif(smoke_mode(), reason="timings are meaningless in smoke mode")
def test_durability_targets():
    assert not check_targets(), speedups()


def main() -> str:
    _check_recovered_state_identical()
    memory, durable_time = _measure_ingest()
    replay, snapshot, rate = _measure_recovery()
    commits = DOCS
    table = format_table(
        "F7 / durable engine: WAL ingest, replay-on-open, compaction "
        f"(ceilings: ingest <= {INGEST_OVERHEAD_CEILING:.0f}x memory; "
        f"snapshot open >= {COMPACTION_WIN_FLOOR:.0f}x replay)",
        ["measurement", "memory / snapshot", "durable / replay", "ratio"],
        [
            [
                f"per-commit ingest, {commits} commits",
                f"{memory * 1e3:.2f} ms",
                f"{durable_time * 1e3:.2f} ms",
                f"{durable_time / memory:.1f}x overhead",
            ],
            [
                f"open {CHURN_DOCS} docs, {CHURN_ROUNDS}-round churn log",
                f"{snapshot * 1e3:.2f} ms",
                f"{replay * 1e3:.2f} ms",
                f"{replay / snapshot:.1f}x win",
            ],
        ],
    )
    table += f"\n(WAL replay throughput: {rate:,.0f} post-images/s folded)"
    return table


if __name__ == "__main__":
    print(main())
