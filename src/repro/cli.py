"""Command-line interface: query, validate, solve — from the shell.

Usage (also via ``python -m repro``)::

    repro query  doc.json --jnl  'has(.name.first)'
    repro query  doc.json --jsonpath '$..price'
    repro validate doc.json --schema schema.json [--streaming]
    repro find   people.json --filter '{"age": {"$gt": 30}}' \
                 [--project '{"name": 1}']
    repro sat    --jsl 'some(.a, number)' [--schema schema.json]

Exit status: 0 on success/true, 1 on a false verdict, 2 on usage or
input errors — so the commands compose in shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "JSON trees, JNL/JSL logics and JSON Schema from "
            "Bourhis et al., PODS 2017"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser(
        "query", help="evaluate a JNL formula or JSONPath over a document"
    )
    query.add_argument("document", help="path to a JSON file")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--jnl", help="a unary JNL formula (node filter)")
    group.add_argument("--path", help="a binary JNL path (selects nodes)")
    group.add_argument("--jsonpath", help="a JSONPath expression")
    query.add_argument(
        "--node-ids", action="store_true", help="print node ids, not values"
    )

    validate = commands.add_parser(
        "validate", help="validate a document against a JSON Schema"
    )
    validate.add_argument("document", help="path to a JSON file")
    validate.add_argument("--schema", required=True, help="schema JSON file")
    validate.add_argument(
        "--streaming",
        action="store_true",
        help="validate the raw text as a token stream "
        "(deterministic schemas only)",
    )
    validate.add_argument(
        "--corpus",
        action="store_true",
        help="treat the document file as a JSON array and validate "
        "each element (exit 0 only if every element is valid)",
    )

    find = commands.add_parser(
        "find", help="MongoDB-style find over a JSON array of documents"
    )
    find.add_argument("collection", help="path to a JSON array file")
    find.add_argument("--filter", default="{}", help="find filter (JSON)")
    find.add_argument("--project", help="projection document (JSON)")

    sat = commands.add_parser(
        "sat", help="satisfiability of a JSL/JNL formula or a schema"
    )
    group = sat.add_mutually_exclusive_group(required=True)
    group.add_argument("--jsl", help="a JSL formula or program (text)")
    group.add_argument("--jnl", help="a unary JNL formula (text)")
    group.add_argument("--schema", help="path to a schema JSON file")
    sat.add_argument(
        "--quiet", action="store_true", help="suppress the witness"
    )
    return parser


def _load_tree(path: str):
    from repro.model.tree import JSONTree

    with open(path, encoding="utf-8") as handle:
        return JSONTree.from_json(handle.read())


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.query import compile_query

    tree = _load_tree(args.document)
    if args.jnl:
        query = compile_query(args.jnl, "jnl")
        nodes = query.select(tree)  # document order (root first if selected)
        verdict = tree.root in nodes
    else:
        if args.jsonpath:
            query = compile_query(args.jsonpath, "jsonpath")
        else:
            query = compile_query(args.path, "jnl-path")
        nodes = query.select(tree)
        verdict = bool(nodes)
    for node in nodes:
        if args.node_ids:
            print(node)
        else:
            print(tree.to_json(node))
    return 0 if verdict else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.schema.parser import parse_schema

    if args.corpus and args.streaming:
        print("error: --corpus cannot be combined with --streaming", file=sys.stderr)
        return 2
    with open(args.schema, encoding="utf-8") as handle:
        schema = parse_schema(handle.read())
    if args.streaming:
        from repro.validate import compile_stream_validator

        validator = compile_stream_validator(schema)
        with open(args.document, encoding="utf-8") as handle:
            verdict = validator.validate_text(handle.read())
    else:
        from repro.validate import compile_schema_validator

        compiled = compile_schema_validator(schema)
        tree = _load_tree(args.document)
        if args.corpus:
            if not tree.is_array(tree.root):
                raise ReproError("--corpus requires a JSON array document")
            verdicts = [
                compiled.validate_tree(tree, child)
                for child in tree.array_children(tree.root)
            ]
            for index, ok in enumerate(verdicts):
                print(f"{index}: {'valid' if ok else 'invalid'}")
            return 0 if all(verdicts) else 1
        verdict = compiled.validate_tree(tree)
    print("valid" if verdict else "invalid")
    return 0 if verdict else 1


def _cmd_find(args: argparse.Namespace) -> int:
    from repro.mongo.find import Collection

    with open(args.collection, encoding="utf-8") as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise ReproError("the collection file must hold a JSON array")
    collection = Collection(documents)
    filter_doc = json.loads(args.filter)
    projection = json.loads(args.project) if args.project else None
    results = collection.find(filter_doc, projection)
    for result in results:
        print(json.dumps(result))
    return 0 if results else 1


def _cmd_sat(args: argparse.Namespace) -> int:
    from repro.jsl.satisfiability import jsl_satisfiable

    if args.jsl:
        from repro.jsl.parser import parse_jsl

        result = jsl_satisfiable(parse_jsl(args.jsl))
    elif args.jnl:
        from repro.jnl.parser import parse_jnl
        from repro.jnl.satisfiability import jnl_satisfiable

        result = jnl_satisfiable(parse_jnl(args.jnl))
    else:
        from repro.schema.parser import parse_schema
        from repro.schema.to_jsl import schema_to_jsl

        with open(args.schema, encoding="utf-8") as handle:
            result = jsl_satisfiable(schema_to_jsl(parse_schema(handle.read())))
    if result.satisfiable:
        suffix = "" if result.complete else " (bounded search)"
        print(f"satisfiable{suffix}")
        if not args.quiet and result.witness is not None:
            print(result.witness.to_json())
        return 0
    suffix = "" if result.complete else " (within configured bounds)"
    print(f"unsatisfiable{suffix}")
    return 1


_COMMANDS = {
    "query": _cmd_query,
    "validate": _cmd_validate,
    "find": _cmd_find,
    "sat": _cmd_sat,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
