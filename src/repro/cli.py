"""Command-line interface: query, validate, solve — from the shell.

Usage (also via ``python -m repro``)::

    repro query  doc.json --jnl  'has(.name.first)'
    repro query  doc.json --jsonpath '$..price'
    repro query  --collection corpus.jsonl --jsonpath '$..price'
    repro validate doc.json --schema schema.json [--streaming]
    repro find   people.json --filter '{"age": {"$gt": 30}}' \
                 [--project '{"name": 1}']
    repro find   --collection corpus.jsonl --filter '{"age": {"$gt": 30}}'
    repro find   --collection corpus.jsonl --shards 4 --filter '{...}'
    repro aggregate --collection corpus.jsonl \
                 --pipeline '[{"$match": {"age": {"$gt": 30}}},
                              {"$group": {"_id": "$city", "n": {"$sum": 1}}}]'
    repro update --collection corpus.jsonl \
                 --filter '{"age": {"$gt": 30}}' \
                 --update '{"$inc": {"age": 1}}' [--upsert] [--explain] \
                 [--out updated.jsonl]
    repro update --db ./people_db --filter '{...}' --update '{...}'
    repro db compact ./people_db
    repro sat    --jsl 'some(.a, number)' [--schema schema.json]
    repro serve  ./people_db --port 4321
    repro find   --remote tcp://127.0.0.1:4321 --filter '{"age": {"$gt": 30}}'

``--collection`` takes a JSON-lines corpus (one document per line),
loads it into an indexed :class:`repro.store.Collection` and answers
through the query planner: lines are ``<doc-id><TAB><match>``, one per
per-document match.

``--shards N`` (``find`` / ``aggregate`` / ``update``, with
``--collection``) hash-partitions the corpus into N shards behind a
:class:`repro.store.ShardedCollection` and answers via scatter-gather:
queries fan out per shard (in parallel when the platform supports a
worker pool), aggregation runs map-side per shard and merge-finalizes
at the coordinator.

``--db`` points at a durable database directory instead
(:func:`repro.api.connect`): the named collection (``--name``, default
``main``) is recovered from its snapshot + write-ahead log, and
mutations made by ``update`` are durably committed before the command
reports them.  ``repro db compact`` folds each collection's WAL into a
fresh snapshot.

``repro serve`` exposes a database over TCP (JSON-lines protocol,
snapshot-isolated reads, group-committed writes; see
:mod:`repro.server`), and ``--remote ADDR`` on ``find`` / ``aggregate``
/ ``update`` answers through such a server instead of local files.

Exit status: 0 on success/true, 1 on a false verdict, 2 on usage or
input errors — so the commands compose in shell pipelines.  Every
failure prints one machine-parseable line to stderr::

    error:<TAB><code><TAB><message>

where ``code`` is the stable taxonomy of :mod:`repro.errors`
(``cli.usage`` for bad flag combinations, ``parse.error`` for a
malformed ``--filter``/``--pipeline``/..., ``store.read-only`` for a
degraded engine, and so on).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from typing import Sequence

from repro.errors import ParseError, ReproError, error_code

__all__ = ["main", "build_parser"]

#: Wire-style code for bad flag combinations (not an exception class:
#: usage errors never cross the wire, but the stderr line format is
#: shared with the exception taxonomy).
USAGE_CODE = "cli.usage"


def _fail(code: str, message: str) -> int:
    """Print the uniform ``error:<TAB><code><TAB><message>`` line."""
    print(f"error:\t{code}\t{message}", file=sys.stderr)
    return 2


def _parse_json_arg(name: str, text: str):
    """Parse a JSON command-line argument, naming it on failure."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"malformed {name}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "JSON trees, JNL/JSL logics and JSON Schema from "
            "Bourhis et al., PODS 2017"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_db_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db",
            metavar="DIR",
            help="durable database directory (repro.api.connect)",
        )
        sub.add_argument(
            "--name",
            default="main",
            metavar="NAME",
            help="collection name inside --db/--remote (default: main)",
        )

    def add_remote_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--remote",
            metavar="ADDR",
            help="answer through a running `repro serve` process at "
            "ADDR (host:port or tcp://host:port)",
        )

    def add_shard_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--shards",
            type=int,
            metavar="N",
            help="hash-partition --collection into N shards and answer "
            "via scatter-gather (parallel where supported)",
        )

    query = commands.add_parser(
        "query", help="evaluate a JNL formula or JSONPath over a document"
    )
    query.add_argument(
        "document", nargs="?", help="path to a JSON file (or use --collection)"
    )
    query.add_argument(
        "--collection",
        metavar="FILE",
        help="JSON-lines corpus: evaluate per document via the planner",
    )
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--jnl", help="a unary JNL formula (node filter)")
    group.add_argument("--path", help="a binary JNL path (selects nodes)")
    group.add_argument("--jsonpath", help="a JSONPath expression")
    query.add_argument(
        "--node-ids", action="store_true", help="print node ids, not values"
    )
    add_db_options(query)

    validate = commands.add_parser(
        "validate", help="validate a document against a JSON Schema"
    )
    validate.add_argument("document", help="path to a JSON file")
    validate.add_argument("--schema", required=True, help="schema JSON file")
    validate.add_argument(
        "--streaming",
        action="store_true",
        help="validate the raw text as a token stream "
        "(deterministic schemas only)",
    )
    validate.add_argument(
        "--corpus",
        action="store_true",
        help="treat the document file as a JSON array and validate "
        "each element (exit 0 only if every element is valid)",
    )

    find = commands.add_parser(
        "find", help="MongoDB-style find over a JSON array of documents"
    )
    find.add_argument(
        "documents",
        nargs="?",
        metavar="collection",
        help="path to a JSON array file (or use --collection)",
    )
    find.add_argument(
        "--collection",
        metavar="FILE",
        help="JSON-lines corpus: find per document via the planner",
    )
    find.add_argument("--filter", default="{}", help="find filter (JSON)")
    find.add_argument("--project", help="projection document (JSON)")
    find.add_argument(
        "--explain",
        action="store_true",
        help="print the planner report (one JSON Explain document) "
        "instead of results",
    )
    add_db_options(find)
    add_shard_option(find)
    add_remote_option(find)

    aggregate = commands.add_parser(
        "aggregate",
        help="MongoDB-style aggregation pipeline over documents",
    )
    aggregate.add_argument(
        "documents",
        nargs="?",
        metavar="collection",
        help="path to a JSON array file (or use --collection)",
    )
    aggregate.add_argument(
        "--collection",
        metavar="FILE",
        help="JSON-lines corpus: aggregate via the planner "
        "(leading $match stages pruned by the secondary indexes)",
    )
    aggregate.add_argument(
        "--pipeline",
        required=True,
        help="the aggregation pipeline (a JSON array of stages)",
    )
    aggregate.add_argument(
        "--explain",
        action="store_true",
        help="print the stage report (index-pruned vs streamed) "
        "instead of results",
    )
    add_db_options(aggregate)
    add_shard_option(aggregate)
    add_remote_option(aggregate)

    update = commands.add_parser(
        "update",
        help="MongoDB-style update over documents (delta index "
        "maintenance)",
    )
    update.add_argument(
        "documents",
        nargs="?",
        metavar="collection",
        help="path to a JSON array file (or use --collection)",
    )
    update.add_argument(
        "--collection",
        metavar="FILE",
        help="JSON-lines corpus: update via the planner "
        "(targets pruned by the secondary indexes)",
    )
    update.add_argument(
        "--filter", default="{}", help="find filter selecting targets (JSON)"
    )
    update.add_argument(
        "--update",
        required=True,
        help='the update document (JSON), e.g. \'{"$inc": {"age": 1}}\'',
    )
    update.add_argument(
        "--upsert",
        action="store_true",
        help="insert the filter+update document when nothing matches",
    )
    update.add_argument(
        "--one",
        action="store_true",
        help="update only the first matching document (update_one)",
    )
    update.add_argument(
        "--explain",
        action="store_true",
        help="dry run: print pruned-vs-scanned targets and the index "
        "postings the delta would touch, change nothing",
    )
    update.add_argument(
        "--out",
        metavar="FILE",
        help="write the updated corpus back as JSON-lines",
    )
    add_db_options(update)
    add_shard_option(update)
    add_remote_option(update)

    db = commands.add_parser(
        "db", help="manage a durable database directory (WAL + snapshots)"
    )
    db_commands = db.add_subparsers(dest="db_command", required=True)
    compact = db_commands.add_parser(
        "compact",
        help="fold each collection's write-ahead log into a fresh snapshot",
    )
    compact.add_argument("path", help="database directory")
    compact.add_argument(
        "--name", help="compact only this collection (default: all)"
    )
    verify = db_commands.add_parser(
        "verify",
        help="offline integrity check: snapshot checksums, WAL frames, "
        "LSN discipline, replayability (read-only)",
    )
    verify.add_argument("path", help="database directory")
    verify.add_argument(
        "--name", help="verify only this collection (default: all)"
    )
    repair = db_commands.add_parser(
        "repair",
        help="truncate torn WAL tails and quarantine corrupt files "
        "(renames aside, never deletes), then re-verify",
    )
    repair.add_argument("path", help="database directory")
    repair.add_argument(
        "--name", help="repair only this collection (default: all)"
    )

    serve = commands.add_parser(
        "serve",
        help="serve a database over TCP (JSON-lines protocol, "
        "snapshot-isolated reads, group-committed writes)",
    )
    serve.add_argument(
        "path",
        nargs="?",
        help="durable database directory (omit for a volatile "
        "in-memory database)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="writer group-commit batch ceiling (default: 256)",
    )

    sat = commands.add_parser(
        "sat", help="satisfiability of a JSL/JNL formula or a schema"
    )
    group = sat.add_mutually_exclusive_group(required=True)
    group.add_argument("--jsl", help="a JSL formula or program (text)")
    group.add_argument("--jnl", help="a unary JNL formula (text)")
    group.add_argument("--schema", help="path to a schema JSON file")
    sat.add_argument(
        "--quiet", action="store_true", help="suppress the witness"
    )
    return parser


def _load_tree(path: str):
    from repro.model.tree import JSONTree

    with open(path, encoding="utf-8") as handle:
        return JSONTree.from_json(handle.read())


def _load_collection(path: str):
    """A JSON-lines corpus as an indexed store collection.

    Strict parsing (duplicate keys and floats rejected), matching the
    single-document code path, with the store's shared key interning.
    """
    from repro.store import Collection

    with open(path, encoding="utf-8") as handle:
        return Collection.from_json_lines(handle.read())


def _bad_input_combo(args: argparse.Namespace, positional: str) -> bool:
    """Exactly one document source is required.

    The positional file, ``--collection`` (JSON-lines corpus), ``--db``
    (durable database directory) and ``--remote`` (a ``repro serve``
    address) are mutually exclusive.
    """
    remote = getattr(args, "remote", None)
    sources = (
        getattr(args, positional) is not None,
        args.collection is not None,
        getattr(args, "db", None) is not None,
        remote is not None,
    )
    if sum(sources) != 1:
        _fail(
            USAGE_CODE,
            f"give exactly one of a {positional} file, --collection, "
            "--db or --remote",
        )
        return True
    shards = getattr(args, "shards", None)
    if shards is not None:
        if args.collection is None:
            _fail(
                USAGE_CODE,
                "--shards requires --collection "
                "(a JSON-lines corpus to partition)",
            )
            return True
        if shards < 1:
            _fail(USAGE_CODE, "--shards must be at least 1")
            return True
    return False


def _open_corpus(args: argparse.Namespace, stack: ExitStack):
    """The indexed collection behind ``--collection`` or ``--db``.

    A ``--db`` collection is recovered through
    :func:`repro.api.connect`; the database handle is pushed onto
    ``stack`` so it is closed (WAL flushed) when the command finishes.
    A ``--remote`` collection proxies a running server through
    :mod:`repro.client` -- same uniform surface, nothing local.
    """
    if getattr(args, "remote", None) is not None:
        from repro.client import connect

        database = stack.enter_context(connect(args.remote))
        return database.collection(args.name)
    if getattr(args, "db", None) is not None:
        from repro import api

        database = stack.enter_context(api.connect(args.db))
        return database.collection(args.name)
    shards = getattr(args, "shards", None)
    if shards is not None:
        from repro.model.tree import JSONTree
        from repro.store import ShardedCollection

        with open(args.collection, encoding="utf-8") as handle:
            documents = [
                JSONTree.value_from_json(line)
                for line in handle
                if line.strip()
            ]
        corpus = ShardedCollection(documents, shards=shards)
        stack.callback(corpus.close)
        return corpus
    return _load_collection(args.collection)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.query import compile_query

    if _bad_input_combo(args, "document"):
        return 2
    if args.jnl:
        query = compile_query(args.jnl, "jnl")
    elif args.jsonpath:
        query = compile_query(args.jsonpath, "jsonpath")
    else:
        query = compile_query(args.path, "jnl-path")

    if args.collection is not None or args.db is not None:
        with ExitStack() as stack:
            return _query_collection(args, query, _open_corpus(args, stack))

    tree = _load_tree(args.document)
    nodes = query.select(tree)  # document order (root first if selected)
    verdict = tree.root in nodes if args.jnl else bool(nodes)
    for node in nodes:
        if args.node_ids:
            print(node)
        else:
            print(tree.to_json(node))
    return 0 if verdict else 1


def _query_collection(args: argparse.Namespace, query, collection) -> int:
    """Per-document matches over a corpus, via the planner."""
    from repro.query import planner

    if args.jnl:
        # A JNL filter matches documents (at the root), like `find`.
        matched = planner.match_ids(collection, query)
        for doc_id in matched:
            if args.node_ids:
                print(doc_id)
            else:
                print(f"{doc_id}\t{collection.get(doc_id).to_json()}")
        return 0 if matched else 1
    any_match = False
    for doc_id, nodes in planner.select_nodes(collection, query):
        tree = collection.get(doc_id) if nodes else None
        for node in nodes:
            any_match = True
            if args.node_ids:
                print(f"{doc_id}\t{node}")
            else:
                print(f"{doc_id}\t{tree.to_json(node)}")
    return 0 if any_match else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.schema.parser import parse_schema

    if args.corpus and args.streaming:
        return _fail(
            USAGE_CODE, "--corpus cannot be combined with --streaming"
        )
    with open(args.schema, encoding="utf-8") as handle:
        schema = parse_schema(handle.read())
    if args.streaming:
        from repro.validate import compile_stream_validator

        validator = compile_stream_validator(schema)
        with open(args.document, encoding="utf-8") as handle:
            verdict = validator.validate_text(handle.read())
    else:
        from repro.validate import compile_schema_validator

        compiled = compile_schema_validator(schema)
        tree = _load_tree(args.document)
        if args.corpus:
            if not tree.is_array(tree.root):
                raise ReproError("--corpus requires a JSON array document")
            verdicts = [
                compiled.validate_tree(tree, child)
                for child in tree.array_children(tree.root)
            ]
            for index, ok in enumerate(verdicts):
                print(f"{index}: {'valid' if ok else 'invalid'}")
            return 0 if all(verdicts) else 1
        verdict = compiled.validate_tree(tree)
    print("valid" if verdict else "invalid")
    return 0 if verdict else 1


def _print_explain(report) -> int:
    """Every ``--explain`` prints one uniform JSON Explain document
    (a shard fan-out prints a JSON array of per-shard reports)."""
    if isinstance(report, list):
        print(json.dumps([item.to_json() for item in report], indent=2))
    else:
        print(json.dumps(report.to_json(), indent=2))
    return 0


def _cmd_find(args: argparse.Namespace) -> int:
    from repro import api

    if _bad_input_combo(args, "documents"):
        return 2
    filter_doc = _parse_json_arg("--filter", args.filter)
    projection = (
        _parse_json_arg("--project", args.project) if args.project else None
    )

    if args.remote is not None:
        with ExitStack() as stack:
            corpus = _open_corpus(args, stack)
            if args.explain:
                return _print_explain(corpus.explain(filter_doc))
            rows = corpus.find(filter_doc, projection)
            for row in rows:
                print(json.dumps(row))
        return 0 if rows else 1

    if args.collection is not None or args.db is not None:
        from repro.query import compile_mongo_find, planner

        with ExitStack() as stack:
            corpus = _open_corpus(args, stack)
            if args.explain:
                return _print_explain(corpus.explain(filter_doc))
            if args.shards is not None:
                rows = corpus.find_rows(filter_doc, projection)
                for doc_id, value in rows:
                    print(f"{doc_id}\t{json.dumps(value)}")
                return 0 if rows else 1
            query = compile_mongo_find(filter_doc, projection)
            matched = planner.match_ids(corpus, query)
            applied = query.projection
            for doc_id in matched:
                value = corpus.get(doc_id).to_value()
                if applied is not None:
                    value = applied.apply_value(value)
                print(f"{doc_id}\t{json.dumps(value)}")
        return 0 if matched else 1

    with open(args.documents, encoding="utf-8") as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise ReproError("the collection file must hold a JSON array")
    # One query over a throwaway collection: building secondary indexes
    # would cost more than the single scan they could save.
    collection = api.collection(documents, indexed=False)
    if args.explain:
        return _print_explain(collection.explain(filter_doc))
    results = collection.find(filter_doc, projection)
    for result in results:
        print(json.dumps(result))
    return 0 if results else 1


def _cmd_aggregate(args: argparse.Namespace) -> int:
    from repro.mongo.aggregate import compile_pipeline

    if _bad_input_combo(args, "documents"):
        return 2
    pipeline = _parse_json_arg("--pipeline", args.pipeline)

    if args.remote is not None:
        with ExitStack() as stack:
            corpus = _open_corpus(args, stack)
            if args.explain:
                return _print_explain(corpus.explain(pipeline=pipeline))
            results = corpus.aggregate(pipeline)
        for row in results:
            print(json.dumps(row))
        return 0 if results else 1

    compiled = compile_pipeline(pipeline)

    with ExitStack() as stack:
        if args.collection is not None or args.db is not None:
            corpus = _open_corpus(args, stack)
        else:
            from repro import api

            with open(args.documents, encoding="utf-8") as handle:
                documents = json.load(handle)
            if not isinstance(documents, list):
                raise ReproError("the collection file must hold a JSON array")
            # One pipeline over a throwaway collection: skip index builds.
            corpus = api.collection(documents, indexed=False)

        if args.explain:
            return _print_explain(compiled.explain(corpus))
        results = compiled.execute(corpus)
    for row in results:
        print(json.dumps(row))
    return 0 if results else 1


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.mongo.update import explain_update, update_many, update_one

    if _bad_input_combo(args, "documents"):
        return 2
    if args.explain and (args.upsert or args.out):
        return _fail(
            USAGE_CODE,
            "--explain is a dry run; it cannot be combined with "
            "--upsert or --out",
        )
    filter_doc = _parse_json_arg("--filter", args.filter)
    update_doc = _parse_json_arg("--update", args.update)

    if args.remote is not None:
        if args.out:
            return _fail(
                USAGE_CODE,
                "--out is a local operation; it cannot be combined "
                "with --remote",
            )
        with ExitStack() as stack:
            corpus = _open_corpus(args, stack)
            if args.explain:
                return _print_explain(
                    corpus.explain(
                        filter_doc, update=update_doc, first_only=args.one
                    )
                )
            run = corpus.update_one if args.one else corpus.update_many
            result = run(filter_doc, update_doc, upsert=args.upsert)
        upserted = (
            ""
            if result["upserted_id"] is None
            else f" upserted_id={result['upserted_id']}"
        )
        print(
            f"matched={result['matched']} "
            f"modified={result['modified']}{upserted}"
        )
        return (
            0
            if result["matched"] or result["upserted_id"] is not None
            else 1
        )

    with ExitStack() as stack:
        if args.collection is not None or args.db is not None:
            corpus = _open_corpus(args, stack)
        else:
            from repro import api

            with open(args.documents, encoding="utf-8") as handle:
                documents = json.load(handle)
            if not isinstance(documents, list):
                raise ReproError("the collection file must hold a JSON array")
            corpus = api.collection(documents)

        if args.shards is not None:
            return _update_sharded(args, corpus, filter_doc, update_doc)

        if args.explain:
            return _print_explain(
                explain_update(
                    corpus, filter_doc, update_doc, first_only=args.one
                )
            )

        run = update_one if args.one else update_many
        result = run(corpus, filter_doc, update_doc, upsert=args.upsert)
        upserted = (
            ""
            if result.upserted_id is None
            else f" upserted_id={result.upserted_id}"
        )
        print(
            f"matched={result.matched_count} "
            f"modified={result.modified_count}{upserted}"
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                for _, tree in corpus.documents():
                    handle.write(tree.to_json() + "\n")
    return 0 if result.matched_count or result.upserted_id is not None else 1


def _update_sharded(
    args: argparse.Namespace, corpus, filter_doc, update_doc
) -> int:
    """The ``--shards`` half of ``repro update``: shard-routed writes,
    per-shard dry-run reports."""
    if args.explain:
        return _print_explain(
            corpus.explain_update(filter_doc, update_doc, first_only=args.one)
        )
    run = corpus.update_one if args.one else corpus.update_many
    result = run(filter_doc, update_doc, upsert=args.upsert)
    upserted = (
        ""
        if result.upserted_id is None
        else f" upserted_id={result.upserted_id}"
    )
    print(
        f"matched={result.matched_count} "
        f"modified={result.modified_count}{upserted}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for _, value in corpus.values():
                handle.write(json.dumps(value) + "\n")
    return 0 if result.matched_count or result.upserted_id is not None else 1


def _print_integrity(report) -> None:
    for check in report.collections:
        docs = "?" if check.documents is None else check.documents
        status = "ok" if check.ok else "CORRUPT"
        print(
            f"{check.name}\t{status} documents={docs} "
            f"wal_frames={check.wal_frames} "
            f"snapshot_lsn={check.snapshot_lsn}"
        )
    for finding in report.findings():
        print(f"  {finding}")


def _cmd_db(args: argparse.Namespace) -> int:
    from repro import api
    from repro.store.fsck import repair, verify

    if args.db_command == "verify":
        report = verify(args.path, args.name)
        _print_integrity(report)
        print("verify: clean" if report.ok else "verify: PROBLEMS FOUND")
        return 0 if report.ok else 1
    if args.db_command == "repair":
        result = repair(args.path, args.name)
        for action in result.actions:
            print(action)
        if not result.actions:
            print("nothing to repair")
        _print_integrity(result.verified)
        print(
            "repair: clean"
            if result.ok
            else "repair: PROBLEMS REMAIN (quarantined files need manual "
            "review)"
        )
        return 0 if result.ok else 1
    with api.connect(args.path) as database:
        reports = database.compact(args.name)
    if not reports:
        print("nothing to compact")
        return 0
    for name, report in sorted(reports.items()):
        print(
            f"{name}\twal_records={report.wal_records} "
            f"wal_bytes={report.wal_bytes} "
            f"snapshot_bytes={report.snapshot_bytes} lsn={report.lsn}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a server until interrupted (or remotely shut down)."""
    import asyncio

    from repro import api
    from repro.server import serve

    if args.port < 0 or args.port > 65535:
        return _fail(USAGE_CODE, "--port must be in 0..65535")
    if args.max_batch < 1:
        return _fail(USAGE_CODE, "--max-batch must be at least 1")

    def announce(server) -> None:
        host, port = server.address
        where = args.path if args.path is not None else "memory"
        print(f"serving {where} on {host}:{port}", flush=True)

    database = api.connect(args.path)
    try:
        asyncio.run(
            serve(
                database,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                on_ready=announce,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        database.close()
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    from repro.jsl.satisfiability import jsl_satisfiable

    if args.jsl:
        from repro.jsl.parser import parse_jsl

        result = jsl_satisfiable(parse_jsl(args.jsl))
    elif args.jnl:
        from repro.jnl.parser import parse_jnl
        from repro.jnl.satisfiability import jnl_satisfiable

        result = jnl_satisfiable(parse_jnl(args.jnl))
    else:
        from repro.schema.parser import parse_schema
        from repro.schema.to_jsl import schema_to_jsl

        with open(args.schema, encoding="utf-8") as handle:
            result = jsl_satisfiable(schema_to_jsl(parse_schema(handle.read())))
    if result.satisfiable:
        suffix = "" if result.complete else " (bounded search)"
        print(f"satisfiable{suffix}")
        if not args.quiet and result.witness is not None:
            print(result.witness.to_json())
        return 0
    suffix = "" if result.complete else " (within configured bounds)"
    print(f"unsatisfiable{suffix}")
    return 1


_COMMANDS = {
    "query": _cmd_query,
    "validate": _cmd_validate,
    "find": _cmd_find,
    "aggregate": _cmd_aggregate,
    "update": _cmd_update,
    "db": _cmd_db,
    "serve": _cmd_serve,
    "sat": _cmd_sat,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        if isinstance(exc, ReproError):
            code = error_code(exc)
        elif isinstance(exc, json.JSONDecodeError):
            code = "parse.error"
        else:
            code = "os.error"
        return _fail(code, str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
