"""Compiled validation pipeline: compile once, validate many.

The validation-side twin of :mod:`repro.query`:

* :class:`~repro.validate.compiled.CompiledValidator` -- a schema or
  JSL formula lowered to a flat program of per-kind closures, with a
  raw-value fast path that never materialises a
  :class:`~repro.model.tree.JSONTree`;
* :func:`~repro.validate.compiled.compile_schema_validator` /
  :func:`~repro.validate.compiled.compile_jsl_validator` /
  :func:`~repro.validate.compiled.compile_stream_validator` -- cached
  compilers sharing the process-wide artifact cache of
  :mod:`repro.cache` with the query plans;
* :mod:`~repro.validate.bulk` -- corpus validation (one validator,
  many documents; streaming verdicts; early exit) and multi-schema
  validation (many validators, one document).
"""

from repro.cache import (
    artifact_cache,
    artifact_cache_stats,
    clear_artifact_cache,
    configure_artifact_cache,
)
from repro.validate.bulk import (
    CorpusReport,
    iter_validate,
    validate_corpus,
    validate_document,
)
from repro.validate.compiled import (
    CompiledValidator,
    compile_jsl_validator,
    compile_schema_validator,
    compile_stream_validator,
)

__all__ = [
    "CompiledValidator",
    "compile_schema_validator",
    "compile_jsl_validator",
    "compile_stream_validator",
    "CorpusReport",
    "iter_validate",
    "validate_corpus",
    "validate_document",
    "artifact_cache",
    "artifact_cache_stats",
    "clear_artifact_cache",
    "configure_artifact_cache",
]
