"""Raw-value primitives for the validators' no-tree fast path.

The compiled validators can run directly over Python values (``dict`` /
``list`` / ``str`` / ``int``) without materialising a
:class:`~repro.model.tree.JSONTree` -- the corpus-validation workload
parses JSON once and never needs the arena.  This module holds the
value-level counterparts of the tree primitives:

* :func:`check_supported` -- the paper's abstraction check, mirroring
  ``JSONTree.from_value`` (no floats, booleans or ``null``);
* :func:`canonical_value` -- a hashable canonical form whose equality
  coincides exactly with subtree equality of the corresponding trees
  (objects are unordered, arrays ordered), used for ``enum`` membership
  and the ``Unique``/``uniqueItems`` distinctness tests.

The fast path checks values *lazily*: a value the schema never inspects
(e.g. under an unconstrained key) is not kind-checked, whereas
``from_value`` rejects unsupported values anywhere in the document.
Positions the program does reach raise the same
:class:`~repro.errors.UnsupportedValueError`.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import UnsupportedValueError

__all__ = ["check_supported", "canonical_value", "children_count"]


def check_supported(value: Any) -> None:
    """Raise unless ``value``'s top level is in the paper's abstraction.

    Called by the compiled ops on a kind mismatch, so that e.g. a float
    reaching a ``{"type": "number"}`` op raises exactly like
    ``JSONTree.from_value`` would, instead of silently failing the op.
    """
    if isinstance(value, bool) or not isinstance(
        value, (dict, list, tuple, str, int)
    ):
        raise UnsupportedValueError(
            f"unsupported JSON value of type {type(value).__name__}: {value!r}"
        )


def children_count(value: Any) -> int:
    """The number of children (``MinCh``/``MaxCh``); leaves have none."""
    if isinstance(value, (dict, list, tuple)):
        return len(value)
    check_supported(value)
    return 0


def canonical_value(value: Any) -> Hashable:
    """A hashable form equal iff the values denote equal JSON trees.

    Strings and numbers map to themselves, arrays to tuples, objects to
    frozensets of ``(key, canonical child)`` pairs -- order-insensitive,
    matching the unordered object semantics of
    :func:`repro.model.equality.subtree_equal`.  The mapping is
    injective up to JSON equality, so comparing canonical forms is an
    *exact* equality test, not a hash filter.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        check_supported(value)  # always raises
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        pairs = []
        for key, sub in value.items():
            if not isinstance(key, str):
                raise UnsupportedValueError(
                    f"object keys must be strings, got {type(key).__name__}"
                )
            pairs.append((key, canonical_value(sub)))
        return frozenset(pairs)
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(sub) for sub in value)
    check_supported(value)  # always raises
    raise AssertionError("unreachable")  # pragma: no cover
