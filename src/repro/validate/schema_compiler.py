"""Compile parsed JSON Schema into a flat validator program.

The seed interpreter (:class:`repro.schema.validator.SchemaValidator`)
re-discovers the schema's shape on every visited node of every call: an
``isinstance`` ladder per schema node, a ``dict(schema.properties)``
rebuild per object node, a definition-map lookup per ``$ref``.  This
compiler does all of that once, at compile time:

* ``$ref`` well-formedness is checked and every reference resolved to a
  definition *slot* up front;
* key sets (``required``), property maps, pattern matchers and ``enum``
  canonical forms are prebuilt;
* every schema node becomes a pair of closures -- one running over a
  :class:`~repro.model.tree.JSONTree` arena, one directly over raw
  Python values -- so per-node dispatch is a single call, not a ladder.

Both closures take a per-call context dict used to memoise reference
results (``(slot, node)`` on trees, ``(slot, id(value))`` on values),
which keeps validation polynomial exactly like the seed's memo; plain
re-entry through guarded references always reaches a strictly deeper
node, so recursion terminates by well-formedness (Theorem 3).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchemaError, UnsupportedValueError
from repro.model.equality import all_children_distinct, subtree_equal
from repro.model.tree import JSONTree, Kind
from repro.schema import ast
from repro.schema.refs import check_schema_well_formed
from repro.validate.values import canonical_value, check_supported

__all__ = ["compile_schema_program", "TreeFn", "ValueFn"]

# The two backends' closure signatures.  ``ctx`` is the per-call memo.
TreeFn = Callable[[JSONTree, int, dict], bool]
ValueFn = Callable[[Any, dict], bool]

_OBJECT = Kind.OBJECT
_ARRAY = Kind.ARRAY
_STRING = Kind.STRING
_NUMBER = Kind.NUMBER


def compile_schema_program(
    document: ast.Schema, *, exact_unique: bool = False
) -> tuple[TreeFn, ValueFn]:
    """Compile a schema (document or fragment) into its two entry closures."""
    if isinstance(document, ast.SchemaDocument):
        check_schema_well_formed(document)
        compiler = _SchemaCompiler(document.definition_map(), exact_unique)
        root = document.root
    else:
        compiler = _SchemaCompiler({}, exact_unique)
        root = document
    compiler.compile_definitions()
    return compiler.compile(root)


class _SchemaCompiler:
    """One compilation pass; holds the definition slots."""

    def __init__(
        self, definitions: dict[str, ast.Schema], exact_unique: bool
    ) -> None:
        self.definitions = definitions
        self.exact_unique = exact_unique
        self.slot_of = {name: i for i, name in enumerate(definitions)}
        self.tree_slots: list[TreeFn | None] = [None] * len(definitions)
        self.value_slots: list[ValueFn | None] = [None] * len(definitions)

    def compile_definitions(self) -> None:
        """Fill every definition slot (before the root, so that the
        reference closures' late slot lookups always succeed)."""
        for name, schema in self.definitions.items():
            slot = self.slot_of[name]
            self.tree_slots[slot], self.value_slots[slot] = self.compile(schema)

    # ------------------------------------------------------------------

    def compile(self, schema: ast.Schema) -> tuple[TreeFn, ValueFn]:
        if isinstance(schema, ast.TrueSchema):
            return (lambda tree, node, ctx: True), (lambda value, ctx: True)
        if isinstance(schema, ast.StringSchema):
            return self._compile_string(schema)
        if isinstance(schema, ast.NumberSchema):
            return self._compile_number(schema)
        if isinstance(schema, ast.ObjectSchema):
            return self._compile_object(schema)
        if isinstance(schema, ast.ArraySchema):
            return self._compile_array(schema)
        if isinstance(schema, ast.AllOf):
            return self._compile_junction(schema.schemas, want=False)
        if isinstance(schema, ast.AnyOf):
            return self._compile_junction(schema.schemas, want=True)
        if isinstance(schema, ast.NotSchema):
            sub_tree, sub_value = self.compile(schema.schema)
            return (
                lambda tree, node, ctx: not sub_tree(tree, node, ctx),
                lambda value, ctx: not sub_value(value, ctx),
            )
        if isinstance(schema, ast.EnumSchema):
            return self._compile_enum(schema)
        if isinstance(schema, ast.RefSchema):
            return self._compile_ref(schema)
        if isinstance(schema, ast.SchemaDocument):
            raise SchemaError("nested schema documents are not allowed")
        raise TypeError(f"unknown schema {schema!r}")

    # ------------------------------------------------------------------

    @staticmethod
    def _compile_string(schema: ast.StringSchema) -> tuple[TreeFn, ValueFn]:
        if schema.lang is None:

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                return tree.kind(node) is _STRING

            def value_fn(value: Any, ctx: dict) -> bool:
                if isinstance(value, str):
                    return True
                check_supported(value)
                return False

            return tree_fn, value_fn

        matches = schema.lang.matches

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            return tree.kind(node) is _STRING and matches(tree.value(node))

        def value_fn(value: Any, ctx: dict) -> bool:
            if isinstance(value, str):
                return matches(value)
            check_supported(value)
            return False

        return tree_fn, value_fn

    @staticmethod
    def _compile_number(schema: ast.NumberSchema) -> tuple[TreeFn, ValueFn]:
        minimum, maximum, multiple = (
            schema.minimum,
            schema.maximum,
            schema.multiple_of,
        )

        def accepts(value: int) -> bool:
            if minimum is not None and value < minimum:
                return False
            if maximum is not None and value > maximum:
                return False
            if multiple is not None:
                if multiple == 0:
                    return value == 0
                return value % multiple == 0
            return True

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            return tree.kind(node) is _NUMBER and accepts(tree.value(node))

        def value_fn(value: Any, ctx: dict) -> bool:
            if isinstance(value, int) and not isinstance(value, bool):
                return accepts(value)
            check_supported(value)
            return False

        return tree_fn, value_fn

    def _compile_object(self, schema: ast.ObjectSchema) -> tuple[TreeFn, ValueFn]:
        required = schema.required
        min_p, max_p = schema.min_properties, schema.max_properties
        prop_tree: dict[str, TreeFn] = {}
        prop_value: dict[str, ValueFn] = {}
        for key, sub in schema.properties:
            prop_tree[key], prop_value[key] = self.compile(sub)
        patterns_tree: list[tuple[Callable[[str], bool], TreeFn]] = []
        patterns_value: list[tuple[Callable[[str], bool], ValueFn]] = []
        for lang, (_pattern, sub) in zip(
            schema.pattern_langs, schema.pattern_properties
        ):
            sub_tree, sub_value = self.compile(sub)
            patterns_tree.append((lang.matches, sub_tree))
            patterns_value.append((lang.matches, sub_value))
        if schema.additional_properties is not None:
            addl_tree, addl_value = self.compile(schema.additional_properties)
        else:
            addl_tree = addl_value = None
        # Whether visiting the children can change the verdict at all.
        per_child = bool(prop_tree or patterns_tree or addl_tree is not None)
        get_prop_tree = prop_tree.get
        get_prop_value = prop_value.get

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            if tree.kind(node) is not _OBJECT:
                return False
            count = tree.num_children(node)
            if min_p is not None and count < min_p:
                return False
            if max_p is not None and count > max_p:
                return False
            for key in required:
                if tree.object_child(node, key) is None:
                    return False
            if not per_child:
                return True
            for label, child in tree.edges(node):
                constrained = False
                sub = get_prop_tree(label)
                if sub is not None:
                    constrained = True
                    if not sub(tree, child, ctx):
                        return False
                for matches, pat in patterns_tree:
                    if matches(label):
                        constrained = True
                        if not pat(tree, child, ctx):
                            return False
                if not constrained and addl_tree is not None:
                    if not addl_tree(tree, child, ctx):
                        return False
            return True

        def value_fn(value: Any, ctx: dict) -> bool:
            if not isinstance(value, dict):
                check_supported(value)
                return False
            count = len(value)
            if min_p is not None and count < min_p:
                return False
            if max_p is not None and count > max_p:
                return False
            for key in required:
                if key not in value:
                    return False
            if not per_child:
                return True
            for key, sub_value_item in value.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError(
                        f"object keys must be strings, got {type(key).__name__}"
                    )
                constrained = False
                sub = get_prop_value(key)
                if sub is not None:
                    constrained = True
                    if not sub(sub_value_item, ctx):
                        return False
                for matches, pat in patterns_value:
                    if matches(key):
                        constrained = True
                        if not pat(sub_value_item, ctx):
                            return False
                if not constrained and addl_value is not None:
                    if not addl_value(sub_value_item, ctx):
                        return False
            return True

        return tree_fn, value_fn

    def _compile_array(self, schema: ast.ArraySchema) -> tuple[TreeFn, ValueFn]:
        exact = self.exact_unique
        unique = schema.unique_items
        if schema.items is not None:
            item_fns = [self.compile(sub) for sub in schema.items]
            items_tree = tuple(fn for fn, _ in item_fns)
            items_value = tuple(fn for _, fn in item_fns)
        else:
            items_tree = items_value = None
        if schema.additional_items is not None:
            addl_tree, addl_value = self.compile(schema.additional_items)
        else:
            addl_tree = addl_value = None
        n_items = len(items_tree) if items_tree is not None else 0

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            if tree.kind(node) is not _ARRAY:
                return False
            if unique and not all_children_distinct(
                tree, node, exact_pairwise=exact
            ):
                return False
            children = tree.array_children(node)
            if items_tree is None:
                if addl_tree is not None:
                    return all(
                        addl_tree(tree, child, ctx) for child in children
                    )
                return True
            # Paper's Theorem-1 semantics: the first len(items) positions
            # are required (DIA_{i:i}); extras need additionalItems.
            if len(children) < n_items:
                return False
            for sub, child in zip(items_tree, children):
                if not sub(tree, child, ctx):
                    return False
            if len(children) == n_items:
                return True
            if addl_tree is None:
                return False
            return all(
                addl_tree(tree, child, ctx) for child in children[n_items:]
            )

        def value_fn(value: Any, ctx: dict) -> bool:
            if not isinstance(value, (list, tuple)):
                check_supported(value)
                return False
            if unique and not _value_children_distinct(value, exact):
                return False
            if items_value is None:
                if addl_value is not None:
                    return all(addl_value(child, ctx) for child in value)
                return True
            if len(value) < n_items:
                return False
            for sub, child in zip(items_value, value):
                if not sub(child, ctx):
                    return False
            if len(value) == n_items:
                return True
            if addl_value is None:
                return False
            return all(addl_value(child, ctx) for child in value[n_items:])

        return tree_fn, value_fn

    def _compile_junction(
        self, schemas: tuple[ast.Schema, ...], *, want: bool
    ) -> tuple[TreeFn, ValueFn]:
        """``anyOf`` (``want=True``) / ``allOf`` (``want=False``)."""
        pairs = [self.compile(sub) for sub in schemas]
        tree_fns = tuple(fn for fn, _ in pairs)
        value_fns = tuple(fn for _, fn in pairs)

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            for fn in tree_fns:
                if fn(tree, node, ctx) is want:
                    return want
            return not want

        def value_fn(value: Any, ctx: dict) -> bool:
            for fn in value_fns:
                if fn(value, ctx) is want:
                    return want
            return not want

        return tree_fn, value_fn

    @staticmethod
    def _compile_enum(schema: ast.EnumSchema) -> tuple[TreeFn, ValueFn]:
        documents = schema.documents
        canons = frozenset(
            canonical_value(doc.to_value()) for doc in documents
        )

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            return any(
                subtree_equal(tree, node, doc, doc.root) for doc in documents
            )

        def value_fn(value: Any, ctx: dict) -> bool:
            return canonical_value(value) in canons

        return tree_fn, value_fn

    def _compile_ref(self, schema: ast.RefSchema) -> tuple[TreeFn, ValueFn]:
        slot = self.slot_of.get(schema.name)
        if slot is None:
            raise SchemaError(f"unresolved $ref #/definitions/{schema.name}")
        tree_slots = self.tree_slots
        value_slots = self.value_slots

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            key = (slot, node)
            cached = ctx.get(key)
            if cached is None:
                cached = tree_slots[slot](tree, node, ctx)
                ctx[key] = cached
            return cached

        def value_fn(value: Any, ctx: dict) -> bool:
            key = (slot, id(value))
            cached = ctx.get(key)
            if cached is None:
                cached = value_slots[slot](value, ctx)
                ctx[key] = cached
            return cached

        return tree_fn, value_fn


def _value_children_distinct(value: Any, exact_pairwise: bool) -> bool:
    """``uniqueItems`` over raw values, via exact canonical forms."""
    if len(value) < 2:
        return True
    canons = [canonical_value(child) for child in value]
    if exact_pairwise:
        # The paper's quadratic pairwise comparison (ablation parity).
        for i, left in enumerate(canons):
            for right in canons[i + 1 :]:
                if left == right:
                    return False
        return True
    return len(set(canons)) == len(canons)
