"""Compile JSL formulas into a flat validator program.

The Proposition-6 evaluator is set-at-a-time: every subformula costs a
pass over the whole arena, which is the right shape for
``nodes_satisfying`` but wasteful for the boolean Evaluation problem
``J |= phi`` -- a root check only ever needs the nodes the modalities
can reach.  This compiler turns a formula (or a well-formed recursive
expression) into point-evaluation closures, one per subformula, with
everything tree-independent prebuilt:

* key-modal matchers are bound once (``DIA_w`` / ``BOX_w`` over a
  single word become a plain dict lookup, general languages a prebuilt
  DFA membership test);
* index modalities become range slices;
* node tests compile to specialised closures (no isinstance ladder per
  node per call);
* recursive definitions get slots, with per-call ``(slot, node)``
  memoisation; unguarded expansion terminates because the precedence
  graph is acyclic (Section 5.3).

Like the schema program, each subformula yields a tree closure and a
raw-value closure, so corpus validation can skip tree materialisation.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TranslationError
from repro.jsl import ast
from repro.jsl.recursion import check_well_formed
from repro.logic import nodetests as nt
from repro.model.equality import all_children_distinct, subtree_equal
from repro.model.tree import JSONTree, Kind
from repro.validate.schema_compiler import (
    TreeFn,
    ValueFn,
    _value_children_distinct,
)
from repro.validate.values import canonical_value, check_supported, children_count

__all__ = ["compile_jsl_program"]

_OBJECT = Kind.OBJECT
_ARRAY = Kind.ARRAY
_STRING = Kind.STRING
_NUMBER = Kind.NUMBER

_MISSING = object()


def compile_jsl_program(
    formula: ast.Formula | ast.RecursiveJSL, *, exact_unique: bool = False
) -> tuple[TreeFn, ValueFn]:
    """Compile a (possibly recursive) JSL formula into its two closures."""
    if isinstance(formula, ast.RecursiveJSL):
        check_well_formed(formula)
        compiler = _JSLCompiler(formula.definition_map(), exact_unique)
        base = formula.base
    else:
        compiler = _JSLCompiler({}, exact_unique)
        base = formula
    compiler.compile_definitions()
    return compiler.compile(base)


class _JSLCompiler:
    def __init__(
        self, definitions: dict[str, ast.Formula], exact_unique: bool
    ) -> None:
        self.definitions = definitions
        self.exact_unique = exact_unique
        self.slot_of = {name: i for i, name in enumerate(definitions)}
        self.tree_slots: list[TreeFn | None] = [None] * len(definitions)
        self.value_slots: list[ValueFn | None] = [None] * len(definitions)

    def compile_definitions(self) -> None:
        for name, body in self.definitions.items():
            slot = self.slot_of[name]
            self.tree_slots[slot], self.value_slots[slot] = self.compile(body)

    # ------------------------------------------------------------------

    def compile(self, formula: ast.Formula) -> tuple[TreeFn, ValueFn]:
        if isinstance(formula, ast.Top):
            return (lambda tree, node, ctx: True), (lambda value, ctx: True)
        if isinstance(formula, ast.Not):
            sub_tree, sub_value = self.compile(formula.operand)
            return (
                lambda tree, node, ctx: not sub_tree(tree, node, ctx),
                lambda value, ctx: not sub_value(value, ctx),
            )
        if isinstance(formula, ast.And):
            lt, lv = self.compile(formula.left)
            rt, rv = self.compile(formula.right)
            return (
                lambda tree, node, ctx: lt(tree, node, ctx)
                and rt(tree, node, ctx),
                lambda value, ctx: lv(value, ctx) and rv(value, ctx),
            )
        if isinstance(formula, ast.Or):
            lt, lv = self.compile(formula.left)
            rt, rv = self.compile(formula.right)
            return (
                lambda tree, node, ctx: lt(tree, node, ctx)
                or rt(tree, node, ctx),
                lambda value, ctx: lv(value, ctx) or rv(value, ctx),
            )
        if isinstance(formula, ast.TestAtom):
            return self._compile_test(formula.test)
        if isinstance(formula, ast.DiaKey):
            return self._compile_key_modal(formula, existential=True)
        if isinstance(formula, ast.BoxKey):
            return self._compile_key_modal(formula, existential=False)
        if isinstance(formula, ast.DiaIdx):
            return self._compile_idx_modal(formula, existential=True)
        if isinstance(formula, ast.BoxIdx):
            return self._compile_idx_modal(formula, existential=False)
        if isinstance(formula, ast.Ref):
            return self._compile_ref(formula)
        raise TypeError(f"unknown JSL formula {formula!r}")

    # ------------------------------------------------------------------

    def _compile_test(self, test: nt.NodeTest) -> tuple[TreeFn, ValueFn]:
        if isinstance(test, nt.IsObject):
            return (
                lambda tree, node, ctx: tree.kind(node) is _OBJECT,
                lambda value, ctx: isinstance(value, dict)
                or (check_supported(value) or False),
            )
        if isinstance(test, nt.IsArray):
            return (
                lambda tree, node, ctx: tree.kind(node) is _ARRAY,
                lambda value, ctx: isinstance(value, (list, tuple))
                or (check_supported(value) or False),
            )
        if isinstance(test, nt.IsString):
            return (
                lambda tree, node, ctx: tree.kind(node) is _STRING,
                lambda value, ctx: isinstance(value, str)
                or (check_supported(value) or False),
            )
        if isinstance(test, nt.IsNumber):
            return (
                lambda tree, node, ctx: tree.kind(node) is _NUMBER,
                lambda value, ctx: (
                    isinstance(value, int) and not isinstance(value, bool)
                )
                or (check_supported(value) or False),
            )
        if isinstance(test, nt.Pattern):
            matches = test.lang.matches

            def tree_pattern(tree: JSONTree, node: int, ctx: dict) -> bool:
                return tree.kind(node) is _STRING and matches(tree.value(node))

            def value_pattern(value: Any, ctx: dict) -> bool:
                if isinstance(value, str):
                    return matches(value)
                check_supported(value)
                return False

            return tree_pattern, value_pattern
        if isinstance(test, (nt.MinVal, nt.MaxVal, nt.MultOf)):
            return self._compile_numeric_test(test)
        if isinstance(test, nt.MinCh):
            count = test.count
            return (
                lambda tree, node, ctx: tree.num_children(node) >= count,
                lambda value, ctx: children_count(value) >= count,
            )
        if isinstance(test, nt.MaxCh):
            count = test.count
            return (
                lambda tree, node, ctx: tree.num_children(node) <= count,
                lambda value, ctx: children_count(value) <= count,
            )
        if isinstance(test, nt.Unique):
            exact = self.exact_unique

            def tree_unique(tree: JSONTree, node: int, ctx: dict) -> bool:
                return tree.kind(node) is _ARRAY and all_children_distinct(
                    tree, node, exact_pairwise=exact
                )

            def value_unique(value: Any, ctx: dict) -> bool:
                if isinstance(value, (list, tuple)):
                    return _value_children_distinct(value, exact)
                check_supported(value)
                return False

            return tree_unique, value_unique
        if isinstance(test, nt.EqDocTest):
            doc = test.doc
            canon = canonical_value(doc.to_value())

            def tree_eq(tree: JSONTree, node: int, ctx: dict) -> bool:
                return subtree_equal(tree, node, doc, doc.root)

            def value_eq(value: Any, ctx: dict) -> bool:
                return canonical_value(value) == canon

            return tree_eq, value_eq
        raise TypeError(f"unknown node test {test!r}")

    @staticmethod
    def _compile_numeric_test(
        test: "nt.MinVal | nt.MaxVal | nt.MultOf",
    ) -> tuple[TreeFn, ValueFn]:
        if isinstance(test, nt.MinVal):
            bound = test.bound
            accepts = lambda value: value > bound  # noqa: E731 - tight closure
        elif isinstance(test, nt.MaxVal):
            bound = test.bound
            accepts = lambda value: value < bound  # noqa: E731
        else:
            divisor = test.divisor
            if divisor == 0:
                accepts = lambda value: value == 0  # noqa: E731
            else:
                accepts = lambda value: value % divisor == 0  # noqa: E731

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            return tree.kind(node) is _NUMBER and accepts(tree.value(node))

        def value_fn(value: Any, ctx: dict) -> bool:
            if isinstance(value, int) and not isinstance(value, bool):
                return accepts(value)
            check_supported(value)
            return False

        return tree_fn, value_fn

    # ------------------------------------------------------------------

    def _compile_key_modal(
        self, formula: "ast.DiaKey | ast.BoxKey", *, existential: bool
    ) -> tuple[TreeFn, ValueFn]:
        body_tree, body_value = self.compile(formula.body)
        word = formula.lang.single_word
        if word is not None:
            # Deterministic fragment: the modality addresses one key, so
            # membership is a dict lookup instead of a language test.
            if existential:

                def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                    child = tree.object_child(node, word)
                    return child is not None and body_tree(tree, child, ctx)

                def value_fn(value: Any, ctx: dict) -> bool:
                    if not isinstance(value, dict):
                        return False
                    child = value.get(word, _MISSING)
                    return child is not _MISSING and body_value(child, ctx)

            else:

                def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                    child = tree.object_child(node, word)
                    return child is None or body_tree(tree, child, ctx)

                def value_fn(value: Any, ctx: dict) -> bool:
                    if not isinstance(value, dict):
                        return True
                    child = value.get(word, _MISSING)
                    return child is _MISSING or body_value(child, ctx)

            return tree_fn, value_fn

        matches = formula.lang.matches
        if existential:

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                if tree.kind(node) is not _OBJECT:
                    return False
                for label, child in tree.edges(node):
                    if matches(label) and body_tree(tree, child, ctx):
                        return True
                return False

            def value_fn(value: Any, ctx: dict) -> bool:
                if not isinstance(value, dict):
                    return False
                for key, child in value.items():
                    if matches(key) and body_value(child, ctx):
                        return True
                return False

        else:

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                if tree.kind(node) is not _OBJECT:
                    return True
                for label, child in tree.edges(node):
                    if matches(label) and not body_tree(tree, child, ctx):
                        return False
                return True

            def value_fn(value: Any, ctx: dict) -> bool:
                if not isinstance(value, dict):
                    return True
                for key, child in value.items():
                    if matches(key) and not body_value(child, ctx):
                        return False
                return True

        return tree_fn, value_fn

    def _compile_idx_modal(
        self, formula: "ast.DiaIdx | ast.BoxIdx", *, existential: bool
    ) -> tuple[TreeFn, ValueFn]:
        body_tree, body_value = self.compile(formula.body)
        low, high = formula.low, formula.high
        if existential and high == low and low >= 0:
            # Deterministic fragment: one position, one lookup.

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                child = tree.array_child(node, low)
                return child is not None and body_tree(tree, child, ctx)

            def value_fn(value: Any, ctx: dict) -> bool:
                if isinstance(value, (list, tuple)) and low < len(value):
                    return body_value(value[low], ctx)
                return False

            return tree_fn, value_fn

        def positions(length: int) -> range:
            stop = length if high is None else min(high + 1, length)
            return range(max(low, 0), stop)

        if existential:

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                children = tree.array_children(node)
                for index in positions(len(children)):
                    if body_tree(tree, children[index], ctx):
                        return True
                return False

            def value_fn(value: Any, ctx: dict) -> bool:
                if not isinstance(value, (list, tuple)):
                    return False
                for index in positions(len(value)):
                    if body_value(value[index], ctx):
                        return True
                return False

        else:

            def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
                children = tree.array_children(node)
                for index in positions(len(children)):
                    if not body_tree(tree, children[index], ctx):
                        return False
                return True

            def value_fn(value: Any, ctx: dict) -> bool:
                if not isinstance(value, (list, tuple)):
                    return True
                for index in positions(len(value)):
                    if not body_value(value[index], ctx):
                        return False
                return True

        return tree_fn, value_fn

    def _compile_ref(self, formula: ast.Ref) -> tuple[TreeFn, ValueFn]:
        slot = self.slot_of.get(formula.name)
        if slot is None:
            raise TranslationError(
                f"reference {formula.name!r} in a non-recursive evaluation; "
                "use repro.jsl.bottom_up for recursive JSL expressions"
            )
        tree_slots = self.tree_slots
        value_slots = self.value_slots

        def tree_fn(tree: JSONTree, node: int, ctx: dict) -> bool:
            key = (slot, node)
            cached = ctx.get(key)
            if cached is None:
                cached = tree_slots[slot](tree, node, ctx)
                ctx[key] = cached
            return cached

        def value_fn(value: Any, ctx: dict) -> bool:
            key = (slot, id(value))
            cached = ctx.get(key)
            if cached is None:
                cached = value_slots[slot](value, ctx)
                ctx[key] = cached
            return cached

        return tree_fn, value_fn
