"""Bulk validation: one validator over a corpus, or many over one doc.

The two batching axes mirror the document-store workloads that
"Validation of Modern JSON Schema" and the MongoDB-standard report
(PAPERS.md) treat as the ones that matter:

* **one validator, many documents** -- schema enforcement over a
  collection.  The compiled program is shared; each document pays only
  its own single pass.  Results stream (:func:`iter_validate`), or
  aggregate into a :class:`CorpusReport` with optional early exit on
  the first invalid document (:func:`validate_corpus`).
* **many validators, one document** -- multi-tenant ingestion, where
  each consumer pins its own schema.  The document is materialised (or
  kept raw) once and every compiled program runs over the same
  representation (:func:`validate_document`).

Raw Python values run on the validators' no-tree fast path by default.
When trees are wanted (``as_trees=True``, or ``extended=True`` which
needs leaf coercion), the corpus is batch-ingested through
:meth:`JSONTree.from_values`, sharing one intern table for keys and
string atoms across all documents.

No validation state survives a call, so a mutated corpus can never
yield stale verdicts -- the artifact cache only ever stores
document-independent programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.model.tree import JSONTree, JSONValue
from repro.validate.compiled import CompiledValidator

__all__ = [
    "CorpusReport",
    "iter_validate",
    "validate_corpus",
    "validate_document",
]


@dataclass(frozen=True)
class CorpusReport:
    """Aggregate outcome of a corpus validation run.

    ``verdicts`` has one entry per *checked* document; with
    ``early_exit=True`` the run stops right after the first invalid
    document, so ``checked`` can be smaller than the corpus.
    """

    verdicts: tuple[bool, ...]
    checked: int
    valid: int
    first_invalid: int | None

    @property
    def all_valid(self) -> bool:
        return self.first_invalid is None

    @property
    def invalid(self) -> int:
        return self.checked - self.valid


def iter_validate(
    validator: CompiledValidator,
    documents: Iterable["JSONTree | JSONValue"],
    *,
    extended: bool = False,
) -> Iterator[bool]:
    """Lazily yield one verdict per document (trees or raw values).

    The generator form is the streaming bulk API: verdicts come out as
    documents go in, so a pipeline can consume them incrementally and
    abandon the iteration at any point.
    """
    validate_tree = validator.validate_tree
    validate_value = validator.validate_value
    for document in documents:
        if isinstance(document, JSONTree):
            yield validate_tree(document)
        else:
            yield validate_value(document, extended=extended)


def validate_corpus(
    validator: CompiledValidator,
    documents: Iterable["JSONTree | JSONValue"],
    *,
    early_exit: bool = False,
    extended: bool = False,
    as_trees: bool = False,
) -> CorpusReport:
    """One validator over many documents, aggregated.

    ``early_exit=True`` stops at the first invalid document (the
    "reject the batch" ingestion mode).  ``as_trees=True`` materialises
    raw values through :meth:`JSONTree.from_values` (shared interning)
    before validating -- useful when the trees will be reused; it is
    implied by ``extended=True``, which needs leaf coercion.
    """
    if as_trees or extended:
        documents = _materialised(documents, extended)
        extended = False
    verdicts: list[bool] = []
    first_invalid: int | None = None
    valid = 0
    for index, verdict in enumerate(
        iter_validate(validator, documents, extended=extended)
    ):
        verdicts.append(verdict)
        if verdict:
            valid += 1
        elif first_invalid is None:
            first_invalid = index
            if early_exit:
                break
    return CorpusReport(tuple(verdicts), len(verdicts), valid, first_invalid)


def validate_document(
    validators: Sequence[CompiledValidator],
    document: "JSONTree | JSONValue",
    *,
    extended: bool = False,
) -> list[bool]:
    """Many validators over one document, in order.

    The document is converted (at most) once, so ``n`` validators cost
    ``n`` passes over one shared representation rather than ``n``
    materialisations.
    """
    if not isinstance(document, JSONTree) and extended:
        document = JSONTree.from_value(document, extended=True)
    if isinstance(document, JSONTree):
        return [validator.validate_tree(document) for validator in validators]
    return [validator.validate_value(document) for validator in validators]


def _materialised(
    documents: Iterable["JSONTree | JSONValue"], extended: bool
) -> list[JSONTree]:
    """Batch-ingest the non-tree documents with one shared intern table."""
    items = list(documents)
    trees = iter(
        JSONTree.from_values(
            [doc for doc in items if not isinstance(doc, JSONTree)],
            extended=extended,
        )
    )
    return [doc if isinstance(doc, JSONTree) else next(trees) for doc in items]
