"""Compiled validators: compile a schema or formula once, validate many.

A :class:`CompiledValidator` is the validation-side analogue of
:class:`repro.query.CompiledQuery`: it captures exactly the reusable,
document-independent part of a validation task -- references resolved,
well-formedness checked, key sets / pattern matchers / enum canonical
forms prebuilt, everything lowered to per-kind closures.  Validation
state (the reference memo) is per-call, so one validator can be shared
freely across documents and threads.

Three artifacts compile through the process-wide cache of
:mod:`repro.cache` (shared with the query plans, unified stats):

* :func:`compile_schema_validator` -- a parsed JSON Schema document or
  fragment (Table 1 core);
* :func:`compile_jsl_validator` -- a JSL formula or well-formed
  recursive expression (point evaluation of ``J |= phi``);
* :func:`compile_stream_validator` -- a deterministic-fragment formula
  (or schema) as a reusable :class:`~repro.streaming.validator.\
StreamingJSLValidator` with its modal indexes hoisted to compile time.

Cache keys are the AST objects themselves: structurally equal schemas
or formulas (dataclass equality) share one compiled artifact, exactly
as structurally equal Mongo filters share one query plan.
"""

from __future__ import annotations

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.jsl import ast as jsl_ast
from repro.model.tree import JSONTree, JSONValue
from repro.schema import ast as schema_ast
from repro.streaming.validator import StreamingJSLValidator
from repro.validate.jsl_compiler import compile_jsl_program
from repro.validate.schema_compiler import (
    TreeFn,
    ValueFn,
    compile_schema_program,
)

__all__ = [
    "CompiledValidator",
    "compile_schema_validator",
    "compile_jsl_validator",
    "compile_stream_validator",
]

DIALECT_SCHEMA = "schema-validator"
DIALECT_JSL = "jsl-validator"
DIALECT_STREAM = "stream-validator"


class CompiledValidator:
    """An executable validation program, reusable across documents."""

    __slots__ = ("dialect", "source", "exact_unique", "_tree_fn", "_value_fn")

    def __init__(
        self,
        dialect: str,
        source: object,
        tree_fn: TreeFn,
        value_fn: ValueFn,
        *,
        exact_unique: bool = False,
    ) -> None:
        self.dialect = dialect
        self.source = source
        self.exact_unique = exact_unique
        self._tree_fn = tree_fn
        self._value_fn = value_fn

    # ------------------------------------------------------------------

    def validate_tree(self, tree: JSONTree, node: int | None = None) -> bool:
        """Does the document (subtree at ``node``) validate?"""
        target = tree.root if node is None else node
        return self._tree_fn(tree, target, {})

    def validate_value(self, value: JSONValue, *, extended: bool = False) -> bool:
        """Validate a raw Python value without materialising a tree.

        With ``extended=True`` the JSON literals outside the paper's
        abstraction are coerced like ``JSONTree.from_value`` -- that
        path does materialise a tree, since coercion rewrites leaves.
        """
        if extended:
            return self.validate_tree(JSONTree.from_value(value, extended=True))
        return self._value_fn(value, {})

    def validate(self, document: "JSONTree | JSONValue") -> bool:
        """Validate either a :class:`JSONTree` or a raw value."""
        if isinstance(document, JSONTree):
            return self.validate_tree(document)
        return self.validate_value(document)

    def __repr__(self) -> str:
        return f"CompiledValidator({self.dialect!r}, {self.source!r})"


# ---------------------------------------------------------------------------
# Cached compile entry points.
# ---------------------------------------------------------------------------


def compile_schema_validator(
    document: schema_ast.Schema,
    *,
    exact_unique: bool = False,
    cache: object = USE_DEFAULT_CACHE,
) -> CompiledValidator:
    """Compile a parsed schema into a validator, through the LRU cache.

    Pass ``cache=None`` for a fresh, uncached compilation, or an
    explicit :class:`~repro.cache.LRUCache` to use a private cache.
    """

    def build() -> CompiledValidator:
        tree_fn, value_fn = compile_schema_program(
            document, exact_unique=exact_unique
        )
        return CompiledValidator(
            DIALECT_SCHEMA, document, tree_fn, value_fn, exact_unique=exact_unique
        )

    resolved = resolve_cache(cache)
    if resolved is None:
        return build()
    return resolved.get_or_compute((DIALECT_SCHEMA, document, exact_unique), build)


def compile_jsl_validator(
    formula: "jsl_ast.Formula | jsl_ast.RecursiveJSL",
    *,
    exact_unique: bool = False,
    cache: object = USE_DEFAULT_CACHE,
) -> CompiledValidator:
    """Compile a JSL formula (plain or recursive) into a validator."""

    def build() -> CompiledValidator:
        tree_fn, value_fn = compile_jsl_program(
            formula, exact_unique=exact_unique
        )
        return CompiledValidator(
            DIALECT_JSL, formula, tree_fn, value_fn, exact_unique=exact_unique
        )

    resolved = resolve_cache(cache)
    if resolved is None:
        return build()
    return resolved.get_or_compute((DIALECT_JSL, formula, exact_unique), build)


def compile_stream_validator(
    source: "jsl_ast.Formula | jsl_ast.RecursiveJSL | schema_ast.Schema",
    *,
    cache: object = USE_DEFAULT_CACHE,
) -> StreamingJSLValidator:
    """A cached streaming validator for a deterministic formula or schema.

    Schemas are translated through Theorem 1 first.  The returned
    validator's fragment check, well-formedness check and modal indexes
    are all compile-time work, so cache hits skip straight to the
    single-pass event loop.  (The instance's ``max_depth`` high-water
    mark is the only mutable state and is overwritten per call.)
    """

    def build() -> StreamingJSLValidator:
        formula = source
        if isinstance(formula, schema_ast.Schema):
            from repro.schema.to_jsl import schema_to_jsl

            formula = schema_to_jsl(formula)
        return StreamingJSLValidator(formula)

    resolved = resolve_cache(cache)
    if resolved is None:
        return build()
    return resolved.get_or_compute((DIALECT_STREAM, source), build)
