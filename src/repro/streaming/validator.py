"""Streaming validation of deterministic JSL (Section 6 outlook).

The paper conjectures that the deterministic fragments of JNL/JSL "might
actually be shown to be evaluated in a streaming context with constant
memory requirements when tree equality is excluded".  This module
implements exactly that evaluator: a single pass over the token stream
of :mod:`repro.streaming.events`, keeping one *frame* per open
container.

A frame records, for the node being parsed: which modal subformulas of
the parent it must answer (its *origin*), which of its own modal
subformulas still await a matching child, the node's kind / value /
child count, and the truths of modal bodies reported back by completed
children.  Because the fragment is deterministic -- every modality
addresses a single key or a single position -- each modal operator
matches at most one child, so child results fold in as children close.
Memory is ``O(depth x |phi|)``: constant in the document's breadth and
total size, which the S1 benchmark measures with ``tracemalloc``.

Excluded, with :class:`UnsupportedFragmentError`: the subtree-equality
test ``~(A)`` and ``Unique`` (both need unbounded buffering -- the
"tree equality" the conjecture rules out), and non-deterministic
modalities.  Recursive definitions *are* supported: reference expansion
is same-node and well-formedness makes it acyclic, so frames stay
bounded.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StreamingError, UnsupportedFragmentError
from repro.jsl import ast
from repro.jsl.recursion import check_well_formed
from repro.logic import nodetests as nt
from repro.streaming.events import Event, tokenize

__all__ = ["StreamingJSLValidator"]

Modal = ast.DiaKey | ast.BoxKey | ast.DiaIdx | ast.BoxIdx


class _Frame:
    __slots__ = (
        "origin",
        "requests",
        "key_modals",
        "idx_modals",
        "modal_truth",
        "kind",
        "value",
        "child_count",
        "memo",
    )

    def __init__(self, origin: list[Modal], requests: tuple[ast.Formula, ...]) -> None:
        self.origin = origin
        self.requests = requests
        # Shared, read-only modal indexes assigned by the validator.
        self.key_modals: dict[str, list[Modal]] = {}
        self.idx_modals: dict[int, list[Modal]] = {}
        self.modal_truth: dict[ast.Formula, bool] = {}
        self.kind = ""
        self.value: str | int | None = None
        self.child_count = 0
        self.memo: dict[ast.Formula, bool] = {}


class StreamingJSLValidator:
    """Validates a token stream against a deterministic JSL formula."""

    def __init__(self, formula: ast.Formula | ast.RecursiveJSL) -> None:
        if isinstance(formula, ast.RecursiveJSL):
            check_well_formed(formula)
            self.definitions = formula.definition_map()
            self.base = formula.base
            bodies = [self.base, *self.definitions.values()]
        else:
            self.definitions = {}
            self.base = formula
            bodies = [formula]
        for body in bodies:
            self._check_fragment(body)
        self.max_depth = 0  # observed frame-stack high-water mark
        # Compile-time modal indexing.  The same-node expansion of a
        # request formula (through booleans and acyclic references) is
        # a pure function of the formula, and the set of request tuples
        # a document can produce is drawn from the formula's modal
        # bodies -- so both are memoised on the validator and shared by
        # every frame of every call, instead of re-walking the formula
        # DAG once per frame as the seed did.
        self._expansions: dict[
            ast.Formula, tuple[dict[str, list[Modal]], dict[int, list[Modal]]]
        ] = {}
        self._request_index: dict[
            tuple[ast.Formula, ...],
            tuple[dict[str, list[Modal]], dict[int, list[Modal]]],
        ] = {}
        self._base_requests: tuple[ast.Formula, ...] = (self.base,)
        self._indexed(self._base_requests)  # warm the root frame's index

    @staticmethod
    def _check_fragment(formula: ast.Formula) -> None:
        for sub in ast.subformulas(formula):
            if isinstance(sub, ast.TestAtom) and isinstance(
                sub.test, (nt.Unique, nt.EqDocTest)
            ):
                raise UnsupportedFragmentError(
                    "streaming validation excludes tree equality "
                    f"({sub.test.describe()}), as in the Section 6 conjecture"
                )
            if isinstance(sub, (ast.DiaKey, ast.BoxKey)):
                if sub.lang.single_word is None:
                    raise UnsupportedFragmentError(
                        "streaming validation needs the deterministic "
                        "fragment: key modalities must address single words"
                    )
            if isinstance(sub, (ast.DiaIdx, ast.BoxIdx)):
                if sub.high != sub.low:
                    raise UnsupportedFragmentError(
                        "streaming validation needs the deterministic "
                        "fragment: index modalities must address single "
                        "positions"
                    )

    # ------------------------------------------------------------------

    def validate_text(self, text: str, *, check_duplicates: bool = True) -> bool:
        return self.validate_events(
            tokenize(text, check_duplicates=check_duplicates)
        )

    def validate_events(self, events: Iterable[Event]) -> bool:
        stack: list[_Frame] = []
        pending_key: str | None = None
        result: bool | None = None
        self.max_depth = 0

        def origin_modals() -> list[Modal]:
            if not stack:
                return []
            parent = stack[-1]
            if parent.kind == "object":
                assert pending_key is not None
                return parent.key_modals.get(pending_key, [])
            return parent.idx_modals.get(parent.child_count, [])

        def open_frame(kind: str) -> _Frame:
            nonlocal pending_key
            origin = origin_modals()
            if stack:
                requests = tuple(modal.body for modal in origin)
            else:
                requests = self._base_requests
            frame = _Frame(origin, requests)
            frame.kind = kind
            frame.key_modals, frame.idx_modals = self._indexed(requests)
            stack.append(frame)
            self.max_depth = max(self.max_depth, len(stack))
            pending_key = None
            return frame

        def close_frame() -> None:
            nonlocal result
            frame = stack.pop()
            truths = [self._eval(frame, request) for request in frame.requests]
            if not stack:
                result = truths[0] if truths else True
                return
            parent = stack[-1]
            for modal, truth in zip(frame.origin, truths):
                parent.modal_truth[modal] = truth
            parent.child_count += 1

        for event in events:
            tag = event[0]
            if tag in ("start_object", "start_array"):
                open_frame("object" if tag == "start_object" else "array")
            elif tag in ("end_object", "end_array"):
                close_frame()
            elif tag == "key":
                pending_key = event[1]
            elif tag in ("string", "number"):
                frame = open_frame(tag)
                frame.value = event[1]
                close_frame()
            else:  # pragma: no cover - defensive
                raise StreamingError(f"unknown event {event!r}")

        if result is None:
            raise StreamingError("empty event stream")
        return result

    # ------------------------------------------------------------------

    def _expansion(
        self, formula: ast.Formula
    ) -> tuple[dict[str, list[Modal]], dict[int, list[Modal]]]:
        """The modal subformulas active at a node requesting ``formula``.

        Same-node traversal through booleans and (acyclic) reference
        expansion; modal bodies stay opaque until a child matches.
        Memoised per formula -- the returned maps are shared and must
        never be mutated.
        """
        cached = self._expansions.get(formula)
        if cached is not None:
            return cached
        key_modals: dict[str, list[Modal]] = {}
        idx_modals: dict[int, list[Modal]] = {}
        seen: set[ast.Formula] = set()
        stack = [formula]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if isinstance(current, ast.Not):
                stack.append(current.operand)
            elif isinstance(current, (ast.And, ast.Or)):
                stack.append(current.left)
                stack.append(current.right)
            elif isinstance(current, ast.Ref):
                stack.append(self.definitions[current.name])
            elif isinstance(current, (ast.DiaKey, ast.BoxKey)):
                word = current.lang.single_word
                assert word is not None
                key_modals.setdefault(word, []).append(current)
            elif isinstance(current, (ast.DiaIdx, ast.BoxIdx)):
                idx_modals.setdefault(current.low, []).append(current)
        result = (key_modals, idx_modals)
        self._expansions[formula] = result
        return result

    def _indexed(
        self, requests: tuple[ast.Formula, ...]
    ) -> tuple[dict[str, list[Modal]], dict[int, list[Modal]]]:
        """The merged modal index of a frame's request tuple (memoised)."""
        cached = self._request_index.get(requests)
        if cached is not None:
            return cached
        if len(requests) == 1:
            result = self._expansion(requests[0])
        else:
            key_modals: dict[str, list[Modal]] = {}
            idx_modals: dict[int, list[Modal]] = {}
            merged: set[Modal] = set()
            for request in requests:
                for word, modals in self._expansion(request)[0].items():
                    bucket = key_modals.setdefault(word, [])
                    for modal in modals:
                        if modal not in merged:
                            merged.add(modal)
                            bucket.append(modal)
                for low, modals in self._expansion(request)[1].items():
                    bucket = idx_modals.setdefault(low, [])
                    for modal in modals:
                        if modal not in merged:
                            merged.add(modal)
                            bucket.append(modal)
            result = (key_modals, idx_modals)
        self._request_index[requests] = result
        return result

    def _eval(self, frame: _Frame, formula: ast.Formula) -> bool:
        cached = frame.memo.get(formula)
        if cached is not None:
            return cached
        result = self._eval_inner(frame, formula)
        frame.memo[formula] = result
        return result

    def _eval_inner(self, frame: _Frame, formula: ast.Formula) -> bool:
        if isinstance(formula, ast.Top):
            return True
        if isinstance(formula, ast.Not):
            return not self._eval(frame, formula.operand)
        if isinstance(formula, ast.And):
            return self._eval(frame, formula.left) and self._eval(
                frame, formula.right
            )
        if isinstance(formula, ast.Or):
            return self._eval(frame, formula.left) or self._eval(
                frame, formula.right
            )
        if isinstance(formula, ast.Ref):
            return self._eval(frame, self.definitions[formula.name])
        if isinstance(formula, (ast.DiaKey, ast.DiaIdx)):
            return frame.modal_truth.get(formula, False)
        if isinstance(formula, (ast.BoxKey, ast.BoxIdx)):
            return frame.modal_truth.get(formula, True)
        if isinstance(formula, ast.TestAtom):
            return self._eval_test(frame, formula.test)
        raise TypeError(f"unknown JSL formula {formula!r}")

    @staticmethod
    def _eval_test(frame: _Frame, test: nt.NodeTest) -> bool:
        if isinstance(test, nt.IsObject):
            return frame.kind == "object"
        if isinstance(test, nt.IsArray):
            return frame.kind == "array"
        if isinstance(test, nt.IsString):
            return frame.kind == "string"
        if isinstance(test, nt.IsNumber):
            return frame.kind == "number"
        if isinstance(test, nt.Pattern):
            return frame.kind == "string" and test.lang.matches(str(frame.value))
        if isinstance(test, nt.MinVal):
            if frame.kind != "number":
                return False
            return int(frame.value) > test.bound  # type: ignore[arg-type]
        if isinstance(test, nt.MaxVal):
            if frame.kind != "number":
                return False
            return int(frame.value) < test.bound  # type: ignore[arg-type]
        if isinstance(test, nt.MultOf):
            if frame.kind != "number":
                return False
            value = int(frame.value)  # type: ignore[arg-type]
            return value == 0 if test.divisor == 0 else value % test.divisor == 0
        if isinstance(test, nt.MinCh):
            return frame.child_count >= test.count
        if isinstance(test, nt.MaxCh):
            return frame.child_count <= test.count
        raise UnsupportedFragmentError(test.describe())
