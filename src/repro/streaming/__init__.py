"""Streaming tokenizer and deterministic-JSL validator (Section 6)."""

from repro.streaming.events import Event, tokenize
from repro.streaming.validator import StreamingJSLValidator

__all__ = ["Event", "tokenize", "StreamingJSLValidator"]
