"""A streaming JSON tokenizer: text --> parse events.

Produces the event vocabulary of :class:`~repro.model.builder.
TreeBuilder` without materialising a tree, enabling the constant-memory
validation Section 6 conjectures for the deterministic logics.

Events are tuples: ``("start_object",)``, ``("key", name)``,
``("end_object",)``, ``("start_array",)``, ``("end_array",)``,
``("string", value)``, ``("number", value)``.

The tokenizer enforces the paper's JSON abstraction: numbers are
naturals (no sign, fraction or exponent) and the literals
``true``/``false``/``null`` are rejected.  Duplicate keys within one
object are detected (the determinism condition); pass
``check_duplicates=False`` to trade that check for strictly
depth-bounded memory.
"""

from __future__ import annotations

from json.decoder import scanstring
from typing import Iterator

from repro.errors import DuplicateKeyError, StreamingError

__all__ = ["Event", "tokenize"]

Event = tuple

_WS = " \t\n\r"

# Parser modes (what we expect next at the top of the stack).
_VALUE = 0          # a value
_OBJ_KEY = 1        # a key or '}'
_OBJ_COLON = 2      # ':'
_OBJ_NEXT = 3       # ',' or '}'
_ARR_NEXT = 4       # ',' or ']'


def tokenize(text: str, *, check_duplicates: bool = True) -> Iterator[Event]:
    """Yield parse events for one JSON document.

    Raises :class:`StreamingError` on malformed input and
    :class:`DuplicateKeyError` on a repeated object key.
    """
    pos = 0
    length = len(text)
    # Stack of container modes; parallel stack of per-object key sets.
    modes: list[int] = [_VALUE]
    keys: list[set[str] | None] = []

    def skip_ws(position: int) -> int:
        while position < length and text[position] in _WS:
            position += 1
        return position

    while modes:
        pos = skip_ws(pos)
        if pos >= length:
            raise StreamingError("unexpected end of input")
        mode = modes.pop()
        char = text[pos]

        if mode == _VALUE:
            if char == "{":
                pos += 1
                yield ("start_object",)
                modes.append(_OBJ_KEY)
                keys.append(set() if check_duplicates else None)
            elif char == "[":
                pos += 1
                yield ("start_array",)
                modes.append(_ARR_NEXT)
                pos = skip_ws(pos)
                if pos < length and text[pos] == "]":
                    pos += 1
                    modes.pop()
                    yield ("end_array",)
                else:
                    modes.append(_VALUE)
            elif char == '"':
                value, pos = _scan_string(text, pos)
                yield ("string", value)
            elif char.isdigit():
                start = pos
                while pos < length and text[pos].isdigit():
                    pos += 1
                if pos < length and text[pos] in ".eE":
                    raise StreamingError(
                        "the paper's JSON abstraction has no floats "
                        f"(at position {start})"
                    )
                yield ("number", int(text[start:pos]))
            elif char == "-":
                raise StreamingError(
                    f"negative numbers are not naturals (at position {pos})"
                )
            elif text.startswith(("true", "false", "null"), pos):
                raise StreamingError(
                    "true/false/null are outside the paper's abstraction "
                    f"(at position {pos})"
                )
            else:
                raise StreamingError(f"unexpected character {char!r} at {pos}")

        elif mode == _OBJ_KEY:
            if char == "}":
                pos += 1
                keys.pop()
                yield ("end_object",)
            elif char == '"':
                key, pos = _scan_string(text, pos)
                seen = keys[-1]
                if seen is not None:
                    if key in seen:
                        raise DuplicateKeyError(key)
                    seen.add(key)
                yield ("key", key)
                modes.append(_OBJ_NEXT)
                modes.append(_VALUE)
                pos = skip_ws(pos)
                if pos >= length or text[pos] != ":":
                    raise StreamingError(f"expected ':' at position {pos}")
                pos += 1
            else:
                raise StreamingError(
                    f"expected a key or '}}' at position {pos}"
                )

        elif mode == _OBJ_NEXT:
            if char == ",":
                pos += 1
                modes.append(_OBJ_KEY)
            elif char == "}":
                pos += 1
                keys.pop()
                yield ("end_object",)
            else:
                raise StreamingError(
                    f"expected ',' or '}}' at position {pos}"
                )

        elif mode == _ARR_NEXT:
            if char == ",":
                pos += 1
                modes.append(_ARR_NEXT)
                modes.append(_VALUE)
            elif char == "]":
                pos += 1
                yield ("end_array",)
            else:
                raise StreamingError(
                    f"expected ',' or ']' at position {pos}"
                )

    pos = skip_ws(pos)
    if pos != length:
        raise StreamingError(f"trailing input at position {pos}")


def _scan_string(text: str, pos: int) -> tuple[str, int]:
    try:
        return scanstring(text, pos + 1)
    except ValueError as exc:
        raise StreamingError(f"bad string literal at {pos}: {exc}") from exc
