"""A JSONPath subset compiled into JNL path formulas (Section 4.1).

The paper cites JSONPath as the XPath-inspired JSON language whose
features (non-determinism, filters, recursive descent) motivate the JNL
extensions; this parser makes the connection executable.

Supported syntax::

    $                     root
    .key   ['key']        object member
    .*     [*]            any child (wildcard)
    ..key  ..*  ..[i]     recursive descent
    [i]                   array index (negative = from the end)
    [i:j]  [i:]  [:j]     array slice (end-exclusive, like Python)
    [i,j,...]             index union
    [?(@.path op lit)]    filter: ==, !=, <, <=, >, >=
    [?(@.path)]           filter: existence

Wildcards map to ``X_{Sigma*} u X_{0:inf}``, recursive descent to the
Kleene star of that axis, filters to JNL tests (comparisons via the
NodeTest atoms).  Slices are translated to the paper's 0-based,
end-inclusive ``X_{i:j}`` ranges.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.jnl import ast as jnl
from repro.jnl import builder as q
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree

__all__ = ["parse_jsonpath"]


class _JSONPathParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.pos)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> jnl.Binary:
        if self.peek() != "$":
            raise self.error("JSONPath must start with '$'")
        self.pos += 1
        steps: list[jnl.Binary] = [jnl.Eps()]
        while self.pos < len(self.text):
            steps.append(self.step())
        return q.compose(*steps)

    # ------------------------------------------------------------------

    def step(self) -> jnl.Binary:
        char = self.peek()
        if char == ".":
            self.pos += 1
            if self.peek() == ".":
                self.pos += 1
                return self.descendant_step()
            return self.member_step()
        if char == "[":
            return self.bracket_step()
        raise self.error(f"unexpected character {char!r}")

    def descendant_step(self) -> jnl.Binary:
        descend = q.descendant_or_self_axis()
        if self.peek() == "[":
            return q.compose(descend, self.bracket_step())
        return q.compose(descend, self.member_step())

    def member_step(self) -> jnl.Binary:
        if self.peek() == "*":
            self.pos += 1
            return q.any_child_axis()
        name = self.ident()
        return jnl.Key(name)

    def ident(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a member name")
        return self.text[start : self.pos]

    # ------------------------------------------------------------------

    def bracket_step(self) -> jnl.Binary:
        assert self.peek() == "["
        self.pos += 1
        self.skip_ws()
        char = self.peek()
        if char == "*":
            self.pos += 1
            self.expect("]")
            return q.any_child_axis()
        if char in "'\"":
            name = self.quoted(char)
            self.expect("]")
            return jnl.Key(name)
        if char == "?":
            return self.filter_step()
        return self.indices_step()

    def quoted(self, quote: str) -> str:
        assert self.peek() == quote
        self.pos += 1
        chars: list[str] = []
        while self.pos < len(self.text) and self.text[self.pos] != quote:
            if self.text[self.pos] == "\\" and self.pos + 1 < len(self.text):
                self.pos += 1
            chars.append(self.text[self.pos])
            self.pos += 1
        if self.pos >= len(self.text):
            raise self.error("unterminated quoted name")
        self.pos += 1
        return "".join(chars)

    def integer(self) -> int:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start or self.text[start:self.pos] == "-":
            raise self.error("expected an integer")
        return int(self.text[start : self.pos])

    def indices_step(self) -> jnl.Binary:
        self.skip_ws()
        if self.peek() == ":":
            self.pos += 1
            return self.slice_axis(0)
        first = self.integer()
        self.skip_ws()
        if self.peek() == ":":
            self.pos += 1
            return self.slice_axis(first)
        if self.peek() == ",":
            positions = [first]
            while self.peek() == ",":
                self.pos += 1
                self.skip_ws()
                positions.append(self.integer())
                self.skip_ws()
            self.expect("]")
            return q.union(*[jnl.Index(p) for p in positions])
        self.expect("]")
        return jnl.Index(first)

    def slice_axis(self, start: int) -> jnl.Binary:
        self.skip_ws()
        if self.peek() == "]":
            self.pos += 1
            return jnl.IndexRange(start, None)
        end = self.integer()  # JSONPath slices are end-exclusive
        self.skip_ws()
        self.expect("]")
        if end <= start:
            # Empty slice: a path matching nothing.
            return jnl.Test(q.bottom())
        return jnl.IndexRange(start, end - 1)

    # ------------------------------------------------------------------

    def filter_step(self) -> jnl.Binary:
        assert self.peek() == "?"
        self.pos += 1
        self.expect("(")
        self.skip_ws()
        if self.peek() != "@":
            raise self.error("filters must start with '@'")
        self.pos += 1
        steps: list[jnl.Binary] = []
        while self.peek() in ".[":
            if self.peek() == "." and self.text.startswith("..", self.pos):
                raise self.error("recursive descent is not allowed in filters")
            steps.append(self.step())
        path = q.compose(*steps) if steps else q.eps()
        self.skip_ws()
        condition = self.filter_condition(path)
        self.skip_ws()
        self.expect(")")
        self.expect("]")
        # JSONPath applies [?(...)] to each child of the current node.
        return q.compose(q.any_child_axis(), jnl.Test(condition))

    def filter_condition(self, path: jnl.Binary) -> jnl.Unary:
        operator = self.operator()
        if operator is None:
            return q.has(path)
        self.skip_ws()
        literal = self.literal()
        if operator in ("==", "!="):
            doc = JSONTree.from_value(literal)
            condition: jnl.Unary = jnl.EqDoc(path, doc)
            return condition if operator == "==" else ~condition
        if not isinstance(literal, int) or isinstance(literal, bool):
            raise self.error(f"operator {operator} needs a number")
        tests = {
            ">": nt.MinVal(literal),
            ">=": nt.MinVal(literal - 1),
            "<": nt.MaxVal(literal),
            "<=": nt.MaxVal(literal + 1),
        }
        return q.has(q.compose(path, q.test(q.atom(tests[operator]))))

    def operator(self) -> str | None:
        self.skip_ws()
        for candidate in ("==", "!=", ">=", "<=", ">", "<"):
            if self.text.startswith(candidate, self.pos):
                self.pos += len(candidate)
                return candidate
        return None

    def literal(self):
        import json as _json

        decoder = _json.JSONDecoder()
        try:
            value, end = decoder.raw_decode(self.text, self.pos)
        except _json.JSONDecodeError as exc:
            raise self.error(f"bad literal: {exc.msg}") from exc
        self.pos = end
        return value

    # ------------------------------------------------------------------

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1


def parse_jsonpath(text: str) -> jnl.Binary:
    """Parse a JSONPath expression into a JNL path formula."""
    parser = _JSONPathParser(text.strip())
    path = parser.parse()
    if parser.pos < len(parser.text):
        raise parser.error("trailing input after JSONPath")
    return path
