"""Executing JSONPath queries over JSON trees.

Both entry points are thin wrappers over the compiled-query subsystem
(:mod:`repro.query`): the parse and the automaton construction go
through the process-wide LRU cache, so repeated evaluation of the same
path text only pays the product reachability of Proposition 1.  Results
come back in document order via the tree's precomputed preorder ranks
(``O(k log k)`` in the size of the selected set, not ``O(|J|)``).
"""

from __future__ import annotations

from repro.model.tree import JSONTree, JSONValue
from repro.query.compiled import DIALECT_JSONPATH, compile_query

__all__ = [
    "jsonpath_nodes",
    "jsonpath_query",
    "jsonpath_collection",
    "compile_jsonpath",
]


def compile_jsonpath(path_text: str):
    """The cached compiled plan for a JSONPath expression."""
    return compile_query(path_text, DIALECT_JSONPATH)


def jsonpath_nodes(tree: JSONTree, path_text: str) -> list[int]:
    """Node ids selected by a JSONPath query, in document order."""
    return compile_jsonpath(path_text).select(tree)


def jsonpath_query(tree: JSONTree, path_text: str) -> list[JSONValue]:
    """Subdocuments selected by a JSONPath query, in document order."""
    return compile_jsonpath(path_text).values(tree)


def jsonpath_collection(
    collection, path_text: str
) -> list[tuple[int, list[JSONValue]]]:
    """Per-document JSONPath results over a :class:`repro.store.Collection`.

    Routed through the planner: the path's sargable prefix prunes
    candidate documents via the collection's indexes, and only the
    survivors run the compiled selection.  Returns one
    ``(doc_id, values)`` row per live document (empty list = no match).
    """
    from repro.query import planner

    return planner.select_values(collection, compile_jsonpath(path_text))
