"""Executing JSONPath queries over JSON trees."""

from __future__ import annotations

from repro.jnl.efficient import JNLEvaluator
from repro.jsonpath.parser import parse_jsonpath
from repro.model.tree import JSONTree, JSONValue

__all__ = ["jsonpath_nodes", "jsonpath_query"]


def jsonpath_nodes(tree: JSONTree, path_text: str) -> list[int]:
    """Node ids selected by a JSONPath query, in document order."""
    path = parse_jsonpath(path_text)
    evaluator = JNLEvaluator(tree)
    selected = evaluator.target_nodes(path)
    # Document order is preorder over the tree, not node-id order.
    return [node for node in tree.descendants(tree.root) if node in selected]


def jsonpath_query(tree: JSONTree, path_text: str) -> list[JSONValue]:
    """Subdocuments selected by a JSONPath query, in document order."""
    return [tree.to_value(node) for node in jsonpath_nodes(tree, path_text)]
