"""JSONPath compiled onto JNL (Section 4.1)."""

from repro.jsonpath.engine import (
    jsonpath_collection,
    jsonpath_nodes,
    jsonpath_query,
)
from repro.jsonpath.parser import parse_jsonpath

__all__ = [
    "parse_jsonpath",
    "jsonpath_nodes",
    "jsonpath_query",
    "jsonpath_collection",
]
