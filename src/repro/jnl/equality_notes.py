"""Design notes: subtree equality in JNL evaluation (Proposition 1/3).

This module intentionally contains no code.  It documents, next to the
implementation, how the paper's two equality operators are priced:

* ``EQ(alpha, A)`` -- the constant document ``A`` is hashed once; the
  backward product reachability of :mod:`repro.jnl.efficient` seeds the
  accepting configurations with the nodes whose canonical hash matches,
  verified structurally.  Cost stays ``O(|J| x |alpha|)`` plus the one
  linear hashing pass: this is the "online" equality evaluation of the
  Proposition 1 proof (there via monadic datalog grounding).

* ``EQ(alpha, beta)`` -- needs, per start node, the *set of subtree
  values* reachable via each path.  For deterministic paths both
  targets are unique, restoring linearity.  In the non-deterministic /
  recursive logic a per-node forward reachability is unavoidable in
  this scheme, giving the super-linear behaviour Proposition 3 prices
  at ``O(|J|^3 x |phi|)`` -- benchmark E3 exhibits the gap against the
  EQ(alpha,beta)-free fragment.
"""
