"""Abstract syntax of the JSON Navigational Logic (Definition 1).

The grammar of the paper::

    alpha, beta :=  <phi>  |  X_w  |  X_i  |  alpha o beta  |  eps
    phi,  psi  :=  T  |  ~phi  |  phi ^ psi  |  phi v psi  |  [alpha]
                 |  EQ(alpha, A)  |  EQ(alpha, beta)

with two extensions from Section 4.3:

* **non-determinism** -- ``X_e`` for a regular key language and
  ``X_{i:j}`` for index intervals (``j`` may be ``+inf``);
* **recursion** -- the Kleene star ``(alpha)*``.

One further extension, flagged explicitly as such, mirrors Theorem 2's
observation that the two logics differ only in atomic predicates:
:class:`Atom` embeds a :class:`~repro.logic.nodetests.NodeTest` as a
unary JNL formula.  It is used by the MongoDB / JSONPath front-ends
(which need ``$gt``-style comparisons) and is excluded by
:func:`is_pure` for paper-faithful checks.

All nodes are frozen dataclasses: structurally equal formulas hash the
same, which the evaluators use for memoisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TypeVar

from repro.automata.keylang import KeyLang
from repro.logic.nodetests import NodeTest
from repro.model.tree import JSONTree

_T = TypeVar("_T", bound=type)


def _cached_hash(cls: _T) -> _T:
    """Memoise the dataclass-generated ``__hash__`` on the instance.

    The evaluators key their memo tables on formula objects, so every
    cache lookup re-hashes the whole subtree of the formula -- including
    any :class:`~repro.model.tree.JSONTree` inside an :class:`EqDoc` --
    which turns O(1) dictionary hits into O(|phi|) work.  Formulas are
    frozen, so the hash is computed once and stored on the instance.
    """
    generated = cls.__hash__

    def __hash__(self) -> int:
        value = self.__dict__.get("_hash")
        if value is None:
            value = generated(self)
            object.__setattr__(self, "_hash", value)
        return value

    cls.__hash__ = __hash__
    return cls

__all__ = [
    "Unary",
    "Binary",
    "Top",
    "Not",
    "And",
    "Or",
    "Exists",
    "EqDoc",
    "EqPath",
    "Atom",
    "Eps",
    "Test",
    "Key",
    "Index",
    "KeyRegex",
    "IndexRange",
    "Compose",
    "Union",
    "Star",
    "is_deterministic",
    "is_recursive",
    "uses_eqpath",
    "uses_atoms",
    "is_pure",
    "formula_size",
    "axis_depth",
]


class Unary:
    """Base class of unary JNL formulas (node filters)."""

    __slots__ = ()

    def __and__(self, other: "Unary") -> "Unary":
        return And(self, other)

    def __or__(self, other: "Unary") -> "Unary":
        return Or(self, other)

    def __invert__(self) -> "Unary":
        return Not(self)


class Binary:
    """Base class of binary JNL formulas (path expressions)."""

    __slots__ = ()

    def __truediv__(self, other: "Binary") -> "Binary":
        """Composition ``alpha o beta`` written ``alpha / beta``."""
        return Compose(self, other)

    def star(self) -> "Binary":
        return Star(self)


# ---------------------------------------------------------------------------
# Unary formulas.
# ---------------------------------------------------------------------------


@_cached_hash
@dataclass(frozen=True)
class Top(Unary):
    """The formula ``T``, true at every node."""


@_cached_hash
@dataclass(frozen=True)
class Not(Unary):
    operand: Unary


@_cached_hash
@dataclass(frozen=True)
class And(Unary):
    left: Unary
    right: Unary


@_cached_hash
@dataclass(frozen=True)
class Or(Unary):
    left: Unary
    right: Unary


@_cached_hash
@dataclass(frozen=True)
class Exists(Unary):
    """``[alpha]``: some node is reachable through ``alpha``."""

    path: Binary


@_cached_hash
@dataclass(frozen=True)
class EqDoc(Unary):
    """``EQ(alpha, A)``: ``alpha`` reaches a node whose subtree equals ``A``."""

    path: Binary
    doc: JSONTree


@_cached_hash
@dataclass(frozen=True)
class EqPath(Unary):
    """``EQ(alpha, beta)``: the two paths reach equal subtrees."""

    left: Binary
    right: Binary


@_cached_hash
@dataclass(frozen=True)
class Atom(Unary):
    """Extension: a NodeTest as an atomic unary formula (see module doc)."""

    test: NodeTest


# ---------------------------------------------------------------------------
# Binary formulas.
# ---------------------------------------------------------------------------


@_cached_hash
@dataclass(frozen=True)
class Eps(Binary):
    """``eps``: the identity relation."""


@_cached_hash
@dataclass(frozen=True)
class Test(Binary):
    """``<phi>``: stay at the node if ``phi`` holds there."""

    condition: Unary


@_cached_hash
@dataclass(frozen=True)
class Key(Binary):
    """``X_w``: follow the object edge labelled with the word ``w``."""

    word: str


@_cached_hash
@dataclass(frozen=True)
class Index(Binary):
    """``X_i``: follow the array edge at position ``i``.

    Negative positions count from the end (``-1`` is the last element),
    the dual operator the paper notes can be added without changing any
    results.
    """

    position: int


@_cached_hash
@dataclass(frozen=True)
class KeyRegex(Binary):
    """``X_e``: follow any object edge whose key lies in ``e`` (non-det)."""

    lang: KeyLang


@_cached_hash
@dataclass(frozen=True)
class IndexRange(Binary):
    """``X_{i:j}``: follow any array edge at a position in ``[i, j]``.

    ``high=None`` encodes ``j = +inf``.  Positions are 0-based (the
    paper is 1-based).
    """

    low: int
    high: int | None


@_cached_hash
@dataclass(frozen=True)
class Compose(Binary):
    left: Binary
    right: Binary


@_cached_hash
@dataclass(frozen=True)
class Union(Binary):
    """Extension: union of two paths (``alpha u beta``).

    Not part of the paper's grammar -- its non-determinism unions keys
    *within* one ``X_e`` axis only.  The JSONPath front-end needs the
    mixed "any child" axis ``X_{Sigma*} u X_{0:inf}``, so we add the
    standard PDL union, excluded from :func:`is_pure` checks.
    """

    left: Binary
    right: Binary


@_cached_hash
@dataclass(frozen=True)
class Star(Binary):
    """``(alpha)*``: the reflexive-transitive closure (recursion)."""

    inner: Binary


# ---------------------------------------------------------------------------
# Classification and metrics.
# ---------------------------------------------------------------------------


def _children(formula: Unary | Binary) -> tuple[Unary | Binary, ...]:
    if isinstance(formula, (Top, Atom, Eps, Key, Index, KeyRegex, IndexRange)):
        return ()
    if isinstance(formula, Not):
        return (formula.operand,)
    if isinstance(formula, (And, Or)):
        return (formula.left, formula.right)
    if isinstance(formula, Exists):
        return (formula.path,)
    if isinstance(formula, EqDoc):
        return (formula.path,)
    if isinstance(formula, EqPath):
        return (formula.left, formula.right)
    if isinstance(formula, Test):
        return (formula.condition,)
    if isinstance(formula, (Compose, Union)):
        return (formula.left, formula.right)
    if isinstance(formula, Star):
        return (formula.inner,)
    raise TypeError(f"unknown JNL formula {formula!r}")


def _any_node(formula: Unary | Binary, predicate) -> bool:
    stack: list[Unary | Binary] = [formula]
    while stack:
        current = stack.pop()
        if predicate(current):
            return True
        stack.extend(_children(current))
    return False


def is_deterministic(formula: Unary | Binary) -> bool:
    """No ``X_e`` / ``X_{i:j}`` axes, no star, no union (Section 4.2 core)."""
    return not _any_node(
        formula, lambda f: isinstance(f, (KeyRegex, IndexRange, Star, Union))
    )


def is_recursive(formula: Unary | Binary) -> bool:
    """Does the formula use the Kleene star?"""
    return _any_node(formula, lambda f: isinstance(f, Star))


def uses_eqpath(formula: Unary | Binary) -> bool:
    """Does the formula use the binary equality ``EQ(alpha, beta)``?"""
    return _any_node(formula, lambda f: isinstance(f, EqPath))


def uses_atoms(formula: Unary | Binary) -> bool:
    """Does the formula use the NodeTest-atom extension?"""
    return _any_node(formula, lambda f: isinstance(f, Atom))


def is_pure(formula: Unary | Binary) -> bool:
    """Is the formula inside the paper's syntax (no Atom/Union extension)?"""
    return not _any_node(formula, lambda f: isinstance(f, (Atom, Union)))


def formula_size(formula: Unary | Binary) -> int:
    """Number of AST nodes -- the ``|phi|`` of the complexity bounds."""
    size = 0
    stack: list[Unary | Binary] = [formula]
    while stack:
        current = stack.pop()
        size += 1
        stack.extend(_children(current))
    return size


@lru_cache(maxsize=None)
def axis_depth(formula: Unary | Binary) -> int:
    """Maximal number of axes composed along any path of the formula.

    This bounds the height of minimal models of star-free formulas,
    which the NP satisfiability procedure of Proposition 2 exploits.
    """
    if isinstance(formula, (Key, Index, KeyRegex, IndexRange)):
        return 1
    if isinstance(formula, Compose):
        return axis_depth(formula.left) + axis_depth(formula.right)
    children = _children(formula)
    if not children:
        return 0
    return max(axis_depth(child) for child in children)
