"""Efficient JNL evaluation (Propositions 1 and 3).

The evaluator computes, for a unary formula, the *set of nodes*
satisfying it, working bottom-up over the formula structure:

* boolean connectives are set operations over node sets;
* ``[alpha]`` and ``EQ(alpha, A)`` compile ``alpha`` into a path
  automaton (:mod:`repro.jnl.paths`) and run a **backward** reachability
  over the product of the tree with the automaton.  Because every axis
  moves strictly downward and each node has a unique parent, the
  product graph is traversed once, giving ``O(|J| * |alpha|)`` -- the
  bound of Proposition 1, and of Proposition 3 for formulas without
  ``EQ(alpha, beta)`` (the Kleene star only adds eps-loops to the
  automaton, not to the product's cost);
* ``EQ(alpha, beta)`` needs the *set of subtree values* reachable from
  each node, which the backward pass cannot provide.  For deterministic
  paths the unique targets are followed directly (linear); otherwise a
  forward reachability is run **per node**, which is where the paper's
  cubic bound for the full logic comes from.

All subtree comparisons use canonical hashes with structural
verification (see :mod:`repro.model.equality`), the "online" equality
the paper's Proposition 1 proof sketches.
"""

from __future__ import annotations

from typing import Iterable

from repro.jnl import ast
from repro.jnl.paths import (
    EPS,
    TEST,
    PathAutomaton,
    compile_path,
    edge_matches,
)
from repro.logic.nodetests import node_test_holds, nodes_satisfying_test
from repro.model.equality import canonical_hash, compute_all_hashes, subtree_equal
from repro.model.tree import JSONTree

__all__ = ["JNLEvaluator", "evaluate_unary", "satisfies", "target_nodes"]


class JNLEvaluator:
    """Evaluates unary JNL formulas over one JSON tree, with memoisation.

    Reuse one instance to evaluate many formulas over the same tree:
    node sets of shared subformulas and compiled path automata are
    cached.
    """

    def __init__(
        self,
        tree: JSONTree,
        *,
        exact_unique: bool = False,
        automata: dict[ast.Binary, PathAutomaton] | None = None,
    ) -> None:
        self.tree = tree
        self.exact_unique = exact_unique
        self._node_sets: dict[ast.Unary, frozenset[int]] = {}
        self._point_memo: dict[tuple[int, ast.Unary], bool] = {}
        # ``automata`` may be a shared cache (e.g. a CompiledQuery's):
        # path automata are tree-independent, so compiled ones can be
        # reused across evaluators, and new compilations flow back.
        self._automata: dict[ast.Binary, PathAutomaton] = (
            automata if automata is not None else {}
        )

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def nodes_satisfying(self, formula: ast.Unary) -> frozenset[int]:
        """All nodes ``n`` with ``n in [[formula]]_J``."""
        cached = self._node_sets.get(formula)
        if cached is not None:
            return cached
        result = self._evaluate(formula)
        self._node_sets[formula] = result
        return result

    def satisfies(self, node: int, formula: ast.Unary) -> bool:
        """The Evaluation problem: is ``node`` in ``[[formula]]_J``?"""
        return node in self.nodes_satisfying(formula)

    def satisfies_at(self, node: int, formula: ast.Unary) -> bool:
        """Point evaluation: like :meth:`satisfies`, but top-down.

        Instead of materialising the node set of every subformula,
        modal subformulas run the automaton *forward* from the probed
        node, so only the part of the tree actually reachable through
        the paths is visited.  Verdicts are memoised per ``(node,
        formula)``, and any full node set already computed by
        :meth:`nodes_satisfying` is reused, so interleaving both styles
        on one evaluator never repeats work.  This is what a compiled
        query's root-match (the document-store filter predicate) calls:
        on small selective queries it touches a handful of nodes where
        the bottom-up pass would scan ``|J| * |phi|``.

        Recursion depth follows the *unary* nesting of the formula
        (path composition stays iterative); for the adversarially deep
        formulas of the hardness reductions, prefer :meth:`satisfies`.
        """
        cached = self._node_sets.get(formula)
        if cached is not None:
            return node in cached
        key = (node, formula)
        verdict = self._point_memo.get(key)
        if verdict is None:
            verdict = self._compute_at(node, formula)
            self._point_memo[key] = verdict
        return verdict

    def target_nodes(
        self, path: ast.Binary, start: int | None = None
    ) -> frozenset[int]:
        """Nodes reachable from ``start`` through ``path`` (forward run)."""
        automaton = self._automaton(path)
        origin = self.tree.root if start is None else start
        return frozenset(self._forward_targets(automaton, origin))

    # ------------------------------------------------------------------
    # Formula dispatch.
    # ------------------------------------------------------------------

    def _evaluate(self, formula: ast.Unary) -> frozenset[int]:
        tree = self.tree
        if isinstance(formula, ast.Top):
            return frozenset(tree.nodes())
        if isinstance(formula, ast.Not):
            return frozenset(tree.nodes()) - self.nodes_satisfying(formula.operand)
        if isinstance(formula, ast.And):
            return self.nodes_satisfying(formula.left) & self.nodes_satisfying(
                formula.right
            )
        if isinstance(formula, ast.Or):
            return self.nodes_satisfying(formula.left) | self.nodes_satisfying(
                formula.right
            )
        if isinstance(formula, ast.Exists):
            return self._eval_reach(formula.path, None)
        if isinstance(formula, ast.EqDoc):
            return self._eval_reach(formula.path, formula.doc)
        if isinstance(formula, ast.EqPath):
            return self._eval_eqpath(formula)
        if isinstance(formula, ast.Atom):
            return nodes_satisfying_test(
                tree, formula.test, exact_unique=self.exact_unique
            )
        raise TypeError(f"unknown unary formula {formula!r}")

    def _compute_at(self, node: int, formula: ast.Unary) -> bool:
        """Uncached point verdict (see :meth:`satisfies_at`)."""
        tree = self.tree
        if isinstance(formula, ast.Top):
            return True
        if isinstance(formula, ast.Not):
            return not self.satisfies_at(node, formula.operand)
        if isinstance(formula, ast.And):
            return self.satisfies_at(node, formula.left) and self.satisfies_at(
                node, formula.right
            )
        if isinstance(formula, ast.Or):
            return self.satisfies_at(node, formula.left) or self.satisfies_at(
                node, formula.right
            )
        if isinstance(formula, ast.Exists):
            return bool(self._forward_targets(self._automaton(formula.path), node))
        if isinstance(formula, ast.EqDoc):
            targets = self._forward_targets(self._automaton(formula.path), node)
            if not targets:
                return False
            doc = formula.doc
            target_hash = canonical_hash(doc, doc.root)
            hashes = compute_all_hashes(tree)
            return any(
                hashes[target] == target_hash
                and subtree_equal(tree, target, doc, doc.root)
                for target in targets
            )
        if isinstance(formula, ast.EqPath):
            targets_left = self._forward_targets(
                self._automaton(formula.left), node
            )
            if not targets_left:
                return False
            targets_right = self._forward_targets(
                self._automaton(formula.right), node
            )
            if not targets_right:
                return False
            return self._value_sets_intersect(
                targets_left, targets_right, compute_all_hashes(tree)
            )
        if isinstance(formula, ast.Atom):
            return node_test_holds(
                tree, node, formula.test, exact_unique=self.exact_unique
            )
        raise TypeError(f"unknown unary formula {formula!r}")

    # ------------------------------------------------------------------
    # Reachability machinery.
    # ------------------------------------------------------------------

    def _automaton(self, path: ast.Binary) -> PathAutomaton:
        automaton = self._automata.get(path)
        if automaton is None:
            automaton = compile_path(path)
            self._automata[path] = automaton
        return automaton

    def _test_sets(
        self, automaton: PathAutomaton
    ) -> dict[ast.Unary, frozenset[int]]:
        return {test: self.nodes_satisfying(test) for test in automaton.tests}

    def _eval_reach(self, path: ast.Binary, doc: JSONTree | None) -> frozenset[int]:
        """Nodes from which ``path`` reaches an accepting node.

        ``doc=None`` computes ``[alpha]``; otherwise ``EQ(alpha, doc)``,
        i.e. acceptance additionally requires the reached subtree to
        equal ``doc``.
        """
        tree = self.tree
        automaton = self._automaton(path)
        if automaton.deterministic:
            return self._eval_reach_deterministic(path, doc)
        test_sets = self._test_sets(automaton)
        num_states = automaton.num_states
        accept = automaton.accept

        if doc is None:
            seed_nodes: Iterable[int] = tree.nodes()
        else:
            target_hash = canonical_hash(doc, doc.root)
            hashes = compute_all_hashes(tree)
            seed_nodes = [
                node
                for node in tree.nodes()
                if hashes[node] == target_hash
                and subtree_equal(tree, node, doc, doc.root)
            ]

        # Product configurations are packed as ``node * num_states +
        # state`` into a bytearray visited-map and an int worklist: the
        # loop below runs once per (config, incoming transition) and
        # tuple/set overhead dominated profiles on the compiled path.
        reached = bytearray(len(tree) * num_states)
        worklist: list[int] = []
        for node in seed_nodes:
            config = node * num_states + accept
            reached[config] = 1
            worklist.append(config)
        incoming = automaton.incoming
        parents = tree.node_parents()
        labels = tree.node_labels()
        while worklist:
            config = worklist.pop()
            node, state = divmod(config, num_states)
            for transition in incoming[state]:
                kind = transition.kind
                if kind == EPS:
                    target = config - state + transition.source
                    if not reached[target]:
                        reached[target] = 1
                        worklist.append(target)
                elif kind == TEST:
                    if node in test_sets[transition.payload]:  # type: ignore[index]
                        target = config - state + transition.source
                        if not reached[target]:
                            reached[target] = 1
                            worklist.append(target)
                else:
                    parent = parents[node]
                    if parent < 0:
                        continue
                    label = labels[node]
                    assert label is not None
                    if edge_matches(tree, parent, label, kind, transition.payload):
                        target = parent * num_states + transition.source
                        if not reached[target]:
                            reached[target] = 1
                            worklist.append(target)
        start = automaton.start
        return frozenset(
            node
            for node in tree.nodes()
            if reached[node * num_states + start]
        )

    def _eval_reach_deterministic(
        self, path: ast.Binary, doc: JSONTree | None
    ) -> frozenset[int]:
        """``[alpha]`` / ``EQ(alpha, A)`` for deterministic ``alpha``.

        A deterministic path has at most one target per origin, so each
        node is checked by following the unique chain of steps --
        ``O(|J| * |alpha|)`` like the product construction, but without
        materialising the product graph.
        """
        tree = self.tree
        if doc is None:
            return frozenset(
                node
                for node in tree.nodes()
                if self._follow_deterministic(node, path) is not None
            )
        target_hash = canonical_hash(doc, doc.root)
        hashes = compute_all_hashes(tree)
        result: set[int] = set()
        for node in tree.nodes():
            target = self._follow_deterministic(node, path)
            if (
                target is not None
                and hashes[target] == target_hash
                and subtree_equal(tree, target, doc, doc.root)
            ):
                result.add(node)
        return frozenset(result)

    def _forward_targets(self, automaton: PathAutomaton, origin: int) -> set[int]:
        """Nodes reachable at the accept state from ``(origin, start)``.

        Test transitions are decided lazily via :meth:`satisfies_at`,
        so only nodes the traversal actually visits are ever probed --
        a forward run from one origin touches the reachable part of the
        product, not the whole tree.
        """
        tree = self.tree
        num_states = automaton.num_states
        accept = automaton.accept
        outgoing = automaton.outgoing
        start_config = origin * num_states + automaton.start
        reached = bytearray(len(tree) * num_states)
        reached[start_config] = 1
        worklist = [start_config]
        results: set[int] = set()
        while worklist:
            config = worklist.pop()
            node, state = divmod(config, num_states)
            if state == accept:
                results.add(node)
            for transition in outgoing[state]:
                kind = transition.kind
                if kind == EPS:
                    target = config - state + transition.target
                    if not reached[target]:
                        reached[target] = 1
                        worklist.append(target)
                elif kind == TEST:
                    payload = transition.payload
                    if self.satisfies_at(node, payload):  # type: ignore[arg-type]
                        target = config - state + transition.target
                        if not reached[target]:
                            reached[target] = 1
                            worklist.append(target)
                else:
                    for label, child in tree.edges(node):
                        if edge_matches(tree, node, label, kind, transition.payload):
                            target = child * num_states + transition.target
                            if not reached[target]:
                                reached[target] = 1
                                worklist.append(target)
        return results

    # ------------------------------------------------------------------
    # EQ(alpha, beta).
    # ------------------------------------------------------------------

    def _eval_eqpath(self, formula: ast.EqPath) -> frozenset[int]:
        left, right = formula.left, formula.right
        if ast.is_deterministic(left) and ast.is_deterministic(right):
            return self._eval_eqpath_deterministic(left, right)
        tree = self.tree
        hashes = compute_all_hashes(tree)
        automaton_left = self._automaton(left)
        automaton_right = self._automaton(right)
        result: set[int] = set()
        for node in tree.nodes():
            targets_left = self._forward_targets(automaton_left, node)
            if not targets_left:
                continue
            targets_right = self._forward_targets(automaton_right, node)
            if not targets_right:
                continue
            if self._value_sets_intersect(
                targets_left, targets_right, hashes
            ):
                result.add(node)
        return frozenset(result)

    def _value_sets_intersect(
        self, left: set[int], right: set[int], hashes: list[int]
    ) -> bool:
        by_hash: dict[int, list[int]] = {}
        for node in left:
            by_hash.setdefault(hashes[node], []).append(node)
        for node in right:
            candidates = by_hash.get(hashes[node])
            if not candidates:
                continue
            for candidate in candidates:
                if candidate == node or subtree_equal(
                    self.tree, candidate, self.tree, node
                ):
                    return True
        return False

    def _eval_eqpath_deterministic(
        self, left: ast.Binary, right: ast.Binary
    ) -> frozenset[int]:
        """Linear fast path: deterministic paths have unique targets."""
        tree = self.tree
        hashes = compute_all_hashes(tree)
        result: set[int] = set()
        for node in tree.nodes():
            target_left = self._follow_deterministic(node, left)
            if target_left is None:
                continue
            target_right = self._follow_deterministic(node, right)
            if target_right is None:
                continue
            if target_left == target_right or (
                hashes[target_left] == hashes[target_right]
                and subtree_equal(tree, target_left, tree, target_right)
            ):
                result.add(node)
        return frozenset(result)

    def _follow_deterministic(self, node: int, path: ast.Binary) -> int | None:
        """The unique node reached via a deterministic path, if any."""
        tree = self.tree
        # Left-to-right sequence of steps (iterative flattening).
        stack: list[ast.Binary] = [path]
        current = node
        while stack:
            step = stack.pop()
            if isinstance(step, ast.Compose):
                stack.append(step.right)
                stack.append(step.left)
            elif isinstance(step, ast.Eps):
                continue
            elif isinstance(step, ast.Test):
                if current not in self.nodes_satisfying(step.condition):
                    return None
            elif isinstance(step, ast.Key):
                next_node = tree.object_child(current, step.word)
                if next_node is None:
                    return None
                current = next_node
            elif isinstance(step, ast.Index):
                next_node = tree.array_child(current, step.position)
                if next_node is None:
                    return None
                current = next_node
            else:
                raise TypeError(f"non-deterministic step {step!r} in fast path")
        return current


def evaluate_unary(
    tree: JSONTree, formula: ast.Unary, *, exact_unique: bool = False
) -> frozenset[int]:
    """One-shot evaluation of a unary formula over a tree."""
    return JNLEvaluator(tree, exact_unique=exact_unique).nodes_satisfying(formula)


def satisfies(
    tree: JSONTree, formula: ast.Unary, node: int | None = None
) -> bool:
    """Does ``node`` (default: the root) satisfy ``formula``?"""
    target = tree.root if node is None else node
    return target in evaluate_unary(tree, formula)


def target_nodes(
    tree: JSONTree, path: ast.Binary, start: int | None = None
) -> frozenset[int]:
    """Nodes reachable from ``start`` (default: root) through ``path``."""
    return JNLEvaluator(tree).target_nodes(path, start)
