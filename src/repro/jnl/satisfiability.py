"""Satisfiability of JNL (Propositions 2, 4 and 5).

The decision procedure follows the route the paper's proofs suggest:

* translate the JNL formula into (possibly recursive) JSL via the
  Theorem-2 construction (:mod:`repro.translate.jnl_to_jsl`) -- the
  Kleene star becomes guarded recursive definitions, exactly the
  "introducing definitions" trick in the Proposition 5 proof;
* decide the result with the Proposition 7/10 engine
  (:mod:`repro.jsl.satisfiability`);
* re-validate any witness against the *original* JNL formula with the
  efficient evaluator, so SAT answers are sound end to end.

``EQ(alpha, beta)`` is excluded: JSL cannot express it, and for the
non-deterministic recursive logic the problem is undecidable
(Proposition 4) -- the solver refuses rather than loops.  The
two-counter-machine encoding behind that proof is executable in
:mod:`repro.reductions.counter_machines`.

Complexity context: deterministic JNL satisfiability is NP-complete
(Proposition 2; hardness via :mod:`repro.reductions.sat3`), the
non-deterministic star-free fragment is PSPACE-complete and the
recursive one EXPTIME-complete (Proposition 5) -- so the underlying
engine's resource bounds are inherent, and results carry the same
``complete`` flag.
"""

from __future__ import annotations

from repro.errors import UnsupportedFragmentError
from repro.jnl import ast
from repro.jnl.efficient import evaluate_unary
from repro.jsl.satisfiability import SatResult, SolverConfig, jsl_satisfiable
from repro.translate.jnl_to_jsl import jnl_to_jsl

__all__ = ["jnl_satisfiable"]


def jnl_satisfiable(
    formula: ast.Unary, config: SolverConfig | None = None
) -> SatResult:
    """Decide satisfiability of a unary JNL formula without EQ(a, b).

    Raises :class:`UnsupportedFragmentError` on ``EQ(alpha, beta)``:
    with non-determinism and recursion the problem is undecidable
    (Proposition 4), and the engine draws the line at the fragment the
    paper proves decidable.
    """
    if ast.uses_eqpath(formula):
        if ast.is_recursive(formula) or not ast.is_deterministic(formula):
            raise UnsupportedFragmentError(
                "satisfiability with EQ(alpha, beta) plus non-determinism/"
                "recursion is undecidable (Proposition 4)"
            )
        raise UnsupportedFragmentError(
            "EQ(alpha, beta) satisfiability is not implemented: the JSL "
            "route cannot express it (the NP upper bound of Proposition 2 "
            "needs a dedicated tableau)"
        )
    translated = jnl_to_jsl(formula)
    result = jsl_satisfiable(translated, config)
    if result.satisfiable:
        witness = result.witness
        assert witness is not None
        if witness.root not in evaluate_unary(witness, formula):
            raise AssertionError(
                "internal error: JNL witness failed re-validation"
            )
    return result
