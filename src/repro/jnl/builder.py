"""Ergonomic constructors for JNL formulas.

These helpers keep user code close to the paper's notation::

    from repro.jnl import builder as q

    # [X_name o X_first] ^ EQ(X_age, 32)
    phi = q.has(q.key("name") / q.key("first")) & q.eq_doc(q.key("age"), 32)
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.keylang import KeyLang
from repro.jnl import ast
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree, JSONValue

__all__ = [
    "top",
    "bottom",
    "key",
    "index",
    "key_regex",
    "any_key_axis",
    "index_range",
    "any_index_axis",
    "eps",
    "test",
    "compose",
    "star",
    "union",
    "any_child_axis",
    "descendant_or_self_axis",
    "has",
    "eq_doc",
    "eq_path",
    "atom",
    "conj",
    "disj",
    "kind_object",
    "kind_array",
    "kind_string",
    "kind_number",
]


def top() -> ast.Unary:
    return ast.Top()


def bottom() -> ast.Unary:
    """``~T`` -- the paper's shorthand for falsity."""
    return ast.Not(ast.Top())


def key(word: str) -> ast.Binary:
    """The deterministic key axis ``X_w``."""
    return ast.Key(word)


def index(position: int) -> ast.Binary:
    """The deterministic index axis ``X_i`` (negative = from the end)."""
    return ast.Index(position)


def key_regex(pattern: str | KeyLang) -> ast.Binary:
    """The non-deterministic key axis ``X_e``."""
    lang = KeyLang.regex(pattern) if isinstance(pattern, str) else pattern
    return ast.KeyRegex(lang)


def any_key_axis() -> ast.Binary:
    """``X_{Sigma*}``: follow any object edge."""
    return ast.KeyRegex(KeyLang.any())


def index_range(low: int, high: int | None) -> ast.Binary:
    """The non-deterministic index axis ``X_{i:j}`` (``high=None`` = +inf)."""
    if low < 0 or (high is not None and high < low):
        raise ValueError(f"invalid index range [{low}:{high}]")
    return ast.IndexRange(low, high)


def any_index_axis() -> ast.Binary:
    """``X_{0:inf}``: follow any array edge."""
    return ast.IndexRange(0, None)


def eps() -> ast.Binary:
    return ast.Eps()


def test(condition: ast.Unary) -> ast.Binary:
    """The test ``<phi>``."""
    return ast.Test(condition)


def compose(*paths: ast.Binary) -> ast.Binary:
    """``alpha_1 o ... o alpha_k`` (``eps`` when called with no paths)."""
    if not paths:
        return ast.Eps()
    result = paths[0]
    for path in paths[1:]:
        result = ast.Compose(result, path)
    return result


def star(path: ast.Binary) -> ast.Binary:
    return ast.Star(path)


def union(*paths: ast.Binary) -> ast.Binary:
    """Path union (extension; see :class:`repro.jnl.ast.Union`)."""
    if not paths:
        raise ValueError("union needs at least one path")
    result = paths[0]
    for path in paths[1:]:
        result = ast.Union(result, path)
    return result


def any_child_axis() -> ast.Binary:
    """Any single downward step: ``X_{Sigma*} u X_{0:inf}``."""
    return ast.Union(ast.KeyRegex(KeyLang.any()), ast.IndexRange(0, None))


def descendant_or_self_axis() -> ast.Binary:
    """``(any child)*`` -- JSONPath's recursive descent ``..``."""
    return ast.Star(any_child_axis())


def has(path: ast.Binary) -> ast.Unary:
    """``[alpha]``: some node is reachable via ``alpha``."""
    return ast.Exists(path)


def eq_doc(path: ast.Binary, doc: JSONValue | JSONTree) -> ast.Unary:
    """``EQ(alpha, A)``; ``doc`` may be a Python value or a tree."""
    tree = doc if isinstance(doc, JSONTree) else JSONTree.from_value(doc)
    return ast.EqDoc(path, tree)


def eq_path(left: ast.Binary, right: ast.Binary) -> ast.Unary:
    """``EQ(alpha, beta)``."""
    return ast.EqPath(left, right)


def atom(test_: nt.NodeTest) -> ast.Unary:
    """A NodeTest atom (extension; see :class:`repro.jnl.ast.Atom`)."""
    return ast.Atom(test_)


def conj(formulas: Iterable[ast.Unary]) -> ast.Unary:
    items = list(formulas)
    if not items:
        return ast.Top()
    result = items[0]
    for item in items[1:]:
        result = ast.And(result, item)
    return result


def disj(formulas: Iterable[ast.Unary]) -> ast.Unary:
    items = list(formulas)
    if not items:
        return bottom()
    result = items[0]
    for item in items[1:]:
        result = ast.Or(result, item)
    return result


def kind_object() -> ast.Unary:
    return ast.Atom(nt.IsObject())


def kind_array() -> ast.Unary:
    return ast.Atom(nt.IsArray())


def kind_string() -> ast.Unary:
    return ast.Atom(nt.IsString())


def kind_number() -> ast.Unary:
    return ast.Atom(nt.IsNumber())
