"""Reference (denotational) evaluator for JNL.

This evaluator follows the semantic equations of Section 4.2 *letter by
letter*: binary formulas denote sets of node pairs, unary formulas
denote sets of nodes, and the Kleene star is the least fixpoint of
relation composition.  It is quadratic-to-cubic and exists purely as
ground truth: the efficient evaluator of :mod:`repro.jnl.efficient` is
differentially tested against it.
"""

from __future__ import annotations

from repro.jnl import ast
from repro.logic.nodetests import node_test_holds
from repro.model.equality import subtree_equal
from repro.model.tree import JSONTree

__all__ = ["eval_binary", "eval_unary"]

Pair = tuple[int, int]


def eval_binary(
    tree: JSONTree, path: ast.Binary, *, exact_unique: bool = False
) -> set[Pair]:
    """The relation ``[[alpha]]_J`` as an explicit set of node pairs."""
    if isinstance(path, ast.Eps):
        return {(n, n) for n in tree.nodes()}
    if isinstance(path, ast.Test):
        nodes = eval_unary(tree, path.condition, exact_unique=exact_unique)
        return {(n, n) for n in nodes}
    if isinstance(path, ast.Key):
        pairs: set[Pair] = set()
        for node in tree.nodes():
            child = tree.object_child(node, path.word)
            if child is not None:
                pairs.add((node, child))
        return pairs
    if isinstance(path, ast.Index):
        pairs = set()
        for node in tree.nodes():
            child = tree.array_child(node, path.position)
            if child is not None:
                pairs.add((node, child))
        return pairs
    if isinstance(path, ast.KeyRegex):
        pairs = set()
        for node in tree.nodes():
            for label, child in tree.edges(node):
                if isinstance(label, str) and path.lang.matches(label):
                    pairs.add((node, child))
        return pairs
    if isinstance(path, ast.IndexRange):
        pairs = set()
        for node in tree.nodes():
            for label, child in tree.edges(node):
                if isinstance(label, int) and path.low <= label and (
                    path.high is None or label <= path.high
                ):
                    pairs.add((node, child))
        return pairs
    if isinstance(path, ast.Compose):
        left = eval_binary(tree, path.left, exact_unique=exact_unique)
        right = eval_binary(tree, path.right, exact_unique=exact_unique)
        return _compose(left, right)
    if isinstance(path, ast.Union):
        return eval_binary(tree, path.left, exact_unique=exact_unique) | eval_binary(
            tree, path.right, exact_unique=exact_unique
        )
    if isinstance(path, ast.Star):
        inner = eval_binary(tree, path.inner, exact_unique=exact_unique)
        closure = {(n, n) for n in tree.nodes()}
        frontier = closure | inner
        while True:
            new_pairs = frontier - closure
            if not new_pairs:
                return closure
            closure |= new_pairs
            frontier = _compose(closure, inner) | closure
    raise TypeError(f"unknown binary formula {path!r}")


def _compose(left: set[Pair], right: set[Pair]) -> set[Pair]:
    by_source: dict[int, list[int]] = {}
    for source, target in right:
        by_source.setdefault(source, []).append(target)
    return {
        (source, final)
        for source, middle in left
        for final in by_source.get(middle, ())
    }


def eval_unary(
    tree: JSONTree, formula: ast.Unary, *, exact_unique: bool = False
) -> set[int]:
    """The set ``[[phi]]_J`` of nodes satisfying ``phi``."""
    if isinstance(formula, ast.Top):
        return set(tree.nodes())
    if isinstance(formula, ast.Not):
        return set(tree.nodes()) - eval_unary(
            tree, formula.operand, exact_unique=exact_unique
        )
    if isinstance(formula, ast.And):
        return eval_unary(tree, formula.left, exact_unique=exact_unique) & eval_unary(
            tree, formula.right, exact_unique=exact_unique
        )
    if isinstance(formula, ast.Or):
        return eval_unary(tree, formula.left, exact_unique=exact_unique) | eval_unary(
            tree, formula.right, exact_unique=exact_unique
        )
    if isinstance(formula, ast.Exists):
        pairs = eval_binary(tree, formula.path, exact_unique=exact_unique)
        return {source for source, _target in pairs}
    if isinstance(formula, ast.EqDoc):
        pairs = eval_binary(tree, formula.path, exact_unique=exact_unique)
        doc = formula.doc
        return {
            source
            for source, target in pairs
            if subtree_equal(tree, target, doc, doc.root)
        }
    if isinstance(formula, ast.EqPath):
        left = eval_binary(tree, formula.left, exact_unique=exact_unique)
        right = eval_binary(tree, formula.right, exact_unique=exact_unique)
        left_by_source: dict[int, list[int]] = {}
        for source, target in left:
            left_by_source.setdefault(source, []).append(target)
        right_by_source: dict[int, list[int]] = {}
        for source, target in right:
            right_by_source.setdefault(source, []).append(target)
        result: set[int] = set()
        for source, left_targets in left_by_source.items():
            right_targets = right_by_source.get(source)
            if not right_targets:
                continue
            if any(
                subtree_equal(tree, a, tree, b)
                for a in left_targets
                for b in right_targets
            ):
                result.add(source)
        return result
    if isinstance(formula, ast.Atom):
        return {
            node
            for node in tree.nodes()
            if node_test_holds(tree, node, formula.test, exact_unique=exact_unique)
        }
    raise TypeError(f"unknown unary formula {formula!r}")
