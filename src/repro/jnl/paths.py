"""Compilation of binary JNL formulas into *path automata*.

A binary formula denotes a set of node pairs connected by downward
paths.  Because JNL has composition, tests, and (with the recursion
extension) the Kleene star, the natural execution model is an NFA whose
transitions are labelled with

* ``eps``            -- stay at the node;
* ``test(phi)``      -- stay, provided the node satisfies ``phi``;
* ``key(w)``/``key(e)`` -- descend along an object edge with a matching
  key;
* ``index(i)``/``index(i:j)`` -- descend along a matching array edge.

Evaluating a formula then becomes reachability in the product of the
JSON tree with this automaton.  Since all axes move strictly downward,
the product graph restricted to moving transitions is acyclic, and both
the forward and the backward reachability used by
:mod:`repro.jnl.efficient` are linear in ``|J| * |automaton|`` -- this
is how Proposition 1's ``O(|J| x |phi|)`` bound and the linear part of
Proposition 3 are realised (the same idea as PDL model checking, which
the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.automata.keylang import KeyLang
from repro.jnl import ast
from repro.model.tree import JSONTree

__all__ = ["Transition", "PathAutomaton", "compile_path", "edge_matches"]

# Transition kinds.
EPS = "eps"
TEST = "test"
KEY = "key"
KEY_LANG = "key_lang"
INDEX = "index"
INDEX_RANGE = "index_range"


@dataclass(frozen=True)
class Transition:
    """One automaton transition: ``source --kind(payload)--> target``."""

    source: int
    kind: str
    payload: object
    target: int


class PathAutomaton:
    """An NFA over path labels with a single start and accept state."""

    __slots__ = (
        "num_states",
        "start",
        "accept",
        "outgoing",
        "incoming",
        "tests",
        "deterministic",
    )

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accept = 0
        self.outgoing: list[list[Transition]] = []
        self.incoming: list[list[Transition]] = []
        # All distinct unary test formulas appearing on transitions.
        self.tests: list[ast.Unary] = []
        # Set by compile_path: a deterministic source formula lets the
        # evaluators follow unique targets instead of running the
        # product reachability (same asymptotics, smaller constants).
        self.deterministic = False

    def new_state(self) -> int:
        self.outgoing.append([])
        self.incoming.append([])
        self.num_states += 1
        return self.num_states - 1

    def add(self, source: int, kind: str, payload: object, target: int) -> None:
        transition = Transition(source, kind, payload, target)
        self.outgoing[source].append(transition)
        self.incoming[target].append(transition)
        if kind == TEST and payload not in self.tests:
            assert isinstance(payload, ast.Unary)
            self.tests.append(payload)

    @property
    def size(self) -> int:
        return self.num_states + sum(len(edges) for edges in self.outgoing)


def compile_path(path: ast.Binary) -> PathAutomaton:
    """Thompson-style construction from a binary formula."""
    automaton = PathAutomaton()

    def build(node: ast.Binary) -> tuple[int, int]:
        if isinstance(node, ast.Eps):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, EPS, None, end)
            return start, end
        if isinstance(node, ast.Test):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, TEST, node.condition, end)
            return start, end
        if isinstance(node, ast.Key):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, KEY, node.word, end)
            return start, end
        if isinstance(node, ast.Index):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, INDEX, node.position, end)
            return start, end
        if isinstance(node, ast.KeyRegex):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, KEY_LANG, node.lang, end)
            return start, end
        if isinstance(node, ast.IndexRange):
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, INDEX_RANGE, (node.low, node.high), end)
            return start, end
        if isinstance(node, ast.Compose):
            left = build(node.left)
            right = build(node.right)
            automaton.add(left[1], EPS, None, right[0])
            return left[0], right[1]
        if isinstance(node, ast.Union):
            left = build(node.left)
            right = build(node.right)
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, EPS, None, left[0])
            automaton.add(start, EPS, None, right[0])
            automaton.add(left[1], EPS, None, end)
            automaton.add(right[1], EPS, None, end)
            return start, end
        if isinstance(node, ast.Star):
            inner = build(node.inner)
            start = automaton.new_state()
            end = automaton.new_state()
            automaton.add(start, EPS, None, inner[0])
            automaton.add(start, EPS, None, end)
            automaton.add(inner[1], EPS, None, inner[0])
            automaton.add(inner[1], EPS, None, end)
            return start, end
        raise TypeError(f"unknown binary formula {node!r}")

    start, accept = build(path)
    automaton.start = start
    automaton.accept = accept
    automaton.deterministic = ast.is_deterministic(path)
    return automaton


def edge_matches(
    tree: JSONTree,
    source: int,
    label: str | int,
    kind: str,
    payload: object,
) -> bool:
    """Does the tree edge ``source --label--> child`` match an axis label?"""
    if kind == KEY:
        return isinstance(label, str) and label == payload
    if kind == KEY_LANG:
        assert isinstance(payload, KeyLang)
        return isinstance(label, str) and payload.matches(label)
    if kind == INDEX:
        if not isinstance(label, int):
            return False
        position = payload
        assert isinstance(position, int)
        if position < 0:
            position += tree.array_length(source)
        return label == position
    if kind == INDEX_RANGE:
        if not isinstance(label, int):
            return False
        low, high = payload  # type: ignore[misc]
        return low <= label and (high is None or label <= high)
    return False


def moving_transitions(automaton: PathAutomaton) -> Iterable[Transition]:
    """All axis (downward-moving) transitions of the automaton."""
    for edges in automaton.outgoing:
        for transition in edges:
            if transition.kind in (KEY, KEY_LANG, INDEX, INDEX_RANGE):
                yield transition
