"""A concrete syntax for JNL formulas.

The paper defines JNL abstractly; this module supplies a compact text
form used throughout the examples, tests and benchmarks.

Unary formulas::

    unary    :=  or
    or       :=  and ('or' and)*
    and      :=  not ('and' not)*
    not      :=  'not' not | primary
    primary  :=  'true' | 'false'
              | 'has' '(' binary ')'                    -- [alpha]
              | 'eq' '(' binary ',' binary ')'          -- EQ(alpha, beta)
              | 'matches' '(' binary ',' JSON ')'       -- EQ(alpha, A)
              | 'test' '(' nodetest ')'                 -- Atom extension
              | '(' unary ')'

Binary (path) formulas -- composition is juxtaposition::

    binary   :=  alt
    alt      :=  seq ('|' seq)*                         -- Union extension
    seq      :=  step+
    step     :=  base '*'*                              -- Kleene star
    base     :=  '.' key | '[' index ']' | '<' unary '>'
              | '(' binary ')' | 'eps'
    key      :=  IDENT | STRING | '*' | '/' regex '/'
    index    :=  INT | INT? ':' INT? | '*'

Node tests (for the ``test(...)`` atom extension)::

    nodetest :=  'object' | 'array' | 'string' | 'number' | 'unique'
              | 'pattern' '(' STRING ')'
              | ('min'|'max'|'multipleof'|'minch'|'maxch') '(' INT ')'
              | 'value' '(' JSON ')'                    -- ~(A)

Examples::

    has(.name.first)                   # [X_name o X_first]
    matches(.age, 32)                  # EQ(X_age, 32)
    eq(.billing, .shipping)            # EQ(X_billing, X_shipping)
    has(./a(b|c)a/<test(number)>)      # regex key axis with a test
    has((.*|[*])* .error)              # some descendant has key "error"
"""

from __future__ import annotations

import json as _json

from repro.automata.keylang import KeyLang
from repro.errors import ParseError
from repro.jnl import ast
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree

__all__ = ["parse_jnl", "parse_jnl_path", "parse_node_test_text"]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level ----------------------------------------------------------

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.pos)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def try_consume(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def keyword(self) -> str | None:
        """Peek an identifier without consuming it."""
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in _IDENT_START:
            return None
        end = self.pos
        while end < len(self.text) and self.text[end] in _IDENT_CONT:
            end += 1
        return self.text[self.pos : end]

    def consume_keyword(self, word: str) -> bool:
        if self.keyword() == word:
            self.pos += len(word)
            return True
        return False

    def ident(self) -> str:
        word = self.keyword()
        if word is None:
            raise self.error("expected an identifier")
        self.pos += len(word)
        return word

    def string_literal(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != '"':
            raise self.error("expected a string literal")
        decoder = _json.JSONDecoder()
        try:
            value, end = decoder.raw_decode(self.text, self.pos)
        except _json.JSONDecodeError as exc:
            raise self.error(f"bad string literal: {exc.msg}") from exc
        if not isinstance(value, str):
            raise self.error("expected a string literal")
        self.pos = end
        return value

    def integer(self) -> int:
        self.skip_ws()
        start = self.pos
        if self.pos < len(self.text) and self.text[self.pos] == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start or self.text[start:self.pos] == "-":
            self.pos = start
            raise self.error("expected an integer")
        return int(self.text[start : self.pos])

    def json_literal(self) -> JSONTree:
        self.skip_ws()
        decoder = _json.JSONDecoder()
        try:
            value, end = decoder.raw_decode(self.text, self.pos)
        except _json.JSONDecodeError as exc:
            raise self.error(f"bad JSON literal: {exc.msg}") from exc
        self.pos = end
        return JSONTree.from_value(value)

    # -- unary grammar ------------------------------------------------------

    def unary(self) -> ast.Unary:
        left = self.conjunction()
        while self.consume_keyword("or"):
            left = ast.Or(left, self.conjunction())
        return left

    def conjunction(self) -> ast.Unary:
        left = self.negation()
        while self.consume_keyword("and"):
            left = ast.And(left, self.negation())
        return left

    def negation(self) -> ast.Unary:
        if self.consume_keyword("not"):
            return ast.Not(self.negation())
        return self.unary_primary()

    def unary_primary(self) -> ast.Unary:
        word = self.keyword()
        if word == "true":
            self.pos += len(word)
            return ast.Top()
        if word == "false":
            self.pos += len(word)
            return ast.Not(ast.Top())
        if word == "has":
            self.pos += len(word)
            self.expect("(")
            path = self.binary()
            self.expect(")")
            return ast.Exists(path)
        if word == "eq":
            self.pos += len(word)
            self.expect("(")
            left = self.binary()
            self.expect(",")
            right = self.binary()
            self.expect(")")
            return ast.EqPath(left, right)
        if word == "matches":
            self.pos += len(word)
            self.expect("(")
            path = self.binary()
            self.expect(",")
            doc = self.json_literal()
            self.expect(")")
            return ast.EqDoc(path, doc)
        if word == "test":
            self.pos += len(word)
            self.expect("(")
            node_test = self.node_test()
            self.expect(")")
            return ast.Atom(node_test)
        if self.try_consume("("):
            inner = self.unary()
            self.expect(")")
            return inner
        raise self.error("expected a unary formula")

    def node_test(self) -> nt.NodeTest:
        word = self.ident().lower()
        simple = {
            "object": nt.IsObject(),
            "array": nt.IsArray(),
            "string": nt.IsString(),
            "number": nt.IsNumber(),
            "unique": nt.Unique(),
        }
        if word in simple:
            return simple[word]
        if word == "pattern":
            self.expect("(")
            pattern = self.string_literal()
            self.expect(")")
            return nt.Pattern(KeyLang.regex(pattern))
        if word == "value":
            self.expect("(")
            doc = self.json_literal()
            self.expect(")")
            return nt.EqDocTest(doc)
        integer_tests = {
            "min": nt.MinVal,
            "max": nt.MaxVal,
            "multipleof": nt.MultOf,
            "minch": nt.MinCh,
            "maxch": nt.MaxCh,
        }
        if word in integer_tests:
            self.expect("(")
            bound = self.integer()
            self.expect(")")
            return integer_tests[word](bound)
        raise self.error(f"unknown node test {word!r}")

    # -- binary grammar -----------------------------------------------------

    def binary(self) -> ast.Binary:
        left = self.sequence()
        while self.peek() == "|":
            self.pos += 1
            left = ast.Union(left, self.sequence())
        return left

    def sequence(self) -> ast.Binary:
        steps = [self.step()]
        while True:
            char = self.peek()
            if (char and char in ".[<(") or self.keyword() == "eps":
                steps.append(self.step())
            else:
                break
        result = steps[0]
        for step in steps[1:]:
            result = ast.Compose(result, step)
        return result

    def step(self) -> ast.Binary:
        base = self.base_step()
        while True:
            self.skip_ws()
            if self.pos < len(self.text) and self.text[self.pos] == "*":
                self.pos += 1
                base = ast.Star(base)
            else:
                return base

    def base_step(self) -> ast.Binary:
        if self.consume_keyword("eps"):
            return ast.Eps()
        char = self.peek()
        if char == ".":
            self.pos += 1
            return self.key_axis()
        if char == "[":
            self.pos += 1
            axis = self.index_axis()
            self.expect("]")
            return axis
        if char == "<":
            self.pos += 1
            condition = self.unary()
            self.expect(">")
            return ast.Test(condition)
        if char == "(":
            self.pos += 1
            inner = self.binary()
            self.expect(")")
            return inner
        raise self.error("expected a path step")

    def key_axis(self) -> ast.Binary:
        # No whitespace skipping here: the key follows '.' directly.
        if self.pos >= len(self.text):
            raise self.error("expected a key after '.'")
        char = self.text[self.pos]
        if char == "*":
            self.pos += 1
            return ast.KeyRegex(KeyLang.any())
        if char == '"':
            return ast.Key(self.string_literal())
        if char == "/":
            return ast.KeyRegex(KeyLang.regex(self.regex_literal()))
        if char in _IDENT_START:
            return ast.Key(self.ident())
        raise self.error("expected a key after '.'")

    def regex_literal(self) -> str:
        assert self.text[self.pos] == "/"
        self.pos += 1
        chars: list[str] = []
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "\\" and self.pos + 1 < len(self.text) and self.text[
                self.pos + 1
            ] == "/":
                chars.append("/")
                self.pos += 2
                continue
            if char == "/":
                self.pos += 1
                return "".join(chars)
            chars.append(char)
            self.pos += 1
        raise self.error("unterminated /regex/ literal")

    def index_axis(self) -> ast.Binary:
        if self.try_consume("*"):
            return ast.IndexRange(0, None)
        if self.peek() == ":":
            self.pos += 1
            if self.peek() == "]":
                return ast.IndexRange(0, None)
            return ast.IndexRange(0, self.integer())
        low = self.integer()
        if self.try_consume(":"):
            if self.peek() == "]":
                return ast.IndexRange(low, None)
            high = self.integer()
            if low < 0 or high < low:
                raise self.error(f"invalid index range [{low}:{high}]")
            return ast.IndexRange(low, high)
        return ast.Index(low)


def parse_jnl(text: str) -> ast.Unary:
    """Parse a unary JNL formula from its text form."""
    parser = _Parser(text)
    formula = parser.unary()
    if not parser.at_end():
        raise parser.error("trailing input after formula")
    return formula


def parse_jnl_path(text: str) -> ast.Binary:
    """Parse a binary (path) JNL formula from its text form."""
    parser = _Parser(text)
    path = parser.binary()
    if not parser.at_end():
        raise parser.error("trailing input after path")
    return path


def parse_node_test_text(text: str) -> nt.NodeTest:
    """Parse a node test (the argument syntax of ``test(...)``)."""
    parser = _Parser(text)
    node_test = parser.node_test()
    if not parser.at_end():
        raise parser.error("trailing input after node test")
    return node_test
