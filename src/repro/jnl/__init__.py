"""JSON Navigational Logic (Section 4 of the paper).

* :mod:`repro.jnl.ast` -- the formula AST (deterministic core,
  non-determinism, recursion, flagged extensions);
* :mod:`repro.jnl.builder` -- ergonomic constructors;
* :mod:`repro.jnl.parser` -- a concrete text syntax;
* :mod:`repro.jnl.evaluator` -- reference denotational evaluator;
* :mod:`repro.jnl.efficient` -- the Proposition 1/3 evaluator;
* :mod:`repro.jnl.satisfiability` -- the Proposition 2/5 decision
  procedures.
"""

from repro.jnl.ast import (
    And,
    Atom,
    Binary,
    Compose,
    EqDoc,
    EqPath,
    Eps,
    Exists,
    Index,
    IndexRange,
    Key,
    KeyRegex,
    Not,
    Or,
    Star,
    Test,
    Top,
    Unary,
    Union,
    axis_depth,
    formula_size,
    is_deterministic,
    is_pure,
    is_recursive,
    uses_atoms,
    uses_eqpath,
)
from repro.jnl.efficient import JNLEvaluator, evaluate_unary, satisfies, target_nodes
from repro.jnl.parser import parse_jnl, parse_jnl_path

__all__ = [
    "Unary",
    "Binary",
    "Top",
    "Not",
    "And",
    "Or",
    "Exists",
    "EqDoc",
    "EqPath",
    "Atom",
    "Eps",
    "Test",
    "Key",
    "Index",
    "KeyRegex",
    "IndexRange",
    "Compose",
    "Union",
    "Star",
    "is_deterministic",
    "is_recursive",
    "uses_eqpath",
    "uses_atoms",
    "is_pure",
    "formula_size",
    "axis_depth",
    "JNLEvaluator",
    "evaluate_unary",
    "satisfies",
    "target_nodes",
    "parse_jnl",
    "parse_jnl_path",
]
