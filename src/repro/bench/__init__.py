"""Benchmark harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    SeriesPoint,
    format_table,
    loglog_slope,
    measure,
    run_series,
)

__all__ = ["SeriesPoint", "measure", "run_series", "loglog_slope", "format_table"]
