"""Shared benchmark harness: timing series, slope fits, tables.

Every experiment in ``benchmarks/`` reports a *series* -- runtime
against a size parameter -- and, where the paper states an asymptotic,
the fitted log-log slope (1.0 = linear, 2.0 = quadratic, ...).  The
absolute numbers are machine-dependent; the *shape* is the
reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "SeriesPoint",
    "smoke_mode",
    "measure",
    "measure_amortised",
    "run_series",
    "loglog_slope",
    "format_table",
]


@dataclass
class SeriesPoint:
    x: int
    seconds: float


def smoke_mode() -> bool:
    """Is the suite running in CI smoke mode (``REPRO_BENCH_SMOKE=1``)?

    Smoke mode exists so CI can *execute* every benchmark script end to
    end -- catching import errors, renamed APIs and broken workloads --
    without paying for statistically meaningful timings: repeats drop
    to 1 and series are truncated to their two smallest sizes.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def measure(fn: Callable[[], object], *, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds."""
    if smoke_mode():
        repeat = 1
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_amortised(
    fn: Callable[[], object], *, calls: int = 200, repeat: int = 3
) -> float:
    """Best-of-``repeat`` *per-call* wall time over a loop of ``calls``.

    The amortised figure is what a compiled/cached execution path is
    judged on: one-time costs (parsing, automaton construction) divide
    out across the loop, per-call costs do not.
    """
    if smoke_mode():
        calls, repeat = min(calls, 5), 1
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / calls


def run_series(
    sizes: Iterable[int],
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    *,
    repeat: int = 3,
) -> list[SeriesPoint]:
    """Time ``run`` over inputs of growing size (setup not timed)."""
    sizes = list(sizes)
    if smoke_mode():
        sizes, repeat = sizes[:2], 1
    points: list[SeriesPoint] = []
    for size in sizes:
        prepared = make_input(size)
        seconds = measure(lambda: run(prepared), repeat=repeat)
        points.append(SeriesPoint(size, seconds))
    return points


def loglog_slope(points: Sequence[SeriesPoint]) -> float:
    """Least-squares slope of log(time) against log(size).

    Uses numpy when available, otherwise a closed-form fit.
    """
    xs = [math.log(point.x) for point in points if point.seconds > 0]
    ys = [math.log(point.seconds) for point in points if point.seconds > 0]
    if len(xs) < 2:
        return float("nan")
    try:
        import numpy

        slope, _intercept = numpy.polyfit(xs, ys, 1)
        return float(slope)
    except Exception:  # pragma: no cover - numpy is installed in CI
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return num / den if den else float("nan")


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """An aligned plain-text table (the bench scripts' output format)."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
