"""The one explain report: every front-end, every backend, one shape.

Before this module the repo had three unrelated explain dataclasses --
``repro.query.planner.PlanExplain`` (find), ``repro.mongo.aggregate.
AggregateExplain`` (pipelines) and ``repro.mongo.update.UpdateExplain``
(writes) -- with three CLI print formats and no wire story.
:class:`Explain` is the redesigned surface: one versioned structure
(``format``/``version`` header, nested stage tree, per-table posting
stats, per-shard breakdowns) constructed by every backend, carrying a
:class:`SemanticsExplain` section whenever the schema-aware optimizer
(:mod:`repro.query.optimizer`) examined the query, round-tripping
through :meth:`Explain.to_json`/:meth:`Explain.from_json` over the wire
protocol, and printed by the CLI as one uniform JSON document.

Field population by ``kind``:

* ``"find"`` -- ``dialect``/``source`` plus the pruning counters
  (``total``/``candidates``/``scanned``/``matched``);
* ``"aggregate"`` -- the same counters for the leading ``$match``,
  plus ``results``, the ``stages`` tree, and (under scatter-gather)
  ``shards``/``merge``;
* ``"update"`` -- ``source`` is the filter, ``update_source`` the
  update program, plus the dry-run delta counters
  (``modified``/``entries_added``/``entries_removed``/
  ``refcount_adjusted``/``postings``); a sharded update explain is a
  list of these with ``shard`` set.

The old class names remain importable from their old homes as
:class:`DeprecationWarning` shims (instantiation warns; the instances
are real :class:`Explain` objects, so ``isinstance``/``asdict``/wire
encoding keep working).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EXPLAIN_FORMAT",
    "EXPLAIN_VERSION",
    "Explain",
    "SemanticsExplain",
    "StageExplain",
    "ShardExplain",
    "PlanExplain",
    "AggregateExplain",
    "UpdateExplain",
]

EXPLAIN_FORMAT = "repro-explain"
EXPLAIN_VERSION = 1


@dataclass(frozen=True)
class StageExplain:
    """One pipeline stage in an aggregation explain.

    ``mode`` is ``"index-pruned"``/``"streamed"``/``"materialised"``
    on a single collection; under sharded execution, stages executed on
    the shards report ``"map-side"`` and the boundary stage whose
    partial states the coordinator combines reports ``"merged"``.
    """

    op: str
    mode: str


@dataclass(frozen=True)
class ShardExplain:
    """One shard's share of a scatter-gather aggregation."""

    shard: int
    total: int
    candidates: int | None
    scanned: int
    matched: int
    returned: int

    @property
    def pruned(self) -> int:
        return self.total - self.scanned

    @property
    def used_indexes(self) -> bool:
        return self.candidates is not None


@dataclass(frozen=True)
class SemanticsExplain:
    """What the schema-aware optimizer concluded about one query.

    ``verdict`` is the proof outcome -- ``"empty"`` (schema ^ query
    unsatisfiable), ``"all"`` (schema entails the query), ``"residual"``
    (some conjuncts entailed, the rest still verified) or ``"none"`` --
    and ``mode`` whether it was enforced (``"on"``) or merely reported
    (``"proof-only"``).  ``source`` names the premise: ``"schema"`` for
    an enforced schema, ``"summary"`` for the inferred structural
    summary of a schemaless collection.  ``discharged`` lists the
    predicates whose per-document verification the proof eliminated;
    ``residual`` renders what still runs.  ``timed_out`` flags a prover
    that hit its budget (the query fell through unoptimized), and
    ``cached`` that the verdict came from the process-wide artifact
    cache rather than a fresh proof.
    """

    mode: str
    verdict: str
    source: str | None
    discharged: tuple[str, ...] = ()
    residual: str | None = None
    proof_ms: float = 0.0
    timed_out: bool = False
    cached: bool = False

    @property
    def enforced(self) -> bool:
        return self.mode == "on" and self.verdict != "none"

    def to_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "verdict": self.verdict,
            "source": self.source,
            "discharged": list(self.discharged),
            "residual": self.residual,
            "proof_ms": self.proof_ms,
            "timed_out": self.timed_out,
            "cached": self.cached,
        }

    @staticmethod
    def from_json(document: dict[str, Any]) -> "SemanticsExplain":
        return SemanticsExplain(
            mode=document["mode"],
            verdict=document["verdict"],
            source=document.get("source"),
            discharged=tuple(document.get("discharged", ())),
            residual=document.get("residual"),
            proof_ms=document.get("proof_ms", 0.0),
            timed_out=document.get("timed_out", False),
            cached=document.get("cached", False),
        )


@dataclass(frozen=True)
class Explain:
    """The versioned explain report (see the module docstring)."""

    kind: str
    dialect: str | None = None
    source: str | None = None
    total: int = 0
    candidates: int | None = None
    scanned: int = 0
    matched: int = 0
    results: int | None = None
    modified: int | None = None
    update_source: str | None = None
    entries_added: int = 0
    entries_removed: int = 0
    refcount_adjusted: int = 0
    postings: dict[str, int] = field(default_factory=dict)
    stages: tuple[StageExplain, ...] = ()
    shards: tuple[ShardExplain, ...] = ()
    shard: int | None = None
    merge: str | None = None
    semantics: SemanticsExplain | None = None
    format: str = EXPLAIN_FORMAT
    version: int = EXPLAIN_VERSION

    # ------------------------------------------------------------------
    # Derived views (shared by every kind).
    # ------------------------------------------------------------------

    @property
    def pruned(self) -> int:
        """Documents the secondary indexes (or a semantic ``empty``
        verdict) eliminated before any value-space work.

        Update explains count against ``candidates`` rather than
        ``scanned`` -- a ``first_only`` early exit leaves documents
        unscanned without them being pruned.
        """
        if self.kind == "update":
            if self.candidates is None:
                return 0
            return self.total - self.candidates
        return self.total - self.scanned

    @property
    def used_indexes(self) -> bool:
        return self.candidates is not None

    @property
    def touched_tables(self) -> tuple[str, ...]:
        """The index tables an update delta touches, sorted by name."""
        return tuple(sorted(self.postings))

    # ------------------------------------------------------------------
    # Wire encoding.
    # ------------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """A plain-JSON document, stable under ``format``/``version``."""
        return {
            "format": self.format,
            "version": self.version,
            "kind": self.kind,
            "dialect": self.dialect,
            "source": self.source,
            "total": self.total,
            "candidates": self.candidates,
            "scanned": self.scanned,
            "matched": self.matched,
            "results": self.results,
            "modified": self.modified,
            "update_source": self.update_source,
            "entries_added": self.entries_added,
            "entries_removed": self.entries_removed,
            "refcount_adjusted": self.refcount_adjusted,
            "postings": dict(self.postings),
            "stages": [
                {"op": stage.op, "mode": stage.mode} for stage in self.stages
            ],
            "shards": [
                {
                    "shard": shard.shard,
                    "total": shard.total,
                    "candidates": shard.candidates,
                    "scanned": shard.scanned,
                    "matched": shard.matched,
                    "returned": shard.returned,
                }
                for shard in self.shards
            ],
            "shard": self.shard,
            "merge": self.merge,
            "semantics": (
                None if self.semantics is None else self.semantics.to_json()
            ),
        }

    @staticmethod
    def from_json(document: dict[str, Any]) -> "Explain":
        """Rehydrate a report encoded by :meth:`to_json`."""
        if not isinstance(document, dict):
            raise ValueError(f"an explain document is an object: {document!r}")
        if document.get("format") != EXPLAIN_FORMAT:
            raise ValueError(
                f"not an explain document (format="
                f"{document.get('format')!r}, expected {EXPLAIN_FORMAT!r})"
            )
        if document.get("version") != EXPLAIN_VERSION:
            raise ValueError(
                f"unsupported explain version {document.get('version')!r} "
                f"(this build reads version {EXPLAIN_VERSION})"
            )
        semantics = document.get("semantics")
        return Explain(
            kind=document["kind"],
            dialect=document.get("dialect"),
            source=document.get("source"),
            total=document.get("total", 0),
            candidates=document.get("candidates"),
            scanned=document.get("scanned", 0),
            matched=document.get("matched", 0),
            results=document.get("results"),
            modified=document.get("modified"),
            update_source=document.get("update_source"),
            entries_added=document.get("entries_added", 0),
            entries_removed=document.get("entries_removed", 0),
            refcount_adjusted=document.get("refcount_adjusted", 0),
            postings=dict(document.get("postings", {})),
            stages=tuple(
                StageExplain(op=stage["op"], mode=stage["mode"])
                for stage in document.get("stages", ())
            ),
            shards=tuple(
                ShardExplain(
                    shard=shard["shard"],
                    total=shard["total"],
                    candidates=shard.get("candidates"),
                    scanned=shard["scanned"],
                    matched=shard["matched"],
                    returned=shard["returned"],
                )
                for shard in document.get("shards", ())
            ),
            shard=document.get("shard"),
            merge=document.get("merge"),
            semantics=(
                None if semantics is None
                else SemanticsExplain.from_json(semantics)
            ),
        )


# ---------------------------------------------------------------------------
# Deprecated shims: the three pre-unification explain classes.
#
# Plain (non-dataclass) subclasses so importing them stays silent under
# the warnings-as-errors gate while *instantiating* them warns.  They
# inherit ``__dataclass_fields__``, so ``dataclasses.asdict``, wire
# encoding and ``isinstance(report, Explain)`` all keep working.
# ---------------------------------------------------------------------------


def _shim_warning(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.api.Explain (one versioned "
        "report for find/aggregate/update) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class PlanExplain(Explain):
    """Deprecated spelling of a ``kind="find"`` :class:`Explain`."""

    def __init__(
        self,
        dialect: str,
        source: str,
        total: int,
        candidates: int | None,
        scanned: int,
        matched: int,
    ) -> None:
        _shim_warning("PlanExplain")
        super().__init__(
            kind="find",
            dialect=dialect,
            source=source,
            total=total,
            candidates=candidates,
            scanned=scanned,
            matched=matched,
        )


class AggregateExplain(Explain):
    """Deprecated spelling of a ``kind="aggregate"`` :class:`Explain`."""

    def __init__(
        self,
        dialect: str,
        source: str,
        total: int,
        candidates: int | None,
        scanned: int,
        matched: int,
        results: int,
        stages: tuple[StageExplain, ...],
        shards: tuple[ShardExplain, ...] = (),
        merge: str | None = None,
    ) -> None:
        _shim_warning("AggregateExplain")
        super().__init__(
            kind="aggregate",
            dialect=dialect,
            source=source,
            total=total,
            candidates=candidates,
            scanned=scanned,
            matched=matched,
            results=results,
            stages=tuple(stages),
            shards=tuple(shards),
            merge=merge,
        )


class UpdateExplain(Explain):
    """Deprecated spelling of a ``kind="update"`` :class:`Explain`."""

    def __init__(
        self,
        filter_source: str,
        update_source: str,
        total: int,
        candidates: int | None,
        scanned: int,
        matched: int,
        modified: int,
        entries_added: int,
        entries_removed: int,
        refcount_adjusted: int,
        postings: dict[str, int],
    ) -> None:
        _shim_warning("UpdateExplain")
        super().__init__(
            kind="update",
            source=filter_source,
            update_source=update_source,
            total=total,
            candidates=candidates,
            scanned=scanned,
            matched=matched,
            modified=modified,
            entries_added=entries_added,
            entries_removed=entries_removed,
            refcount_adjusted=refcount_adjusted,
            postings=dict(postings),
        )

    @property
    def filter_source(self) -> str | None:
        """The pre-unification name of :attr:`Explain.source`."""
        return self.source
