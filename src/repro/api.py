"""The one front door: every backend behind ``connect`` and ``collection``.

Before this module the repo had grown one entry point per subsystem --
``repro.store.memory_collection`` and its ``repro.mongo`` twin,
``open_database`` for durable stores, ``sharded_collection`` for the
partitioned ones, ``repro.client.connect`` for a server.  This module
is the redesigned surface: **two constructors** that cover all of them,
returning objects that share one uniform collection protocol
(``find``/``count``/``aggregate``/``select``/``get``/``explain``/
``validate``/``insert_many``/``update_*``/``replace_one``/``remove``/
``compact``), so call sites are written once and retargeted by
configuration::

    import repro.api as repro

    db = repro.connect()                  # volatile, in memory
    db = repro.connect("./mydb")          # durable (WAL + snapshots)
    db = repro.connect("./mydb", shards=4)  # durable and hash-partitioned
    db = repro.connect("tcp://10.0.0.5:4321")  # remote, via repro.client

    people = db.collection("people")
    people.insert_many([{"name": "Sue", "age": 35}])
    people.find({"age": {"$gt": 30}})

    scratch = repro.collection([{"n": 1}])     # one-off volatile collection
    big = repro.collection(docs, shards=4)     # volatile and partitioned

The old spellings keep working behind :class:`DeprecationWarning` shims
(see ``memory_collection``/``open_database``/``sharded_collection``);
new code -- and everything in this repo -- uses this module.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from repro.errors import StoreError
from repro.explain import Explain
from repro.query.optimizer import check_optimize_mode
from repro.store.collection import Collection
from repro.store.database import Database
from repro.store.engine import MemoryEngine
from repro.store.faults import IOAdapter
from repro.store.sharded import ShardedCollection

__all__ = ["connect", "collection", "Explain", "ShardedDatabase"]


def connect(
    path: "str | os.PathLike | None" = None,
    *,
    shards: int = 1,
    io: IOAdapter | None = None,
    sync: str = "fsync",
    compact_threshold: int | None = None,
    parallel: "bool | str" = "auto",
    start_method: str | None = None,
    optimize: str = "on",
):
    """Open a database handle over any backend.

    * ``connect()`` -- volatile in-memory collections;
    * ``connect(path)`` -- durable collections under ``path`` (WAL +
      snapshots, recovered on reopen);
    * ``connect(path, shards=N)`` -- hash-partitioned collections, one
      shard directory per name under ``path`` (``path=None`` keeps the
      shards in memory); ``parallel``/``start_method`` configure the
      worker pool as in :class:`~repro.store.sharded.ShardedCollection`;
    * ``connect("tcp://host:port")`` -- a client to a ``repro serve``
      process (see :mod:`repro.client`); the remote database accepts no
      local storage keywords.

    ``io`` swaps the filesystem adapter on durable backends (fault
    injection; see :mod:`repro.store.faults`).  ``optimize`` sets the
    database-wide semantic-optimizer mode (``"on"``/``"off"``/
    ``"proof-only"``; remote connections accept ``on``/``off`` only).
    Every return value is a context manager whose collections share
    the uniform protocol.
    """
    check_optimize_mode(optimize)
    if isinstance(path, str) and path.startswith("tcp://"):
        if shards != 1 or io is not None:
            raise StoreError(
                "a remote connection takes no shards/io keywords; "
                "configure the server process instead"
            )
        from repro.client import connect as client_connect

        return client_connect(path, optimize=optimize)
    if shards < 1:
        raise StoreError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return Database(
            path,
            sync=sync,
            compact_threshold=compact_threshold,
            io=io,
            optimize=optimize,
        )
    if io is not None:
        raise StoreError(
            "fault injection (io=) is not plumbed through sharded "
            "engines; use shards=1 or inject per shard"
        )
    return ShardedDatabase(
        path,
        shards=shards,
        sync=sync,
        parallel=parallel,
        start_method=start_method,
        optimize=optimize,
    )


def collection(
    documents: Iterable[Any] = (),
    *,
    shards: int = 1,
    schema: Any | None = None,
    validator: Any | None = None,
    extended: bool = False,
    indexed: bool = True,
    parallel: "bool | str" = "auto",
    optimize: str = "on",
) -> "Collection | ShardedCollection":
    """A one-off volatile collection (tests, benchmarks, scripts).

    The blessed spelling of what ``memory_collection`` (and, with
    ``shards=N``, ``sharded_collection``) used to be.  Anything that
    should survive a restart belongs behind :func:`connect` with a
    path.  ``optimize`` sets the semantic-optimizer mode; per query,
    ``hint={"no_semantic": True}`` opts a single read out.
    """
    if shards < 1:
        raise StoreError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return Collection(
            documents,
            schema=schema,
            validator=validator,
            extended=extended,
            indexed=indexed,
            engine=MemoryEngine(),
            optimize=optimize,
        )
    if validator is not None:
        raise StoreError(
            "sharded collections compile their own validators; pass "
            "schema= instead of validator="
        )
    return ShardedCollection(
        documents,
        shards=shards,
        schema=schema,
        extended=extended,
        indexed=indexed,
        parallel=parallel,
        optimize=optimize,
    )


class ShardedDatabase:
    """Named hash-partitioned collections under one root.

    The sharded twin of :class:`~repro.store.database.Database`: each
    named collection is a :class:`~repro.store.sharded.ShardedCollection`
    whose shard files live in ``<path>/<name>/`` (memory shards when
    ``path`` is ``None``).  Handles are cached per name and
    configuration keywords are honoured only at first creation, exactly
    as in the unsharded database.
    """

    def __init__(
        self,
        path: "str | os.PathLike | None" = None,
        *,
        shards: int,
        sync: str = "fsync",
        parallel: "bool | str" = "auto",
        start_method: str | None = None,
        optimize: str = "on",
    ) -> None:
        self._path = None if path is None else os.fspath(path)
        self._shards = shards
        self._sync = sync
        self._parallel = parallel
        self._start_method = start_method
        self._optimize = check_optimize_mode(optimize)
        self._collections: dict[str, ShardedCollection] = {}
        if self._path is not None:
            os.makedirs(self._path, exist_ok=True)

    def collection(
        self,
        name: str = "main",
        *,
        documents: Iterable[Any] = (),
        schema: Any | None = None,
        extended: bool = False,
        indexed: bool = True,
        optimize: str | None = None,
    ) -> ShardedCollection:
        existing = self._collections.get(name)
        if existing is not None:
            if schema is not None:
                raise StoreError(
                    f"collection {name!r} is already open; schema can only "
                    "be set when the handle is first created"
                )
            documents = list(documents)
            if documents:
                existing.insert_many(documents)
            return existing
        shard_path = (
            None if self._path is None else os.path.join(self._path, name)
        )
        handle = ShardedCollection(
            documents,
            shards=self._shards,
            path=shard_path,
            schema=schema,
            extended=extended,
            indexed=indexed,
            sync=self._sync,
            parallel=self._parallel,
            start_method=self._start_method,
            optimize=self._optimize if optimize is None else optimize,
        )
        self._collections[name] = handle
        return handle

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def durable(self) -> bool:
        return self._path is not None

    @property
    def shards(self) -> int:
        return self._shards

    def collection_names(self) -> list[str]:
        """Open handles plus shard directories found on disk, sorted."""
        names = set(self._collections)
        if self._path is not None and os.path.isdir(self._path):
            for entry in os.listdir(self._path):
                if os.path.isdir(os.path.join(self._path, entry)):
                    names.add(entry)
        return sorted(names)

    def health(self):
        """Per-collection, per-shard engine health for open handles."""
        return {
            name: handle.health
            for name, handle in sorted(self._collections.items())
        }

    def compact(self, name: str | None = None) -> dict[str, list]:
        targets = [name] if name is not None else self.collection_names()
        return {target: self.collection(target).compact() for target in targets}

    def close(self) -> None:
        for handle in self._collections.values():
            handle.close()
        self._collections.clear()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        where = "memory" if self._path is None else self._path
        return (
            f"ShardedDatabase({where!r}, {self._shards} shards, "
            f"{len(self._collections)} open)"
        )
