"""Theorem 2, hard direction: JNL --> JSL (worst-case exponential).

The appendix proof threads a "top symbol" through binary formulas; the
equivalent and slightly cleaner implementation here is a translation
with an explicit *continuation*: ``T(alpha, k)`` is a JSL formula
meaning "some alpha-path ends at a node satisfying k".

    T(eps, k)        = k
    T(<phi>, k)      = U(phi) ^ k
    T(X_e, k)        = DIA_e k
    T(X_{i:j}, k)    = DIA_{i:j} k
    T(a o b, k)      = T(a, T(b, k))
    T(a u b, k)      = T(a, k) v T(b, k)

Compositions under tests duplicate continuations, which is where the
theorem's exponential blow-up comes from (measured in the T2 bench).

**Recursion (extension).**  Theorem 2 is about the non-recursive
logics, but the same scheme extends to the Kleene star by emitting a
fresh *recursive JSL definition* -- on trees, a star iteration either
moves strictly downward or stays put, and stationary iterations can
simply be skipped, so:

    T(a*, k)  =  gamma   with   gamma := k  v  M(a, gamma)

where ``M(a, c)`` ("move") captures the alpha-passes making at least
one downward step:

    M(X_e, c)     = DIA_e c            M(eps, c) = M(<phi>, c) = false
    M(a o b, c)   = M(a, T(b, c))  v  (S(a) ^ M(b, c))
    M(a u b, c)   = M(a, c) v M(b, c)
    M(a*, c)      = M(a, T(a*, c))

and ``S(a)`` is the stationary condition of one alpha-pass
(``S(<phi>) = U(phi)``, ``S(eps) = S(a*) = T``, composition is
conjunction, axes are false).  Every occurrence of ``gamma`` produced
by ``M`` sits under a DIA, so the generated definitions are guarded and
the result is well-formed recursive JSL.  This route powers the
Proposition 5 satisfiability procedure (recursive JNL -> recursive JSL
-> Proposition 10 engine), exactly as the paper's proof suggests
("introducing definitions ... we can eliminate this blowup").
"""

from __future__ import annotations

from repro.errors import UnsupportedFragmentError
from repro.jnl import ast as jnl
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt

__all__ = ["jnl_to_jsl", "JNLToJSL"]


class JNLToJSL:
    """Stateful translator accumulating star definitions."""

    def __init__(self) -> None:
        self.definitions: list[tuple[str, jsl.Formula]] = []
        self._star_memo: dict[tuple[jnl.Binary, jsl.Formula], jsl.Ref] = {}
        self._counter = 0

    # -- public -------------------------------------------------------------

    def translate(self, formula: jnl.Unary) -> jsl.Formula | jsl.RecursiveJSL:
        base = self.unary(formula)
        if not self.definitions:
            return base
        return jsl.RecursiveJSL(tuple(self.definitions), base)

    # -- U(phi): unary JNL -> JSL --------------------------------------------

    def unary(self, formula: jnl.Unary) -> jsl.Formula:
        if isinstance(formula, jnl.Top):
            return jsl.Top()
        if isinstance(formula, jnl.Not):
            return jsl.Not(self.unary(formula.operand))
        if isinstance(formula, jnl.And):
            return jsl.And(self.unary(formula.left), self.unary(formula.right))
        if isinstance(formula, jnl.Or):
            return jsl.Or(self.unary(formula.left), self.unary(formula.right))
        if isinstance(formula, jnl.Exists):
            return self.path(formula.path, jsl.Top())
        if isinstance(formula, jnl.EqDoc):
            return self.path(
                formula.path, jsl.TestAtom(nt.EqDocTest(formula.doc))
            )
        if isinstance(formula, jnl.EqPath):
            raise UnsupportedFragmentError(
                "Theorem 2 excludes EQ(alpha, beta): JSL cannot express it "
                "(Section 5.2)"
            )
        if isinstance(formula, jnl.Atom):
            return jsl.TestAtom(formula.test)
        raise TypeError(f"unknown unary formula {formula!r}")

    # -- T(alpha, k) ----------------------------------------------------------

    def path(self, path: jnl.Binary, continuation: jsl.Formula) -> jsl.Formula:
        if isinstance(path, jnl.Eps):
            return continuation
        if isinstance(path, jnl.Test):
            return jsl.And(self.unary(path.condition), continuation)
        if isinstance(path, jnl.Key):
            from repro.automata.keylang import KeyLang

            return jsl.DiaKey(KeyLang.word(path.word), continuation)
        if isinstance(path, jnl.KeyRegex):
            return jsl.DiaKey(path.lang, continuation)
        if isinstance(path, jnl.Index):
            if path.position < 0:
                raise UnsupportedFragmentError(
                    "JSL index modalities cannot address positions from "
                    "the end of an array"
                )
            return jsl.DiaIdx(path.position, path.position, continuation)
        if isinstance(path, jnl.IndexRange):
            return jsl.DiaIdx(path.low, path.high, continuation)
        if isinstance(path, jnl.Compose):
            return self.path(path.left, self.path(path.right, continuation))
        if isinstance(path, jnl.Union):
            return jsl.Or(
                self.path(path.left, continuation),
                self.path(path.right, continuation),
            )
        if isinstance(path, jnl.Star):
            return self._star(path, continuation)
        raise TypeError(f"unknown binary formula {path!r}")

    def _star(self, path: jnl.Star, continuation: jsl.Formula) -> jsl.Formula:
        memo_key = (path, continuation)
        cached = self._star_memo.get(memo_key)
        if cached is not None:
            return cached
        name = f"star_{self._counter}"
        self._counter += 1
        ref = jsl.Ref(name)
        self._star_memo[memo_key] = ref
        # gamma := k v M(inner, gamma); register the name first so the
        # recursive occurrence inside M resolves to the same symbol.
        body = jsl.Or(continuation, self.moving(path.inner, ref))
        self.definitions.append((name, body))
        return ref

    # -- M(alpha, c): at least one downward move -------------------------------

    def moving(self, path: jnl.Binary, continuation: jsl.Formula) -> jsl.Formula:
        if isinstance(path, (jnl.Eps, jnl.Test)):
            return jsl.bottom()
        if isinstance(path, (jnl.Key, jnl.KeyRegex, jnl.Index, jnl.IndexRange)):
            return self.path(path, continuation)
        if isinstance(path, jnl.Compose):
            left_moves = self.moving(
                path.left, self.path(path.right, continuation)
            )
            left_stays = self.stationary(path.left)
            right_moves = self.moving(path.right, continuation)
            return jsl.Or(left_moves, jsl.And(left_stays, right_moves))
        if isinstance(path, jnl.Union):
            return jsl.Or(
                self.moving(path.left, continuation),
                self.moving(path.right, continuation),
            )
        if isinstance(path, jnl.Star):
            return self.moving(path.inner, self._star(path, continuation))
        raise TypeError(f"unknown binary formula {path!r}")

    # -- S(alpha): one alpha-pass may stay at the node --------------------------

    def stationary(self, path: jnl.Binary) -> jsl.Formula:
        if isinstance(path, jnl.Eps):
            return jsl.Top()
        if isinstance(path, jnl.Test):
            return self.unary(path.condition)
        if isinstance(path, (jnl.Key, jnl.KeyRegex, jnl.Index, jnl.IndexRange)):
            return jsl.bottom()
        if isinstance(path, jnl.Compose):
            return jsl.And(
                self.stationary(path.left), self.stationary(path.right)
            )
        if isinstance(path, jnl.Union):
            return jsl.Or(
                self.stationary(path.left), self.stationary(path.right)
            )
        if isinstance(path, jnl.Star):
            return jsl.Top()  # zero iterations
        raise TypeError(f"unknown binary formula {path!r}")


def jnl_to_jsl(formula: jnl.Unary) -> jsl.Formula | jsl.RecursiveJSL:
    """Translate unary JNL (without ``EQ(alpha, beta)``) into JSL.

    Star-free input yields a plain formula; Kleene stars yield a
    well-formed recursive JSL expression (see the module docstring).
    """
    return JNLToJSL().translate(formula)
