"""Theorem-2 translations between JNL and JSL."""

from repro.translate.jnl_to_jsl import JNLToJSL, jnl_to_jsl
from repro.translate.jsl_to_jnl import jsl_to_jnl

__all__ = ["jnl_to_jsl", "JNLToJSL", "jsl_to_jnl"]
