"""Theorem 2, easy direction: JSL --> JNL (polynomial time).

The appendix construction: ``DIA_e phi`` becomes ``[X_e <phi'>]``,
``BOX`` is the dual, ``~(A)`` becomes ``EQ(eps, A)``, booleans map to
booleans.  The theorem statement restricts JSL to the ``~(A)`` node
test; with ``strict=True`` this module enforces that restriction, and
by default it carries the other node tests across through the
:class:`~repro.jnl.ast.Atom` extension (Theorem 2's point is exactly
that only the atomic predicates differ).
"""

from __future__ import annotations

from repro.errors import UnsupportedFragmentError
from repro.jnl import ast as jnl
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt

__all__ = ["jsl_to_jnl"]


def jsl_to_jnl(formula: jsl.Formula, *, strict: bool = False) -> jnl.Unary:
    """Translate a (non-recursive) JSL formula into unary JNL.

    ``strict=True`` allows only the ``~(A)`` node test, matching the
    exact statement of Theorem 2; otherwise NodeTests are carried
    across as :class:`~repro.jnl.ast.Atom` atoms.
    """
    if isinstance(formula, jsl.Top):
        return jnl.Top()
    if isinstance(formula, jsl.Not):
        return jnl.Not(jsl_to_jnl(formula.operand, strict=strict))
    if isinstance(formula, jsl.And):
        return jnl.And(
            jsl_to_jnl(formula.left, strict=strict),
            jsl_to_jnl(formula.right, strict=strict),
        )
    if isinstance(formula, jsl.Or):
        return jnl.Or(
            jsl_to_jnl(formula.left, strict=strict),
            jsl_to_jnl(formula.right, strict=strict),
        )
    if isinstance(formula, jsl.TestAtom):
        if isinstance(formula.test, nt.EqDocTest):
            return jnl.EqDoc(jnl.Eps(), formula.test.doc)
        if strict:
            raise UnsupportedFragmentError(
                f"Theorem 2 admits only the ~(A) node test, found "
                f"{formula.test.describe()}"
            )
        return jnl.Atom(formula.test)
    if isinstance(formula, jsl.DiaKey):
        body = jsl_to_jnl(formula.body, strict=strict)
        return jnl.Exists(jnl.Compose(jnl.KeyRegex(formula.lang), jnl.Test(body)))
    if isinstance(formula, jsl.DiaIdx):
        body = jsl_to_jnl(formula.body, strict=strict)
        return jnl.Exists(
            jnl.Compose(
                jnl.IndexRange(formula.low, formula.high), jnl.Test(body)
            )
        )
    if isinstance(formula, jsl.BoxKey):
        # BOX_e phi  =  not DIA_e not phi.
        negated = jsl_to_jnl(jsl.Not(formula.body), strict=strict)
        return jnl.Not(
            jnl.Exists(jnl.Compose(jnl.KeyRegex(formula.lang), jnl.Test(negated)))
        )
    if isinstance(formula, jsl.BoxIdx):
        negated = jsl_to_jnl(jsl.Not(formula.body), strict=strict)
        return jnl.Not(
            jnl.Exists(
                jnl.Compose(
                    jnl.IndexRange(formula.low, formula.high), jnl.Test(negated)
                )
            )
        )
    if isinstance(formula, jsl.Ref):
        raise UnsupportedFragmentError(
            "Theorem 2 relates the non-recursive logics; recursive JSL "
            "definitions have no JNL counterpart (Section 5.3)"
        )
    raise TypeError(f"unknown JSL formula {formula!r}")
