"""Proposition 7's PSPACE-hardness reduction: QBF (3CNF) --> JSL sat.

Models of the produced formula are assignment trees: the node for
variable ``i`` has a ``T``-child and/or an ``F``-child, exactly one for
an existential variable and both for a universal one; below each choice
sits the node for variable ``i+1``.  A root-to-leaf path therefore
spells out one assignment, existential choices may depend on the
universal branches above them, and a clause constraint forbids paths
whose choices falsify the clause -- precisely QBF semantics.

(The paper's construction interleaves ``X``-labelled levels because it
quantifies with ``Sigma*`` boxes; using the explicit key language
``T|F`` makes the padding unnecessary, see DESIGN.md.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.keylang import KeyLang
from repro.jsl import ast as jsl

__all__ = ["QBF", "random_qbf", "brute_force_qbf", "qbf_to_jsl"]

_TF = KeyLang.regex("T|F")


@dataclass(frozen=True)
class QBF:
    """A prenex QBF over a 3CNF matrix.

    ``quantifiers[i]`` is ``'e'`` or ``'a'`` for variable ``i+1``;
    clauses use DIMACS literals as in :class:`~repro.reductions.sat3.CNF3`.
    """

    quantifiers: tuple[str, ...]
    clauses: tuple[tuple[int, int, int], ...]

    @property
    def num_vars(self) -> int:
        return len(self.quantifiers)


def random_qbf(num_vars: int, num_clauses: int, seed: int = 0) -> QBF:
    rng = random.Random(seed)
    quantifiers = tuple(rng.choice("ea") for _ in range(num_vars))
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
        while len(variables) < 3:
            variables.append(variables[-1])
        clauses.append(
            tuple(var if rng.random() < 0.5 else -var for var in variables)
        )
    return QBF(quantifiers, tuple(clauses))


def brute_force_qbf(qbf: QBF) -> bool:
    """Exhaustive quantifier expansion; the differential baseline."""

    def evaluate(index: int, assignment: dict[int, bool]) -> bool:
        if index > qbf.num_vars:
            return all(
                any(
                    assignment[abs(literal)] == (literal > 0)
                    for literal in clause
                )
                for clause in qbf.clauses
            )
        results = (
            evaluate(index + 1, {**assignment, index: value})
            for value in (False, True)
        )
        if qbf.quantifiers[index - 1] == "e":
            return any(results)
        return all(results)

    return evaluate(1, {})


def qbf_to_jsl(qbf: QBF) -> jsl.Formula:
    """The Proposition 7 reduction: satisfiable iff the QBF is true."""
    lang_t = KeyLang.word("T")
    lang_f = KeyLang.word("F")

    def tree_shape(index: int) -> jsl.Formula:
        """Structure below (and including) the node of variable ``index``."""
        if index > qbf.num_vars:
            return jsl.Top()
        below = tree_shape(index + 1)
        dia_t = jsl.DiaKey(lang_t, jsl.Top())
        dia_f = jsl.DiaKey(lang_f, jsl.Top())
        if qbf.quantifiers[index - 1] == "e":
            choice: jsl.Formula = jsl.Or(
                jsl.And(dia_t, jsl.Not(dia_f)),
                jsl.And(jsl.Not(dia_t), dia_f),
            )
        else:
            choice = jsl.And(dia_t, dia_f)
        return jsl.conj([choice, jsl.BoxKey(_TF, below)])

    def clause_violation(clause: tuple[int, int, int]) -> jsl.Formula:
        """DIA-path hitting the falsifying branch of every literal."""
        # Falsifying value: F for a positive literal, T for a negative one.
        by_var: dict[int, str] = {}
        for literal in clause:
            value = "F" if literal > 0 else "T"
            if by_var.setdefault(abs(literal), value) != value:
                # The clause contains x and not-x: a tautology that no
                # assignment falsifies.
                return jsl.bottom()
        formula: jsl.Formula = jsl.Top()
        for index in range(qbf.num_vars, 0, -1):
            value = by_var.get(index)
            if value is None:
                formula = jsl.DiaKey(_TF, formula)
            else:
                formula = jsl.DiaKey(KeyLang.word(value), formula)
        return formula

    parts: list[jsl.Formula] = [tree_shape(1)]
    for clause in qbf.clauses:
        parts.append(jsl.Not(clause_violation(clause)))
    return jsl.conj(parts)
