"""Proposition 2's NP-hardness reduction: 3SAT --> JNL satisfiability.

The proof encodes a truth assignment in the *types* of the values
under the variable keys: a variable ``p`` is true when the value under
key ``p`` is an array (it has a child at index 0) and false when it is
an object (it has a child under a fresh key ``w``).  The two cases are
mutually exclusive because array edges carry numbers and object edges
carry strings, and keys are unique -- the determinism the paper
emphasises.  The resulting formula uses neither negation nor equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.jnl import ast as jnl
from repro.model.tree import JSONTree

__all__ = [
    "CNF3",
    "random_3cnf",
    "brute_force_sat",
    "cnf_to_jnl",
    "assignment_from_witness",
    "evaluate_cnf",
]

FRESH_KEY = "__w"


@dataclass(frozen=True)
class CNF3:
    """A 3CNF formula: clauses of three non-zero DIMACS-style literals.

    Literal ``+i`` is variable ``i`` (1-based), ``-i`` its negation.
    """

    num_vars: int
    clauses: tuple[tuple[int, int, int], ...]

    def var_name(self, variable: int) -> str:
        return f"p{variable}"


def random_3cnf(num_vars: int, num_clauses: int, seed: int = 0) -> CNF3:
    """A uniformly random 3CNF instance (distinct variables per clause)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
        while len(variables) < 3:
            variables.append(variables[-1])
        clause = tuple(
            var if rng.random() < 0.5 else -var for var in variables
        )
        clauses.append(clause)
    return CNF3(num_vars, tuple(clauses))


def evaluate_cnf(cnf: CNF3, assignment: dict[int, bool]) -> bool:
    return all(
        any(
            assignment[abs(literal)] == (literal > 0)
            for literal in clause
        )
        for clause in cnf.clauses
    )


def brute_force_sat(cnf: CNF3) -> dict[int, bool] | None:
    """Exhaustive 2^n search; the differential baseline for Prop 2."""
    variables = list(range(1, cnf.num_vars + 1))
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if evaluate_cnf(cnf, assignment):
            return assignment
    return None


def _truthy(var_key: str) -> jnl.Unary:
    """``[X_p o <[X_0]>]``: the value under ``p`` is a non-empty array."""
    return jnl.Exists(
        jnl.Compose(jnl.Key(var_key), jnl.Test(jnl.Exists(jnl.Index(0))))
    )


def _falsy(var_key: str) -> jnl.Unary:
    """``[X_p o <[X_w]>]``: the value under ``p`` is an object with ``w``."""
    return jnl.Exists(
        jnl.Compose(jnl.Key(var_key), jnl.Test(jnl.Exists(jnl.Key(FRESH_KEY))))
    )


def cnf_to_jnl(cnf: CNF3) -> jnl.Unary:
    """The Proposition 2 reduction (negation- and equality-free)."""
    parts: list[jnl.Unary] = []
    for variable in range(1, cnf.num_vars + 1):
        key = cnf.var_name(variable)
        parts.append(jnl.Or(_truthy(key), _falsy(key)))
    for clause in cnf.clauses:
        literals: list[jnl.Unary] = []
        for literal in clause:
            key = cnf.var_name(abs(literal))
            literals.append(_truthy(key) if literal > 0 else _falsy(key))
        clause_formula = literals[0]
        for extra in literals[1:]:
            clause_formula = jnl.Or(clause_formula, extra)
        parts.append(clause_formula)
    formula = parts[0]
    for part in parts[1:]:
        formula = jnl.And(formula, part)
    return formula


def assignment_from_witness(cnf: CNF3, witness: JSONTree) -> dict[int, bool]:
    """Decode a satisfying assignment from a model of the JNL formula."""
    assignment: dict[int, bool] = {}
    for variable in range(1, cnf.num_vars + 1):
        child = witness.object_child(witness.root, cnf.var_name(variable))
        assignment[variable] = child is not None and witness.is_array(child)
    return assignment


def assignment_to_document(cnf: CNF3, assignment: dict[int, bool]) -> JSONTree:
    """The canonical model encoding an assignment (for round-trip tests)."""
    value = {
        cnf.var_name(variable): [0] if assignment[variable] else {FRESH_KEY: 0}
        for variable in range(1, cnf.num_vars + 1)
    }
    return JSONTree.from_value(value)
