"""Executable hardness reductions from the paper's lower-bound proofs.

* :mod:`repro.reductions.sat3` -- 3SAT to JNL satisfiability (Prop. 2);
* :mod:`repro.reductions.qbf` -- QBF to JSL satisfiability (Prop. 7);
* :mod:`repro.reductions.circuits` -- circuit value to recursive JSL
  evaluation (Prop. 9);
* :mod:`repro.reductions.counter_machines` -- two-counter machines to
  recursive JNL with EQ(alpha, beta) (Prop. 4, undecidability).
"""

from repro.reductions.circuits import (
    Circuit,
    circuit_to_jsl,
    evaluate_circuit,
    random_circuit,
)
from repro.reductions.counter_machines import (
    TwoCounterMachine,
    encode_run,
    machine_to_jnl,
    run_machine,
)
from repro.reductions.qbf import QBF, brute_force_qbf, qbf_to_jsl, random_qbf
from repro.reductions.sat3 import (
    CNF3,
    assignment_from_witness,
    brute_force_sat,
    cnf_to_jnl,
    random_3cnf,
)

__all__ = [
    "CNF3",
    "random_3cnf",
    "brute_force_sat",
    "cnf_to_jnl",
    "assignment_from_witness",
    "QBF",
    "random_qbf",
    "brute_force_qbf",
    "qbf_to_jsl",
    "Circuit",
    "random_circuit",
    "evaluate_circuit",
    "circuit_to_jsl",
    "TwoCounterMachine",
    "run_machine",
    "encode_run",
    "machine_to_jnl",
]
