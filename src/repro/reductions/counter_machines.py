"""Proposition 4's undecidability encoding: two-counter machines in JNL.

The proof reduces halting of a two-counter (Minsky) machine to the
satisfiability of a recursive, non-deterministic JNL formula with
``EQ(alpha, beta)``.  A halting run is encoded as a linked list of
configuration objects::

    {"state": "q0", "c1": "0", "c2": "0",
     "next": {"state": ..., "c1": {"a": "0"}, ...}}

where a counter value ``n`` is the ``a``-chain of depth ``n`` ending in
the string ``"0"``.  Transitions are checked with subtree equalities:
incrementing counter 1 is ``EQ(X_next o X_c1 o X_a, X_c1)`` -- the next
configuration's counter, stripped of one level, equals the current one.

Satisfiability for this fragment is undecidable, so
:func:`repro.jnl.satisfiability.jnl_satisfiable` refuses such formulas;
what *is* executable -- and what the tests and the E4 bench exercise --
is the two halves of the reduction's correctness on concrete machines:
a halting run's encoding satisfies the formula, and corrupted runs or
non-halting prefixes do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jnl import ast as jnl
from repro.jnl import builder as q
from repro.model.tree import JSONTree, JSONValue

__all__ = [
    "TwoCounterMachine",
    "run_machine",
    "encode_run",
    "machine_to_jnl",
    "Instruction",
]

# ("inc", counter, next_state)
# ("dec", counter, next_state)
# ("jz", counter, state_if_zero, state_if_positive)
# ("halt",)
Instruction = tuple


@dataclass(frozen=True)
class TwoCounterMachine:
    """A deterministic two-counter machine.

    ``program`` maps a state name to its instruction; execution starts
    in ``initial`` with both counters zero and halts on reaching
    ``final``.
    """

    program: dict[str, Instruction]
    initial: str
    final: str


Config = tuple[str, int, int]


def run_machine(
    machine: TwoCounterMachine, max_steps: int = 10_000
) -> list[Config] | None:
    """The run as a list of configurations, or ``None`` if no halt."""
    state, c1, c2 = machine.initial, 0, 0
    trace: list[Config] = [(state, c1, c2)]
    for _ in range(max_steps):
        if state == machine.final:
            return trace
        instruction = machine.program[state]
        kind = instruction[0]
        if kind == "inc":
            if instruction[1] == 1:
                c1 += 1
            else:
                c2 += 1
            state = instruction[2]
        elif kind == "dec":
            if instruction[1] == 1:
                c1 = max(0, c1 - 1)
            else:
                c2 = max(0, c2 - 1)
            state = instruction[2]
        elif kind == "jz":
            counter = c1 if instruction[1] == 1 else c2
            state = instruction[2] if counter == 0 else instruction[3]
        else:
            return None
        trace.append((state, c1, c2))
    return None


def _counter_value(value: int) -> JSONValue:
    encoded: JSONValue = "0"
    for _ in range(value):
        encoded = {"a": encoded}
    return encoded


def encode_run(trace: list[Config]) -> JSONTree:
    """The proof's linked-list encoding of a run."""
    document: JSONValue | None = None
    for state, c1, c2 in reversed(trace):
        config: dict[str, JSONValue] = {
            "state": state,
            "c1": _counter_value(c1),
            "c2": _counter_value(c2),
        }
        if document is not None:
            config["next"] = document
        document = config
    assert document is not None
    return JSONTree.from_value(document)


def _eq_state(name: str) -> jnl.Unary:
    return q.eq_doc(q.key("state"), name)


def _eq_next_state(name: str) -> jnl.Unary:
    return q.eq_doc(q.compose(q.key("next"), q.key("state")), name)


def _counter_key(counter: int) -> str:
    return "c1" if counter == 1 else "c2"


def _unchanged(counter: int) -> jnl.Unary:
    key = _counter_key(counter)
    return q.eq_path(q.key(key), q.compose(q.key("next"), q.key(key)))


def machine_to_jnl(machine: TwoCounterMachine) -> jnl.Unary:
    """The Proposition 4 formula: satisfied by encodings of halting runs.

    The formula is ``[Q_init o (Q_trans o X_next)* o <final>]`` with the
    transition disjunction of the proof.  It combines recursion,
    non-trivial tests and ``EQ(alpha, beta)``, so
    :func:`repro.jnl.satisfiability.jnl_satisfiable` rejects it -- by
    design (Proposition 4).
    """
    transitions: list[jnl.Unary] = []
    for state, instruction in machine.program.items():
        kind = instruction[0]
        if kind == "inc":
            counter, target = instruction[1], instruction[2]
            other = 2 if counter == 1 else 1
            key = _counter_key(counter)
            condition = q.conj(
                [
                    _eq_state(state),
                    _eq_next_state(target),
                    # next counter, stripped of one "a", equals current.
                    q.eq_path(
                        q.key(key),
                        q.compose(q.key("next"), q.key(key), q.key("a")),
                    ),
                    _unchanged(other),
                ]
            )
        elif kind == "dec":
            counter, target = instruction[1], instruction[2]
            other = 2 if counter == 1 else 1
            key = _counter_key(counter)
            decremented = q.eq_path(
                q.compose(q.key(key), q.key("a")),
                q.compose(q.key("next"), q.key(key)),
            )
            # dec on zero stays zero.
            stays_zero = q.conj(
                [q.eq_doc(q.key(key), "0"), q.eq_doc(
                    q.compose(q.key("next"), q.key(key)), "0"
                )]
            )
            condition = q.conj(
                [
                    _eq_state(state),
                    _eq_next_state(target),
                    q.disj([decremented, stays_zero]),
                    _unchanged(other),
                ]
            )
        elif kind == "jz":
            counter = instruction[1]
            zero_target, pos_target = instruction[2], instruction[3]
            key = _counter_key(counter)
            zero_case = q.conj(
                [q.eq_doc(q.key(key), "0"), _eq_next_state(zero_target)]
            )
            positive_case = q.conj(
                [
                    q.has(q.compose(q.key(key), q.key("a"))),
                    _eq_next_state(pos_target),
                ]
            )
            condition = q.conj(
                [
                    _eq_state(state),
                    q.disj([zero_case, positive_case]),
                    _unchanged(1),
                    _unchanged(2),
                ]
            )
        else:  # halt: no outgoing transition
            continue
        transitions.append(condition)

    initial = q.conj(
        [
            _eq_state(machine.initial),
            q.eq_doc(q.key("c1"), "0"),
            q.eq_doc(q.key("c2"), "0"),
        ]
    )
    step = q.compose(q.test(q.disj(transitions)), q.key("next"))
    final = q.test(_eq_state(machine.final))
    return q.has(q.compose(q.test(initial), q.star(step), final))
