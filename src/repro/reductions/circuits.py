"""Proposition 9's PTIME-hardness reduction: circuit value --> recursive
JSL evaluation.

A boolean circuit with inputs ``IN1..INn`` becomes a recursive JSL
expression with one definition per gate; an assignment becomes the flat
JSON object ``{"IN1": "T", "IN2": "F", ...}``.  Gate definitions
reference each other *outside* any modal operator -- the precedence
graph is exactly the circuit's wiring DAG, so acyclicity of the circuit
is precisely the well-formedness condition of Section 5.3, which makes
this reduction a nice stress test of the unguarded-recursion machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.keylang import KeyLang
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree

__all__ = [
    "Circuit",
    "Gate",
    "random_circuit",
    "evaluate_circuit",
    "circuit_to_jsl",
    "assignment_to_document",
]

Gate = tuple  # ("in", i) | ("and", a, b) | ("or", a, b) | ("not", a)


@dataclass(frozen=True)
class Circuit:
    """Gates in topological order; the last gate is the output."""

    num_inputs: int
    gates: tuple[Gate, ...]

    def gate_name(self, index: int) -> str:
        return f"g{index}"


def random_circuit(num_inputs: int, num_gates: int, seed: int = 0) -> Circuit:
    rng = random.Random(seed)
    gates: list[Gate] = [("in", i + 1) for i in range(num_inputs)]
    while len(gates) < num_inputs + num_gates:
        kind = rng.choice(("and", "or", "not"))
        if kind == "not":
            gates.append(("not", rng.randrange(len(gates))))
        else:
            gates.append(
                (kind, rng.randrange(len(gates)), rng.randrange(len(gates)))
            )
    return Circuit(num_inputs, tuple(gates))


def evaluate_circuit(circuit: Circuit, inputs: dict[int, bool]) -> bool:
    values: list[bool] = []
    for gate in circuit.gates:
        if gate[0] == "in":
            values.append(inputs[gate[1]])
        elif gate[0] == "and":
            values.append(values[gate[1]] and values[gate[2]])
        elif gate[0] == "or":
            values.append(values[gate[1]] or values[gate[2]])
        else:
            values.append(not values[gate[1]])
    return values[-1]


_TRUE_DOC = JSONTree.from_value("T")


def circuit_to_jsl(circuit: Circuit) -> jsl.RecursiveJSL:
    """One definition per gate; base expression = the output gate."""
    definitions: list[tuple[str, jsl.Formula]] = []
    for index, gate in enumerate(circuit.gates):
        if gate[0] == "in":
            body: jsl.Formula = jsl.DiaKey(
                KeyLang.word(f"IN{gate[1]}"),
                jsl.TestAtom(nt.EqDocTest(_TRUE_DOC)),
            )
        elif gate[0] == "and":
            body = jsl.And(
                jsl.Ref(circuit.gate_name(gate[1])),
                jsl.Ref(circuit.gate_name(gate[2])),
            )
        elif gate[0] == "or":
            body = jsl.Or(
                jsl.Ref(circuit.gate_name(gate[1])),
                jsl.Ref(circuit.gate_name(gate[2])),
            )
        else:
            body = jsl.Not(jsl.Ref(circuit.gate_name(gate[1])))
        definitions.append((circuit.gate_name(index), body))
    base = jsl.Ref(circuit.gate_name(len(circuit.gates) - 1))
    return jsl.RecursiveJSL(tuple(definitions), base)


def assignment_to_document(circuit: Circuit, inputs: dict[int, bool]) -> JSONTree:
    value = {
        f"IN{i}": "T" if inputs[i] else "F"
        for i in range(1, circuit.num_inputs + 1)
    }
    return JSONTree.from_value(value)
