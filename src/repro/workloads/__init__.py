"""Workload generators: random and structured documents, formulas."""

from repro.workloads.families import (
    balanced_tree,
    complete_binary_array_tree,
    counter_chain,
    deep_chain,
    duplicate_heavy_array,
    even_depth_tree,
    people_collection,
    person_record,
    wide_array,
    wide_object,
)
from repro.workloads.formulas import (
    random_jnl_path,
    random_jnl_unary,
    random_jsl_formula,
    random_schema_value,
)
from repro.workloads.generator import TreeShape, random_tree, random_value

__all__ = [
    "TreeShape",
    "random_tree",
    "random_value",
    "random_jnl_unary",
    "random_jnl_path",
    "random_jsl_formula",
    "random_schema_value",
    "deep_chain",
    "wide_object",
    "wide_array",
    "balanced_tree",
    "even_depth_tree",
    "complete_binary_array_tree",
    "duplicate_heavy_array",
    "person_record",
    "people_collection",
    "counter_chain",
]
