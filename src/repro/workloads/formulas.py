"""Seeded random formulas and schemas for property-based testing."""

from __future__ import annotations

import random

from repro.automata.keylang import KeyLang
from repro.jnl import ast as jnl
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree

__all__ = [
    "random_jnl_unary",
    "random_jnl_path",
    "random_jsl_formula",
    "random_schema_value",
]

_KEYS = ("name", "age", "tags", "first", "items", "a", "b")
_REGEXES = ("a.*", "t.*s", "[a-n]+", "name|age")
_DOCS = ("x", 0, 1, [0], {"a": 0})


def random_jnl_path(
    rng: random.Random,
    depth: int,
    *,
    deterministic: bool = False,
    allow_star: bool = True,
    allow_eqpath: bool = True,
) -> jnl.Binary:
    if depth <= 0:
        choices = ["eps", "key", "index"]
        if not deterministic:
            choices += ["regex", "range"]
        kind = rng.choice(choices)
        if kind == "eps":
            return jnl.Eps()
        if kind == "key":
            return jnl.Key(rng.choice(_KEYS))
        if kind == "index":
            return jnl.Index(rng.randrange(3))
        if kind == "regex":
            return jnl.KeyRegex(KeyLang.regex(rng.choice(_REGEXES)))
        high = rng.choice([None, rng.randrange(4) + 1])
        low = rng.randrange(2)
        if high is not None and high < low:
            high = low
        return jnl.IndexRange(low, high)
    choices = ["compose", "test", "base"]
    if not deterministic:
        choices.append("union")
        if allow_star:
            choices.append("star")
    kind = rng.choice(choices)
    if kind == "compose":
        return jnl.Compose(
            random_jnl_path(rng, depth - 1, deterministic=deterministic,
                            allow_star=allow_star, allow_eqpath=allow_eqpath),
            random_jnl_path(rng, depth - 1, deterministic=deterministic,
                            allow_star=allow_star, allow_eqpath=allow_eqpath),
        )
    if kind == "union":
        return jnl.Union(
            random_jnl_path(rng, depth - 1, allow_star=allow_star,
                            allow_eqpath=allow_eqpath),
            random_jnl_path(rng, depth - 1, allow_star=allow_star,
                            allow_eqpath=allow_eqpath),
        )
    if kind == "star":
        return jnl.Star(
            random_jnl_path(rng, depth - 1, allow_star=False,
                            allow_eqpath=allow_eqpath)
        )
    if kind == "test":
        return jnl.Test(
            random_jnl_unary(rng, depth - 1, deterministic=deterministic,
                             allow_star=allow_star, allow_eqpath=allow_eqpath)
        )
    return random_jnl_path(rng, 0, deterministic=deterministic)


def random_jnl_unary(
    rng: random.Random,
    depth: int,
    *,
    deterministic: bool = False,
    allow_star: bool = True,
    allow_eqpath: bool = True,
) -> jnl.Unary:
    if depth <= 0:
        if rng.random() < 0.5:
            return jnl.Top()
        return jnl.EqDoc(
            jnl.Key(rng.choice(_KEYS)), JSONTree.from_value(rng.choice(_DOCS))
        )
    kind = rng.choice(
        ["not", "and", "or", "exists", "eqdoc"]
        + (["eqpath"] if allow_eqpath else [])
    )
    if kind == "not":
        return jnl.Not(
            random_jnl_unary(rng, depth - 1, deterministic=deterministic,
                             allow_star=allow_star, allow_eqpath=allow_eqpath)
        )
    if kind in ("and", "or"):
        cls = jnl.And if kind == "and" else jnl.Or
        return cls(
            random_jnl_unary(rng, depth - 1, deterministic=deterministic,
                             allow_star=allow_star, allow_eqpath=allow_eqpath),
            random_jnl_unary(rng, depth - 1, deterministic=deterministic,
                             allow_star=allow_star, allow_eqpath=allow_eqpath),
        )
    if kind == "exists":
        return jnl.Exists(
            random_jnl_path(rng, depth - 1, deterministic=deterministic,
                            allow_star=allow_star, allow_eqpath=allow_eqpath)
        )
    if kind == "eqdoc":
        return jnl.EqDoc(
            random_jnl_path(rng, depth - 1, deterministic=deterministic,
                            allow_star=allow_star, allow_eqpath=allow_eqpath),
            JSONTree.from_value(rng.choice(_DOCS)),
        )
    return jnl.EqPath(
        random_jnl_path(rng, depth - 1, deterministic=deterministic,
                        allow_star=allow_star, allow_eqpath=allow_eqpath),
        random_jnl_path(rng, depth - 1, deterministic=deterministic,
                        allow_star=allow_star, allow_eqpath=allow_eqpath),
    )


def random_jsl_formula(rng: random.Random, depth: int) -> jsl.Formula:
    if depth <= 0:
        tests: list[nt.NodeTest] = [
            nt.IsObject(), nt.IsArray(), nt.IsString(), nt.IsNumber(),
            nt.Unique(), nt.Pattern(KeyLang.regex(rng.choice(_REGEXES))),
            nt.MinVal(rng.randrange(50)), nt.MaxVal(rng.randrange(1, 100)),
            nt.MultOf(rng.randrange(1, 7)), nt.MinCh(rng.randrange(4)),
            nt.MaxCh(rng.randrange(5)),
            nt.EqDocTest(JSONTree.from_value(rng.choice(_DOCS))),
        ]
        if rng.random() < 0.2:
            return jsl.Top()
        return jsl.TestAtom(rng.choice(tests))
    kind = rng.choice(["not", "and", "or", "dia_key", "box_key", "dia_idx", "box_idx"])
    if kind == "not":
        return jsl.Not(random_jsl_formula(rng, depth - 1))
    if kind in ("and", "or"):
        cls = jsl.And if kind == "and" else jsl.Or
        return cls(
            random_jsl_formula(rng, depth - 1),
            random_jsl_formula(rng, depth - 1),
        )
    body = random_jsl_formula(rng, depth - 1)
    if kind in ("dia_key", "box_key"):
        if rng.random() < 0.6:
            lang = KeyLang.word(rng.choice(_KEYS))
        else:
            lang = KeyLang.regex(rng.choice(_REGEXES))
        return jsl.DiaKey(lang, body) if kind == "dia_key" else jsl.BoxKey(lang, body)
    low = rng.randrange(3)
    high = rng.choice([None, low + rng.randrange(3)])
    return (
        jsl.DiaIdx(low, high, body)
        if kind == "dia_idx"
        else jsl.BoxIdx(low, high, body)
    )


def random_schema_value(rng: random.Random, depth: int) -> dict:
    """A random core-fragment JSON Schema (as a Python dict)."""
    if depth <= 0:
        return rng.choice(
            [
                {},
                {"type": "string"},
                {"type": "string", "pattern": rng.choice(_REGEXES)},
                {"type": "number", "minimum": rng.randrange(10)},
                {"type": "number", "maximum": rng.randrange(5, 60),
                 "multipleOf": rng.randrange(1, 5)},
                {"enum": [rng.choice(list(_DOCS))]},
            ]
        )
    kind = rng.choice(["object", "array", "allOf", "anyOf", "not"])
    if kind == "object":
        schema: dict = {"type": "object"}
        if rng.random() < 0.6:
            schema["properties"] = {
                rng.choice(_KEYS): random_schema_value(rng, depth - 1)
            }
        if rng.random() < 0.4:
            schema["required"] = [rng.choice(_KEYS)]
        if rng.random() < 0.3:
            schema["patternProperties"] = {
                rng.choice(_REGEXES): random_schema_value(rng, depth - 1)
            }
        if rng.random() < 0.3:
            schema["additionalProperties"] = random_schema_value(rng, depth - 1)
        if rng.random() < 0.25:
            schema["minProperties"] = rng.randrange(3)
        if rng.random() < 0.25:
            schema["maxProperties"] = rng.randrange(1, 5)
        return schema
    if kind == "array":
        schema = {"type": "array"}
        if rng.random() < 0.6:
            schema["items"] = [
                random_schema_value(rng, depth - 1)
                for _ in range(rng.randrange(1, 3))
            ]
        if rng.random() < 0.5:
            schema["additionalItems"] = random_schema_value(rng, depth - 1)
        if rng.random() < 0.3:
            schema["uniqueItems"] = True
        return schema
    if kind in ("allOf", "anyOf"):
        return {
            kind: [
                random_schema_value(rng, depth - 1)
                for _ in range(rng.randrange(1, 3))
            ]
        }
    return {"not": random_schema_value(rng, depth - 1)}
