"""Seeded random JSON documents for tests and benchmarks."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.model.tree import JSONTree, JSONValue

__all__ = ["TreeShape", "random_value", "random_tree"]

_DEFAULT_KEYS = (
    "name", "age", "id", "tags", "address", "city", "email", "items",
    "price", "title", "first", "last", "status", "count", "data",
)
_DEFAULT_STRINGS = (
    "alpha", "beta", "gamma", "delta", "x", "y", "json", "tree",
    "fishing", "yoga", "Sue", "John",
)


@dataclass
class TreeShape:
    """Knobs for random document generation."""

    max_depth: int = 5
    max_children: int = 5
    object_weight: float = 0.35
    array_weight: float = 0.25
    string_weight: float = 0.2
    # remaining weight is numbers
    key_pool: tuple[str, ...] = _DEFAULT_KEYS
    string_pool: tuple[str, ...] = _DEFAULT_STRINGS
    int_range: tuple[int, int] = (0, 99)
    extra_key_entropy: int = 0  # >0 adds numbered fresh keys
    _weights: tuple[float, float, float, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        number_weight = max(
            0.0,
            1.0 - self.object_weight - self.array_weight - self.string_weight,
        )
        self._weights = (
            self.object_weight,
            self.array_weight,
            self.string_weight,
            number_weight,
        )


def random_value(
    rng: random.Random, shape: TreeShape | None = None, depth: int = 0
) -> JSONValue:
    """A random JSON value (Python form) under the given shape."""
    shape = shape or TreeShape()
    kinds = ("object", "array", "string", "number")
    if depth >= shape.max_depth:
        kind = rng.choice(("string", "number"))
    else:
        kind = rng.choices(kinds, weights=shape._weights, k=1)[0]
    if kind == "object":
        count = rng.randrange(shape.max_children + 1)
        keys = list(shape.key_pool)
        if shape.extra_key_entropy:
            keys += [f"k{i}" for i in range(shape.extra_key_entropy)]
        rng.shuffle(keys)
        return {
            key: random_value(rng, shape, depth + 1)
            for key in keys[:count]
        }
    if kind == "array":
        count = rng.randrange(shape.max_children + 1)
        return [random_value(rng, shape, depth + 1) for _ in range(count)]
    if kind == "string":
        return rng.choice(shape.string_pool)
    low, high = shape.int_range
    return rng.randint(low, high)


def random_tree(seed: int, shape: TreeShape | None = None) -> JSONTree:
    """A random JSON tree; same seed, same tree."""
    rng = random.Random(seed)
    return JSONTree.from_value(random_value(rng, shape))
