"""Structured document families used by the benchmarks.

Each family grows along one dimension so scaling measurements isolate
one cost: depth (chains), breadth (wide objects/arrays), balanced bulk
(complete trees), duplicate density (``Unique`` workloads), and a
realistic API-records collection echoing the paper's motivating
examples (Figure 1's person documents).
"""

from __future__ import annotations

import random

from repro.model.tree import JSONTree, JSONValue

__all__ = [
    "deep_chain",
    "wide_object",
    "wide_array",
    "balanced_tree",
    "even_depth_tree",
    "complete_binary_array_tree",
    "duplicate_heavy_array",
    "person_record",
    "people_collection",
    "counter_chain",
]


def deep_chain(depth: int, key: str = "a", leaf: JSONValue = "0") -> JSONTree:
    """Nested single-key objects: ``{"a": {"a": ... "0"}}``."""
    value: JSONValue = leaf
    for _ in range(depth):
        value = {key: value}
    return JSONTree.from_value(value)


def wide_object(width: int, child: JSONValue = 0) -> JSONTree:
    return JSONTree.from_value({f"k{i}": child for i in range(width)})


def wide_array(width: int, child: JSONValue = 0) -> JSONTree:
    return JSONTree.from_value([child] * width)


def balanced_tree(branching: int, depth: int) -> JSONTree:
    """A complete object tree with ``branching^depth`` leaves."""

    def build(level: int) -> JSONValue:
        if level >= depth:
            return level
        return {f"c{i}": build(level + 1) for i in range(branching)}

    return JSONTree.from_value(build(0))


def even_depth_tree(depth: int, branching: int = 2) -> JSONTree:
    """All root-to-leaf paths have length ``depth`` (Example 2 workload)."""

    def build(level: int) -> JSONValue:
        if level >= depth:
            return {}
        return {f"b{i}": build(level + 1) for i in range(branching)}

    return JSONTree.from_value(build(0))


def complete_binary_array_tree(depth: int) -> JSONTree:
    """The complete binary trees of Example 5 (arrays, equal siblings)."""

    def build(level: int) -> JSONValue:
        if level >= depth:
            return []
        child = build(level + 1)
        return [child, child]

    return JSONTree.from_value(build(0))


def duplicate_heavy_array(
    width: int, distinct: int, seed: int = 0
) -> JSONTree:
    """An array of ``width`` objects drawn from ``distinct`` templates.

    The adversarial ``Unique`` workload: many equal subtrees make the
    naive pairwise comparison quadratic.
    """
    rng = random.Random(seed)
    templates = [
        {"id": i, "payload": [i, i + 1], "tag": f"t{i}"} for i in range(distinct)
    ]
    return JSONTree.from_value(
        [templates[rng.randrange(distinct)] for _ in range(width)]
    )


def person_record(index: int, rng: random.Random) -> JSONValue:
    """A Figure-1-style person document."""
    first_names = ("John", "Sue", "Ana", "Li", "Omar", "Mia")
    last_names = ("Doe", "Reyes", "Chen", "Novak", "Diaz")
    hobby_pool = ("fishing", "yoga", "chess", "running", "painting")
    hobbies = rng.sample(hobby_pool, k=rng.randrange(0, 4))
    return {
        "id": index,
        "name": {
            "first": rng.choice(first_names),
            "last": rng.choice(last_names),
        },
        "age": rng.randint(18, 90),
        "hobbies": hobbies,
        "address": {
            "city": rng.choice(("Santiago", "Lille", "Oxford", "Talca")),
            "zip": str(rng.randint(10000, 99999)),
        },
    }


def people_collection(count: int, seed: int = 0) -> list[JSONValue]:
    rng = random.Random(seed)
    return [person_record(i, rng) for i in range(count)]


def counter_chain(length: int) -> JSONTree:
    """A run-shaped linked list (Proposition 4 workloads)."""
    value: JSONValue = {"state": "qf", "c1": "0", "c2": "0"}
    for i in range(length - 1, 0, -1):
        value = {"state": f"q{i % 3}", "c1": "0", "c2": "0", "next": value}
    return JSONTree.from_value(value)
