"""Clients for the JSON-lines serving tier (sync and async).

:func:`connect` opens a blocking socket client; :func:`aconnect` the
asyncio counterpart.  Both speak the protocol of
:mod:`repro.server.protocol` and expose remote collections through the
same uniform surface as local ones (``find``/``count``/``aggregate``/
``select``/``get``/``validate``/``explain``/``insert``/``update_one``/
``update_many``/``replace_one``/``remove``), so code written against
:func:`repro.api.connect` works unchanged against a server::

    import repro.client

    with repro.client.connect("127.0.0.1:4321") as db:
        people = db.collection("people")
        people.insert_many([{"name": "Sue", "age": 35}])
        rows = people.find({"age": {"$gt": 30}})

Server-side failures rehydrate to the *same* exception classes local
code raises -- a write against a degraded engine raises
:class:`~repro.errors.CollectionReadOnlyError` here exactly as it
would in-process -- via the stable wire ``code`` taxonomy of
:mod:`repro.errors`.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any

from repro.errors import StoreError, WireProtocolError, from_wire
from repro.explain import Explain
from repro.server import protocol

__all__ = [
    "connect",
    "aconnect",
    "RemoteDatabase",
    "RemoteCollection",
    "AsyncRemoteDatabase",
    "AsyncRemoteCollection",
    "parse_address",
]


def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """``"host:port"``, ``"tcp://host:port"`` or ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    if not isinstance(address, str):
        raise StoreError(f"unsupported server address {address!r}")
    text = address.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://") :]
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise StoreError(
            f"server address {address!r} is not of the form 'host:port'"
        )
    return host or "127.0.0.1", int(port)


def _check_optimize(optimize: str) -> str:
    """The remote spelling of the semantic-optimizer knob.

    ``"proof-only"`` is a collection-side mode (prove, report, never
    enforce); a client cannot impose it on a server's collections, so
    asking for it here is an error rather than a silent downgrade.
    """
    if optimize not in ("on", "off"):
        raise StoreError(
            f"remote optimize mode must be 'on' or 'off', got {optimize!r}"
        )
    return optimize


def _merge_hint(
    optimize: str, hint: "dict[str, Any] | None"
) -> "dict[str, Any] | None":
    """The per-request hint, folding in a client-wide ``optimize="off"``."""
    if optimize == "off":
        merged = dict(hint or {})
        merged["no_semantic"] = True
        return merged
    return hint


def _check_greeting(greeting: dict[str, Any]) -> None:
    if greeting.get("server") != "repro":
        raise WireProtocolError(
            f"remote end is not a repro server (greeting {greeting!r})"
        )
    version = greeting.get("protocol")
    if version != protocol.PROTOCOL_VERSION:
        raise WireProtocolError(
            f"server speaks protocol {version!r}; this client speaks "
            f"{protocol.PROTOCOL_VERSION}"
        )


def _unwrap(request_id: int, response: dict[str, Any]) -> Any:
    """Check the envelope, rehydrate errors, return the result."""
    got = response.get("id")
    if got is not None and got != request_id:
        raise WireProtocolError(
            f"response id {got!r} does not match request id {request_id!r}"
        )
    if response.get("ok"):
        return response.get("result")
    error = response.get("error")
    if not isinstance(error, dict):
        raise WireProtocolError(f"malformed error response: {response!r}")
    raise from_wire(error)


# ---------------------------------------------------------------------------
# Blocking client.
# ---------------------------------------------------------------------------


class RemoteDatabase:
    """One connection to a server; collection handles multiplex it.

    Not thread-safe: requests run strictly in sequence on the one
    socket (open one client per thread, as with any connection handle).
    """

    def __init__(
        self,
        address: "str | tuple[str, int]",
        *,
        optimize: str = "on",
    ) -> None:
        self._optimize = _check_optimize(optimize)
        host, port = parse_address(address)
        self._address = (host, port)
        self._socket = socket.create_connection((host, port))
        self._file = self._socket.makefile("rwb")
        self._next_id = 0
        self._closed = False
        _check_greeting(protocol.decode(self._readline()))

    def _readline(self) -> bytes:
        line = self._file.readline(protocol.MAX_LINE_BYTES + 2)
        if not line:
            raise WireProtocolError("server closed the connection")
        return line

    def request(self, op: str, **fields: Any) -> Any:
        """One raw protocol round-trip (the escape hatch)."""
        if self._closed:
            raise StoreError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op, **fields}
        self._file.write(protocol.encode(message))
        self._file.flush()
        return _unwrap(request_id, protocol.decode(self._readline()))

    # -- database surface --------------------------------------------------

    def collection(self, name: str = "main") -> "RemoteCollection":
        return RemoteCollection(self, name, optimize=self._optimize)

    @property
    def optimize(self) -> str:
        """The client-wide semantic-optimizer knob (``on``/``off``)."""
        return self._optimize

    def collection_names(self) -> list[str]:
        return self.request("collections")

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def compact(self, name: str = "main") -> Any:
        return self.request("compact", collection=name)

    def shutdown(self) -> None:
        """Ask the server to stop serving (acknowledged, then closed)."""
        self.request("shutdown")

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    @property
    def durable(self) -> bool:
        return bool(self.stats()["durable"])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self._address
        state = "closed" if self._closed else "open"
        return f"RemoteDatabase({host}:{port}, {state})"


class RemoteCollection:
    """The uniform collection surface, proxied over the wire."""

    def __init__(
        self,
        database: RemoteDatabase,
        name: str,
        *,
        optimize: str = "on",
    ) -> None:
        self._database = database
        self.name = name
        self._optimize = _check_optimize(optimize)

    def _request(self, op: str, **fields: Any) -> Any:
        return self._database.request(op, collection=self.name, **fields)

    def _read_fields(
        self, hint: "dict[str, Any] | None", **fields: Any
    ) -> dict[str, Any]:
        merged = _merge_hint(self._optimize, hint)
        if merged is not None:
            fields["hint"] = merged
        return fields

    @property
    def optimize(self) -> str:
        return self._optimize

    # -- reads -------------------------------------------------------------

    def find(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[Any]:
        fields = self._read_fields(hint, filter=filter_doc)
        if projection is not None:
            fields["projection"] = projection
        return self._request("find", **fields)

    def count(
        self,
        filter_doc: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> int:
        return self._request(
            "count", **self._read_fields(hint, filter=filter_doc or {})
        )

    def aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ) -> list[Any]:
        return self._request(
            "aggregate", **self._read_fields(hint, pipeline=pipeline)
        )

    def select(
        self, query: str, dialect: str = "jsonpath"
    ) -> list[tuple[int, list[Any]]]:
        rows = self._request("select", query=query, dialect=dialect)
        return [(doc_id, values) for doc_id, values in rows]

    def get(self, doc_id: int) -> Any:
        return self._request("get", doc_id=doc_id)

    def validate(self, document: Any, schema: Any | None = None) -> bool:
        fields: dict[str, Any] = {"document": document}
        if schema is not None:
            fields["schema"] = schema
        return self._request("validate", **fields)

    def explain(
        self,
        filter_doc: dict[str, Any] | None = None,
        *,
        pipeline: list | None = None,
        update: dict[str, Any] | None = None,
        first_only: bool = False,
        hint: dict[str, Any] | None = None,
    ) -> Explain:
        """The server's :class:`~repro.explain.Explain`, rehydrated.

        Pass ``pipeline=`` for an aggregation explain, ``update=`` for
        an update dry run, or a bare filter for a find explain --
        exactly the local collection surface.
        """
        fields = self._read_fields(hint, filter=filter_doc or {})
        if pipeline is not None:
            fields["pipeline"] = pipeline
        elif update is not None:
            fields["update"] = update
            if first_only:
                fields["first_only"] = True
        return Explain.from_json(self._request("explain", **fields))

    def __len__(self) -> int:
        return self.count({})

    # -- writes ------------------------------------------------------------

    def insert(self, document: Any) -> int:
        return self._request("insert", documents=[document])[0]

    def insert_many(self, documents: list[Any]) -> list[int]:
        return self._request("insert", documents=list(documents))

    def update_one(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return self._request(
            "update",
            filter=filter_doc,
            update=update_doc,
            one=True,
            upsert=upsert,
        )

    def update_many(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return self._request(
            "update", filter=filter_doc, update=update_doc, upsert=upsert
        )

    def replace_one(
        self,
        filter_doc: dict[str, Any],
        replacement: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return self._request(
            "replace",
            filter=filter_doc,
            replacement=replacement,
            upsert=upsert,
        )

    def remove(self, doc_id: int) -> Any:
        return self._request("remove", doc_id=doc_id)

    def compact(self) -> Any:
        return self._request("compact")

    def __repr__(self) -> str:
        return f"RemoteCollection({self.name!r}, {self._database!r})"


def connect(
    address: "str | tuple[str, int]", *, optimize: str = "on"
) -> RemoteDatabase:
    """Open a blocking client to a ``repro serve`` address.

    ``optimize="off"`` makes every read from this client carry a
    ``{"no_semantic": true}`` hint, disabling the server's semantic
    optimizer for exactly this connection's queries.
    """
    return RemoteDatabase(address, optimize=optimize)


# ---------------------------------------------------------------------------
# Asyncio client (the differential tests' concurrent readers).
# ---------------------------------------------------------------------------


class AsyncRemoteDatabase:
    """The asyncio twin of :class:`RemoteDatabase`.

    One connection, strictly sequential request/response -- concurrency
    comes from opening many clients (as the differential suite and the
    benchmark's reader fleets do), matching how separate processes
    would connect.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        optimize: str = "on",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._closed = False
        self._lock = asyncio.Lock()
        self._optimize = _check_optimize(optimize)

    @classmethod
    async def open(
        cls,
        address: "str | tuple[str, int]",
        *,
        optimize: str = "on",
    ) -> "AsyncRemoteDatabase":
        host, port = parse_address(address)
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        client = cls(reader, writer, optimize=optimize)
        greeting = await reader.readline()
        if not greeting:
            raise WireProtocolError("server closed the connection")
        _check_greeting(protocol.decode(greeting))
        return client

    async def request(self, op: str, **fields: Any) -> Any:
        if self._closed:
            raise StoreError("client is closed")
        async with self._lock:  # one in-flight request per connection
            self._next_id += 1
            request_id = self._next_id
            self._writer.write(
                protocol.encode({"id": request_id, "op": op, **fields})
            )
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise WireProtocolError("server closed the connection")
        return _unwrap(request_id, protocol.decode(line))

    def collection(self, name: str = "main") -> "AsyncRemoteCollection":
        return AsyncRemoteCollection(self, name, optimize=self._optimize)

    @property
    def optimize(self) -> str:
        return self._optimize

    async def collection_names(self) -> list[str]:
        return await self.request("collections")

    async def ping(self) -> bool:
        return await self.request("ping") == "pong"

    async def stats(self) -> dict[str, Any]:
        return await self.request("stats")

    async def shutdown(self) -> None:
        await self.request("shutdown")

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    async def __aenter__(self) -> "AsyncRemoteDatabase":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


class AsyncRemoteCollection:
    """Awaitable twin of :class:`RemoteCollection`."""

    def __init__(
        self,
        database: AsyncRemoteDatabase,
        name: str,
        *,
        optimize: str = "on",
    ) -> None:
        self._database = database
        self.name = name
        self._optimize = _check_optimize(optimize)

    def _request(self, op: str, **fields: Any) -> Any:
        return self._database.request(op, collection=self.name, **fields)

    def _read_fields(
        self, hint: "dict[str, Any] | None", **fields: Any
    ) -> dict[str, Any]:
        merged = _merge_hint(self._optimize, hint)
        if merged is not None:
            fields["hint"] = merged
        return fields

    async def find(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[Any]:
        fields = self._read_fields(hint, filter=filter_doc)
        if projection is not None:
            fields["projection"] = projection
        return await self._request("find", **fields)

    async def count(
        self,
        filter_doc: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> int:
        return await self._request(
            "count", **self._read_fields(hint, filter=filter_doc or {})
        )

    async def aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ) -> list[Any]:
        return await self._request(
            "aggregate", **self._read_fields(hint, pipeline=pipeline)
        )

    async def select(
        self, query: str, dialect: str = "jsonpath"
    ) -> list[tuple[int, list[Any]]]:
        rows = await self._request("select", query=query, dialect=dialect)
        return [(doc_id, values) for doc_id, values in rows]

    async def get(self, doc_id: int) -> Any:
        return await self._request("get", doc_id=doc_id)

    async def validate(
        self, document: Any, schema: Any | None = None
    ) -> bool:
        fields: dict[str, Any] = {"document": document}
        if schema is not None:
            fields["schema"] = schema
        return await self._request("validate", **fields)

    async def explain(
        self,
        filter_doc: dict[str, Any] | None = None,
        *,
        pipeline: list | None = None,
        update: dict[str, Any] | None = None,
        first_only: bool = False,
        hint: dict[str, Any] | None = None,
    ) -> Explain:
        fields = self._read_fields(hint, filter=filter_doc or {})
        if pipeline is not None:
            fields["pipeline"] = pipeline
        elif update is not None:
            fields["update"] = update
            if first_only:
                fields["first_only"] = True
        return Explain.from_json(await self._request("explain", **fields))

    async def insert(self, document: Any) -> int:
        return (await self._request("insert", documents=[document]))[0]

    async def insert_many(self, documents: list[Any]) -> list[int]:
        return await self._request("insert", documents=list(documents))

    async def update_one(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return await self._request(
            "update",
            filter=filter_doc,
            update=update_doc,
            one=True,
            upsert=upsert,
        )

    async def update_many(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return await self._request(
            "update", filter=filter_doc, update=update_doc, upsert=upsert
        )

    async def replace_one(
        self,
        filter_doc: dict[str, Any],
        replacement: dict[str, Any],
        *,
        upsert: bool = False,
    ) -> dict[str, Any]:
        return await self._request(
            "replace",
            filter=filter_doc,
            replacement=replacement,
            upsert=upsert,
        )

    async def remove(self, doc_id: int) -> Any:
        return await self._request("remove", doc_id=doc_id)


async def aconnect(
    address: "str | tuple[str, int]", *, optimize: str = "on"
) -> AsyncRemoteDatabase:
    """Open an asyncio client to a ``repro serve`` address."""
    return await AsyncRemoteDatabase.open(address, optimize=optimize)
