"""The asyncio serving tier: snapshot reads, one writer, group commit.

:class:`ReproServer` exposes a :class:`~repro.store.database.Database`
(memory or durable) over TCP with the JSON-lines protocol of
:mod:`repro.server.protocol` and a **multi-reader/single-writer**
concurrency model:

* **Reads pin snapshots.**  Every read request answers against a
  :class:`~repro.store.snapshot.CollectionSnapshot` pinned at the
  collection's current generation -- the server keeps one cached pin
  per collection and re-pins only after the generation moves, so a
  read request never observes a half-applied write and pinning costs
  nothing on a read-mostly workload.  Reads execute directly in the
  connection handler; they never wait behind the writer queue.

* **Writes funnel through one writer task.**  Write requests enqueue
  ``(request, future)`` pairs; the single writer task drains the queue
  into batches and executes each batch inside the storage engine's
  ``group()`` block -- the PR-5 two-phase stage/validate/commit runs
  per request, but the batch shares **one WAL sync** (group commit).
  No client is acknowledged until the group's sync has returned, so an
  acknowledged write is a durable write, and a crash can only lose
  writes that were never acknowledged.

* **Degraded engines keep serving.**  A collection whose engine hit a
  storage failure (PR 7) keeps answering reads from memory; its writes
  fail with the typed ``store.read-only`` wire error the client
  rehydrates to :class:`~repro.errors.CollectionReadOnlyError`.

Request/response examples live in :mod:`repro.server.protocol`; the
counterpart client is :mod:`repro.client`.
"""

from __future__ import annotations

import asyncio
import dataclasses
from contextlib import nullcontext
from typing import Any

from repro.errors import (
    ReproError,
    StoreError,
    WireProtocolError,
)
from repro.server import protocol
from repro.store.database import Database

__all__ = ["ReproServer", "ServerMetrics", "serve"]


@dataclasses.dataclass
class ServerMetrics:
    """Monotonic counters the ``stats`` operation reports.

    ``group_commits``/``batched_writes`` expose the amortisation the
    bench gates on: ``batched_writes / group_commits`` is the mean
    batch size, and on a durable engine each group costs one WAL sync.
    """

    connections: int = 0
    requests: int = 0
    reads: int = 0
    writes: int = 0
    admin: int = 0
    errors: int = 0
    group_commits: int = 0
    batched_writes: int = 0
    max_batch: int = 0
    snapshot_pins: int = 0
    ops: dict[str, int] = dataclasses.field(default_factory=dict)

    def count_op(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def _jsonable(value: Any) -> Any:
    """Reports (dataclasses, exceptions) as plain JSON values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            key: _jsonable(item)
            for key, item in dataclasses.asdict(value).items()
        }
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, BaseException):
        return str(value)
    return value


class ReproServer:
    """One database served over asyncio TCP (see module docstring).

    ``database`` may be shared with in-process code: the server's
    writer task is the only writer *through the server*, and in-process
    writers would race it -- hand the database over exclusively, as a
    real server process does.
    """

    def __init__(
        self,
        database: Database,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 256,
    ) -> None:
        if max_batch < 1:
            raise StoreError("max_batch must be a positive integer")
        self._database = database
        self._host = host
        self._port = port
        self._max_batch = max_batch
        self._server: asyncio.AbstractServer | None = None
        self._writer_task: asyncio.Task | None = None
        # Created in start(), on the serving loop.
        self._queue: "asyncio.Queue[tuple[dict, asyncio.Future]] | None" = None
        self._snapshots: dict[str, Any] = {}
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closing = False
        self._closed = asyncio.Event()
        self.metrics = ServerMetrics()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the writer task."""
        if self._server is not None:
            raise StoreError("server is already started")
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._writer_task = asyncio.create_task(self._writer_loop())

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._server is None or not self._server.sockets:
            raise StoreError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Serve until :meth:`aclose` (or a ``shutdown`` request)."""
        if self._server is None:
            await self.start()
        await self._closed.wait()

    async def aclose(self) -> None:
        """Stop accepting, drain the writer queue, close the database."""
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Drain acknowledged work: everything already queued commits
        # (and its clients get their responses) before the writer dies.
        if self._writer_task is not None:
            await self._queue.join()
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        # Unblock connections parked in readline and wait the handlers
        # out, so no cleanup outlives the loop this server ran on.
        for writer in self._connections.values():
            writer.close()
        if self._connections:
            await asyncio.wait(
                set(self._connections), timeout=5
            )
        self._database.close()
        self._closed.set()

    # ------------------------------------------------------------------
    # Connections.
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        writer.write(protocol.encode(protocol.greeting()))
        try:
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError as exc:  # longer than the stream limit
                    raise WireProtocolError(
                        "frame exceeds the line limit"
                    ) from exc
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._respond(line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if self._closing:
                    break
        except (ConnectionError, WireProtocolError, ValueError) as exc:
            # A protocol-level failure poisons the framing; answer once
            # (best effort, no id to echo) and drop the connection.
            if isinstance(exc, WireProtocolError):
                self.metrics.errors += 1
                try:
                    writer.write(
                        protocol.encode(protocol.error_response(None, exc))
                    )
                    await writer.drain()
                except ConnectionError:
                    pass
        finally:
            if task is not None:
                self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, line: bytes) -> dict[str, Any]:
        """One request line to one response envelope."""
        self.metrics.requests += 1
        request_id: Any = None
        try:
            message = protocol.decode(line)
            request_id, op = protocol.parse_request(message)
            self.metrics.count_op(op)
            if op in protocol.WRITE_OPS:
                self.metrics.writes += 1
                result = await self._enqueue_write(message)
            elif op in protocol.ADMIN_OPS:
                self.metrics.admin += 1
                result = await self._execute_admin(op, message)
            else:
                self.metrics.reads += 1
                result = self._execute_read(op, message)
            return protocol.ok_response(request_id, result)
        except Exception as exc:
            # ReproError serialises to its own code; anything else
            # answers as an opaque ``server.error`` rather than
            # tearing the connection down.
            self.metrics.errors += 1
            return protocol.error_response(request_id, exc)

    # ------------------------------------------------------------------
    # Reads: pin a snapshot, answer from it.
    # ------------------------------------------------------------------

    def _collection(self, message: dict[str, Any]):
        name = message.get("collection", "main")
        if not isinstance(name, str):
            raise WireProtocolError("collection name must be a string")
        return self._database.collection(name)

    def _snapshot(self, message: dict[str, Any]):
        """The cached snapshot for a collection, re-pinned when stale.

        Writes only happen on this loop (the writer task), so a cached
        pin at the live generation is exactly the current state; after
        a group commit the next read re-pins once.
        """
        name = message.get("collection", "main")
        collection = self._collection(message)
        pinned = self._snapshots.get(name)
        if pinned is None or pinned.generation != collection.generation:
            pinned = collection.snapshot_view()
            self._snapshots[name] = pinned
            self.metrics.snapshot_pins += 1
        return pinned

    def _execute_read(self, op: str, message: dict[str, Any]) -> Any:
        snapshot = self._snapshot(message)
        hint = message.get("hint")
        if hint is not None and not isinstance(hint, dict):
            raise WireProtocolError("hint must be a JSON object")
        if op == "find":
            return snapshot.find(
                _require_dict(message, "filter", default={}),
                message.get("projection"),
                hint=hint,
            )
        if op == "count":
            return snapshot.count(
                _require_dict(message, "filter", default={}), hint=hint
            )
        if op == "aggregate":
            return snapshot.aggregate(
                _require_list(message, "pipeline"), hint=hint
            )
        if op == "select":
            dialect = message.get("dialect", "jsonpath")
            if not isinstance(dialect, str):
                raise WireProtocolError("dialect must be a string")
            query = message.get("query")
            if not isinstance(query, str):
                raise WireProtocolError("select needs a textual 'query'")
            return [
                [doc_id, values]
                for doc_id, values in snapshot.select(query, dialect)
            ]
        if op == "get":
            doc_id = message.get("doc_id")
            if not isinstance(doc_id, int):
                raise WireProtocolError("get needs an integer 'doc_id'")
            return snapshot.get(doc_id).to_value()
        if op == "validate":
            return self._execute_validate(message)
        if op == "explain":
            if "pipeline" in message:
                report = snapshot.explain_aggregate(
                    _require_list(message, "pipeline"), hint=hint
                )
            elif "update" in message:
                # A dry run only reads; it answers from the live
                # collection because snapshots hold no write planner.
                report = self._collection(message).explain_update(
                    _require_dict(message, "filter", default={}),
                    _require_dict(message, "update"),
                    first_only=bool(message.get("first_only")),
                    hint=hint,
                )
            else:
                report = snapshot.explain(
                    _require_dict(message, "filter", default={}), hint=hint
                )
            return report.to_json()
        raise WireProtocolError(f"unhandled read operation {op!r}")

    def _execute_validate(self, message: dict[str, Any]) -> bool:
        """Validate a document against an inline schema or the
        collection's enforced one."""
        if "document" not in message:
            raise WireProtocolError("validate needs a 'document'")
        document = message["document"]
        schema = message.get("schema")
        if schema is not None:
            from repro.schema.parser import parse_schema
            from repro.validate.compiled import compile_schema_validator

            validator = compile_schema_validator(parse_schema(schema))
            extended = False
        else:
            collection = self._collection(message)
            validator = collection.validator
            extended = collection.extended
            if validator is None:
                raise StoreError(
                    "collection enforces no schema; pass an inline 'schema' "
                    "to validate against"
                )
        return validator.validate_value(document, extended=extended)

    # ------------------------------------------------------------------
    # Writes: the single writer task and its group commits.
    # ------------------------------------------------------------------

    async def _enqueue_write(self, message: dict[str, Any]) -> Any:
        if self._closing:
            raise StoreError("server is shutting down; write rejected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((message, future))
        return await future

    async def _writer_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._commit_group(batch)
            except Exception as exc:  # pragma: no cover - defensive
                # The writer task must survive anything: an unhandled
                # failure here would silently hang every later write.
                for _, future in batch:
                    if not future.done() and not future.cancelled():
                        future.set_exception(
                            StoreError(f"writer task failed: {exc}")
                        )
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _commit_group(self, batch: list[tuple[dict, asyncio.Future]]) -> None:
        """Execute one drained batch as per-collection group commits.

        Requests are partitioned by collection (preserving queue order
        within each), every partition runs inside its engine's
        ``group()`` block, and futures resolve only after the block --
        i.e. after the batch's single WAL sync -- so acknowledgements
        imply durability.  An individually-failed request (schema
        rejection, read-only engine) answers its own error without
        poisoning the rest of the batch; a failed group *sync* fails
        every request that had staged into that group.
        """
        self.metrics.group_commits += 1
        self.metrics.batched_writes += len(batch)
        self.metrics.max_batch = max(self.metrics.max_batch, len(batch))
        by_collection: dict[str, list[tuple[dict, asyncio.Future]]] = {}
        outcomes: list[tuple[asyncio.Future, BaseException | None, Any]] = []
        for message, future in batch:
            name = message.get("collection", "main")
            if not isinstance(name, str):
                outcomes.append(
                    (
                        future,
                        WireProtocolError("collection name must be a string"),
                        None,
                    )
                )
                continue
            by_collection.setdefault(name, []).append((message, future))
        for name, items in by_collection.items():
            try:
                collection = self._database.collection(name)
            except ReproError as exc:
                outcomes.extend((future, exc, None) for _, future in items)
                continue
            engine = getattr(collection, "engine", None)
            group = getattr(engine, "group", None)
            staged: list[tuple[asyncio.Future, BaseException | None, Any]] = []
            try:
                with group() if group is not None else nullcontext():
                    for message, future in items:
                        try:
                            result = self._apply_write(collection, message)
                            staged.append((future, None, result))
                        except Exception as exc:
                            staged.append((future, exc, None))
            except Exception as exc:
                # The group itself failed -- at entry (read-only
                # engine) or at the commit sync.  Nothing staged in
                # this block was made durable, so nothing staged may
                # be acknowledged; requests the loop never reached
                # fail with the same error.  Individually-failed
                # requests keep their own errors.
                reached = {id(future) for future, _, _ in staged}
                staged = [
                    (future, error if error is not None else exc, None)
                    for future, error, _ in staged
                ]
                staged.extend(
                    (future, exc, None)
                    for _, future in items
                    if id(future) not in reached
                )
            outcomes.extend(staged)
        for future, error, result in outcomes:
            if future.cancelled():
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)

    def _apply_write(self, collection: Any, message: dict[str, Any]) -> Any:
        op = message["op"]
        if op == "insert":
            documents = message.get("documents")
            if not isinstance(documents, list):
                raise WireProtocolError("insert needs a 'documents' array")
            return collection.insert_many(documents)
        if op == "update":
            filter_doc = _require_dict(message, "filter", default={})
            update_doc = _require_dict(message, "update")
            upsert = bool(message.get("upsert", False))
            if message.get("one", False):
                result = collection.update_one(
                    filter_doc, update_doc, upsert=upsert
                )
            else:
                result = collection.update_many(
                    filter_doc, update_doc, upsert=upsert
                )
            return {
                "matched": result.matched_count,
                "modified": result.modified_count,
                "upserted_id": result.upserted_id,
            }
        if op == "replace":
            result = collection.replace_one(
                _require_dict(message, "filter", default={}),
                _require_dict(message, "replacement"),
                upsert=bool(message.get("upsert", False)),
            )
            return {
                "matched": result.matched_count,
                "modified": result.modified_count,
                "upserted_id": result.upserted_id,
            }
        if op == "remove":
            doc_id = message.get("doc_id")
            if not isinstance(doc_id, int):
                raise WireProtocolError("remove needs an integer 'doc_id'")
            removed = collection.remove(doc_id)
            return removed.to_value() if hasattr(removed, "to_value") else removed
        if op == "compact":
            return _jsonable(collection.compact())
        raise WireProtocolError(f"unhandled write operation {op!r}")

    # ------------------------------------------------------------------
    # Admin.
    # ------------------------------------------------------------------

    async def _execute_admin(self, op: str, message: dict[str, Any]) -> Any:
        if op == "ping":
            return "pong"
        if op == "collections":
            return self._database.collection_names()
        if op == "stats":
            health = {
                name: {
                    "ok": status.ok,
                    "degraded": status.degraded,
                    "reason": status.reason,
                }
                for name, status in self._database.health().items()
            }
            collections = {
                name: {
                    "documents": len(collection),
                    "generation": collection.generation,
                }
                for name, collection in (
                    (name, self._database.collection(name))
                    for name in self._database.collection_names()
                )
            }
            return {
                "metrics": self.metrics.as_dict(),
                "collections": collections,
                "health": health,
                "durable": self._database.durable,
            }
        if op == "shutdown":
            # Acknowledge first, then close: the requesting client gets
            # its response before the listening socket goes away.
            asyncio.get_running_loop().create_task(self.aclose())
            return "shutting down"
        raise WireProtocolError(f"unhandled admin operation {op!r}")


_MISSING = object()


def _require_dict(
    message: dict[str, Any], field: str, default: Any = _MISSING
) -> dict[str, Any]:
    value = message.get(field, default)
    if value is _MISSING:
        raise WireProtocolError(f"request needs a {field!r} object")
    if not isinstance(value, dict):
        raise WireProtocolError(f"{field!r} must be a JSON object")
    return value


def _require_list(message: dict[str, Any], field: str) -> list:
    value = message.get(field)
    if not isinstance(value, list):
        raise WireProtocolError(f"{field!r} must be a JSON array")
    return value


async def serve(
    database: Database,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 256,
    on_ready=None,
) -> None:
    """Start a server and run it until shutdown (the CLI entry point).

    ``on_ready`` (when given) is called with the started
    :class:`ReproServer` once the socket is bound -- the ``repro
    serve`` command prints the address at that point, and tests use it
    to learn the ephemeral port without polling.
    """
    server = ReproServer(database, host=host, port=port, max_batch=max_batch)
    await server.start()
    if on_ready is not None:
        on_ready(server)
    await server.serve_forever()
