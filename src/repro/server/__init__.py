"""Concurrent serving: the asyncio JSON-lines TCP tier.

* :mod:`repro.server.protocol` -- framing, envelopes and the
  read/write/admin operation split;
* :mod:`repro.server.server` -- :class:`ReproServer`, the
  multi-reader/single-writer loop: reads answer from pinned
  :class:`~repro.store.snapshot.CollectionSnapshot` views, writes
  funnel through one writer task that group-commits batches with a
  single WAL sync, and acknowledgements imply durability.

The counterpart client (sync and async) is :mod:`repro.client`; the
command-line entry point is ``repro serve``.
"""

from repro.server.protocol import (
    ADMIN_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    READ_OPS,
    WRITE_OPS,
)
from repro.server.server import ReproServer, ServerMetrics, serve

__all__ = [
    "ReproServer",
    "ServerMetrics",
    "serve",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "READ_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
]
