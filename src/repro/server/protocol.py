"""The JSON-lines wire protocol: framing, envelopes, limits.

One connection carries a greeting followed by request/response pairs,
every message being **one JSON object per line** (UTF-8, ``\\n``
terminated, no pretty-printing)::

    S: {"server": "repro", "protocol": 1}
    C: {"id": 1, "op": "find", "collection": "people",
        "filter": {"age": {"$gt": 30}}}
    S: {"id": 1, "ok": true, "result": [{"name": "Sue", "age": 35}]}
    C: {"id": 2, "op": "update", "filter": {}, "update": {"$inc": {"n": 1}}}
    S: {"id": 2, "ok": false,
        "error": {"code": "store.read-only", "message": "..."}}

* every request carries a caller-chosen ``id`` (number or string); the
  response echoes it verbatim, so clients may pipeline;
* ``ok: true`` responses carry the operation's ``result``;
* ``ok: false`` responses carry an ``error`` payload from
  :func:`repro.errors.to_wire` -- a stable ``code``, a human message
  and optional structured ``data`` -- which clients rehydrate to the
  same exception class with :func:`repro.errors.from_wire`.

Operations split into **reads** (answered immediately against a pinned
collection snapshot), **writes** (funnelled through the server's single
writer task and group-committed), and **admin** (server lifecycle).
The split is part of the contract: a read is never blocked behind the
writer, and a write is never acknowledged before its group commit is
durable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import WireProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "READ_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
    "encode",
    "decode",
    "greeting",
    "ok_response",
    "error_response",
    "parse_request",
]

#: Protocol revision; the greeting carries it and clients refuse
#: revisions they do not speak.
PROTOCOL_VERSION = 1

#: Ceiling on one line (16 MiB): a longer frame is a protocol error,
#: not an allocation request.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Operations answered from a pinned snapshot, never queued.
READ_OPS = frozenset(
    {
        "find",
        "count",
        "aggregate",
        "select",
        "get",
        "validate",
        "explain",
    }
)

#: Operations funnelled through the single writer task (group commit).
WRITE_OPS = frozenset({"insert", "update", "replace", "remove", "compact"})

#: Server lifecycle and introspection.
ADMIN_OPS = frozenset({"ping", "stats", "collections", "shutdown"})


def encode(message: dict[str, Any]) -> bytes:
    """One message as its wire line (compact JSON + newline)."""
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> dict[str, Any]:
    """Parse one wire line; :class:`~repro.errors.WireProtocolError` on
    anything that is not a single JSON object."""
    if len(line) > MAX_LINE_BYTES:
        raise WireProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "line limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise WireProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def greeting() -> dict[str, Any]:
    """The server's first line on every connection."""
    return {"server": "repro", "protocol": PROTOCOL_VERSION}


def ok_response(request_id: Any, result: Any) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, error: BaseException) -> dict[str, Any]:
    from repro.errors import to_wire

    return {"id": request_id, "ok": False, "error": to_wire(error)}


def parse_request(message: dict[str, Any]) -> tuple[Any, str]:
    """Validate the request envelope; returns ``(id, op)``.

    The ``id`` may be any JSON scalar (echoed verbatim); the ``op``
    must be a known operation name.
    """
    request_id = message.get("id")
    if isinstance(request_id, (dict, list)):
        raise WireProtocolError("request id must be a JSON scalar")
    op = message.get("op")
    if not isinstance(op, str):
        raise WireProtocolError("request has no 'op' field")
    if op not in READ_OPS and op not in WRITE_OPS and op not in ADMIN_OPS:
        raise WireProtocolError(f"unknown operation {op!r}")
    return request_id, op
