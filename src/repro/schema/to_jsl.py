"""Theorem 1, forward direction: JSON Schema --> JSL.

The construction follows the appendix proof of Theorem 1 keyword by
keyword (with 0-based indices and the inclusive/strict offset for
``minimum``/``maximum`` documented in DESIGN.md):

* string schema     -> ``Str ^ Pattern(e)``
* number schema     -> ``Int ^ Min(min-1) ^ Max(max+1) ^ MultOf(k)``
* object schema     -> ``Obj ^ MinCh ^ MaxCh ^ DIA_k T (required)
                        ^ BOX_k phi (properties)
                        ^ BOX_e phi (patternProperties)
                        ^ BOX_C phi (additionalProperties)`` where ``C``
  is the complement of the union of all property keys and pattern
  languages;
* array schema      -> ``Arr ^ Unique ^ DIA_{i:i} phi_i (items)
                        ^ BOX_{n:inf} phi (additionalItems; falsity
                        when absent but items given)``
* ``allOf``/``anyOf``/``not``/``enum`` -> boolean structure / ``~(A)``;
* ``$ref``/``definitions`` -> recursive JSL (Theorem 3).
"""

from __future__ import annotations

from repro.automata.keylang import KeyLang
from repro.errors import SchemaError
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt
from repro.schema import ast

__all__ = ["schema_to_jsl", "schema_fragment_to_jsl"]


def schema_to_jsl(document: ast.Schema) -> jsl.Formula | jsl.RecursiveJSL:
    """Translate a schema document into (possibly recursive) JSL."""
    if isinstance(document, ast.SchemaDocument):
        base = schema_fragment_to_jsl(document.root)
        if not document.definitions:
            return base
        definitions = tuple(
            (name, schema_fragment_to_jsl(schema))
            for name, schema in document.definitions
        )
        return jsl.RecursiveJSL(definitions, base)
    return schema_fragment_to_jsl(document)


def schema_fragment_to_jsl(schema: ast.Schema) -> jsl.Formula:
    """Translate one schema (references become :class:`~repro.jsl.ast.Ref`)."""
    if isinstance(schema, ast.TrueSchema):
        return jsl.Top()
    if isinstance(schema, ast.StringSchema):
        parts: list[jsl.Formula] = [jsl.TestAtom(nt.IsString())]
        if schema.lang is not None:
            parts.append(jsl.TestAtom(nt.Pattern(schema.lang)))
        return jsl.conj(parts)
    if isinstance(schema, ast.NumberSchema):
        parts = [jsl.TestAtom(nt.IsNumber())]
        if schema.minimum is not None:
            # "minimum": i is inclusive; Min(i) is strict (> i).
            parts.append(jsl.TestAtom(nt.MinVal(schema.minimum - 1)))
        if schema.maximum is not None:
            parts.append(jsl.TestAtom(nt.MaxVal(schema.maximum + 1)))
        if schema.multiple_of is not None:
            parts.append(jsl.TestAtom(nt.MultOf(schema.multiple_of)))
        return jsl.conj(parts)
    if isinstance(schema, ast.ObjectSchema):
        return _object_to_jsl(schema)
    if isinstance(schema, ast.ArraySchema):
        return _array_to_jsl(schema)
    if isinstance(schema, ast.AllOf):
        return jsl.conj(schema_fragment_to_jsl(sub) for sub in schema.schemas)
    if isinstance(schema, ast.AnyOf):
        return jsl.disj(schema_fragment_to_jsl(sub) for sub in schema.schemas)
    if isinstance(schema, ast.NotSchema):
        return jsl.Not(schema_fragment_to_jsl(schema.schema))
    if isinstance(schema, ast.EnumSchema):
        return jsl.disj(
            jsl.TestAtom(nt.EqDocTest(doc)) for doc in schema.documents
        )
    if isinstance(schema, ast.RefSchema):
        return jsl.Ref(schema.name)
    if isinstance(schema, ast.SchemaDocument):
        raise SchemaError("nested schema documents are not allowed")
    raise TypeError(f"unknown schema {schema!r}")


def _object_to_jsl(schema: ast.ObjectSchema) -> jsl.Formula:
    parts: list[jsl.Formula] = [jsl.TestAtom(nt.IsObject())]
    if schema.min_properties is not None:
        parts.append(jsl.TestAtom(nt.MinCh(schema.min_properties)))
    if schema.max_properties is not None:
        parts.append(jsl.TestAtom(nt.MaxCh(schema.max_properties)))
    for required_key in schema.required:
        parts.append(jsl.DiaKey(KeyLang.word(required_key), jsl.Top()))
    for key, sub in schema.properties:
        parts.append(jsl.BoxKey(KeyLang.word(key), schema_fragment_to_jsl(sub)))
    for lang, (_pattern, sub) in zip(
        schema.pattern_langs, schema.pattern_properties
    ):
        parts.append(jsl.BoxKey(lang, schema_fragment_to_jsl(sub)))
    if schema.additional_properties is not None:
        constrained = [KeyLang.word(key) for key, _sub in schema.properties]
        constrained.extend(schema.pattern_langs)
        complement = KeyLang.union(constrained).complement()
        parts.append(
            jsl.BoxKey(
                complement, schema_fragment_to_jsl(schema.additional_properties)
            )
        )
    return jsl.conj(parts)


def _array_to_jsl(schema: ast.ArraySchema) -> jsl.Formula:
    parts: list[jsl.Formula] = [jsl.TestAtom(nt.IsArray())]
    if schema.unique_items:
        parts.append(jsl.TestAtom(nt.Unique()))
    item_count = 0
    if schema.items is not None:
        item_count = len(schema.items)
        for position, sub in enumerate(schema.items):
            parts.append(
                jsl.DiaIdx(position, position, schema_fragment_to_jsl(sub))
            )
    if schema.additional_items is not None:
        parts.append(
            jsl.BoxIdx(
                item_count, None, schema_fragment_to_jsl(schema.additional_items)
            )
        )
    elif schema.items is not None:
        # No additionalItems: "there cannot be more children".
        parts.append(jsl.BoxIdx(item_count, None, jsl.bottom()))
    return jsl.conj(parts)
