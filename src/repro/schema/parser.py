"""Parsing JSON Schema documents into the Table-1 core fragment.

``parse_schema`` accepts a Python dict (or JSON text) and produces a
:class:`~repro.schema.ast.SchemaDocument`.  The parser is strict: any
keyword outside the paper's core fragment raises
:class:`~repro.errors.SchemaError` (annotation-only keywords such as
``title`` / ``description`` / ``$schema`` are ignored, as they carry no
validation semantics).
"""

from __future__ import annotations

import json as _json
from typing import Any

from repro.automata.keylang import KeyLang
from repro.errors import RegexParseError, SchemaError
from repro.model.pointer import parse_pointer
from repro.model.tree import JSONTree
from repro.schema import ast

__all__ = ["parse_schema", "parse_schema_fragment"]

_ANNOTATIONS = {"title", "description", "$schema", "id", "$id", "default", "examples"}

_STRING_KEYWORDS = {"type", "pattern"}
_NUMBER_KEYWORDS = {"type", "minimum", "maximum", "multipleOf"}
_OBJECT_KEYWORDS = {
    "type",
    "required",
    "minProperties",
    "maxProperties",
    "properties",
    "patternProperties",
    "additionalProperties",
}
_ARRAY_KEYWORDS = {"type", "items", "additionalItems", "uniqueItems"}


def parse_schema(source: Any) -> ast.SchemaDocument:
    """Parse a top-level schema (dict or JSON text) with ``definitions``."""
    if isinstance(source, str):
        try:
            source = _json.loads(source)
        except _json.JSONDecodeError as exc:
            raise SchemaError(f"invalid JSON: {exc}") from exc
    if not isinstance(source, dict):
        raise SchemaError(
            f"a JSON Schema is a JSON object, got {type(source).__name__}"
        )
    definitions: list[tuple[str, ast.Schema]] = []
    body = dict(source)
    raw_definitions = body.pop("definitions", None)
    if raw_definitions is not None:
        if not isinstance(raw_definitions, dict):
            raise SchemaError('"definitions" must be an object')
        for name, sub in raw_definitions.items():
            definitions.append((name, parse_schema_fragment(sub)))
    root = parse_schema_fragment(body)
    return ast.SchemaDocument(root, tuple(definitions))


def parse_schema_fragment(source: Any) -> ast.Schema:
    """Parse one schema object (no ``definitions`` section allowed)."""
    if not isinstance(source, dict):
        raise SchemaError(
            f"a JSON Schema is a JSON object, got {type(source).__name__}"
        )
    body = {
        key: value for key, value in source.items() if key not in _ANNOTATIONS
    }
    if not body:
        return ast.TrueSchema()
    if "$ref" in body:
        return _parse_ref(body)
    if "type" in body:
        return _parse_typed(body)
    return _parse_combinator(body)


def _parse_ref(body: dict[str, Any]) -> ast.Schema:
    _reject_extras(body, {"$ref"}, "$ref")
    pointer = body["$ref"]
    if not isinstance(pointer, str):
        raise SchemaError('"$ref" must be a string')
    tokens = parse_pointer(pointer)
    if len(tokens) != 2 or tokens[0] != "definitions":
        raise SchemaError(
            f'only "#/definitions/<name>" references are in the core '
            f"fragment, got {pointer!r}"
        )
    return ast.RefSchema(tokens[1])


def _parse_combinator(body: dict[str, Any]) -> ast.Schema:
    combinators = [key for key in ("allOf", "anyOf", "not", "enum") if key in body]
    if not combinators:
        raise SchemaError(
            f"schema outside the core fragment (keywords: {sorted(body)})"
        )
    if len(body) != 1:
        raise SchemaError(
            f"a boolean-combination schema must use a single keyword, "
            f"got {sorted(body)}"
        )
    keyword = combinators[0]
    value = body[keyword]
    if keyword == "not":
        return ast.NotSchema(parse_schema_fragment(value))
    if keyword == "enum":
        if not isinstance(value, list) or not value:
            raise SchemaError('"enum" must be a non-empty array')
        return ast.EnumSchema(tuple(JSONTree.from_value(doc) for doc in value))
    if not isinstance(value, list) or not value:
        raise SchemaError(f'"{keyword}" must be a non-empty array of schemas')
    schemas = tuple(parse_schema_fragment(sub) for sub in value)
    return ast.AllOf(schemas) if keyword == "allOf" else ast.AnyOf(schemas)


def _parse_typed(body: dict[str, Any]) -> ast.Schema:
    type_name = body["type"]
    if type_name == "string":
        return _parse_string(body)
    if type_name in ("number", "integer"):
        return _parse_number(body)
    if type_name == "object":
        return _parse_object(body)
    if type_name == "array":
        return _parse_array(body)
    raise SchemaError(f"unknown type {type_name!r}")


def _reject_extras(body: dict[str, Any], allowed: set[str], kind: str) -> None:
    extras = set(body) - allowed
    if extras:
        raise SchemaError(
            f"keywords {sorted(extras)} are not allowed in a {kind} schema "
            "(core fragment)"
        )


def _parse_pattern(pattern: Any, context: str) -> KeyLang:
    if not isinstance(pattern, str):
        raise SchemaError(f"{context} must be a string")
    try:
        return KeyLang.regex(pattern)
    except RegexParseError as exc:
        raise SchemaError(f"bad regular expression in {context}: {exc}") from exc


def _parse_natural(value: Any, context: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise SchemaError(f"{context} must be a natural number, got {value!r}")
    return value


def _parse_string(body: dict[str, Any]) -> ast.Schema:
    _reject_extras(body, _STRING_KEYWORDS, "string")
    pattern = body.get("pattern")
    if pattern is None:
        return ast.StringSchema()
    return ast.StringSchema(pattern, _parse_pattern(pattern, '"pattern"'))


def _parse_number(body: dict[str, Any]) -> ast.Schema:
    _reject_extras(body, _NUMBER_KEYWORDS, "number")
    minimum = body.get("minimum")
    maximum = body.get("maximum")
    multiple_of = body.get("multipleOf")
    return ast.NumberSchema(
        None if minimum is None else _parse_natural(minimum, '"minimum"'),
        None if maximum is None else _parse_natural(maximum, '"maximum"'),
        None if multiple_of is None else _parse_natural(multiple_of, '"multipleOf"'),
    )


def _parse_object(body: dict[str, Any]) -> ast.Schema:
    _reject_extras(body, _OBJECT_KEYWORDS, "object")
    required = body.get("required", [])
    if not isinstance(required, list) or not all(
        isinstance(key, str) for key in required
    ):
        raise SchemaError('"required" must be an array of strings')
    properties_raw = body.get("properties", {})
    if not isinstance(properties_raw, dict):
        raise SchemaError('"properties" must be an object')
    properties = tuple(
        (key, parse_schema_fragment(sub)) for key, sub in properties_raw.items()
    )
    patterns_raw = body.get("patternProperties", {})
    if not isinstance(patterns_raw, dict):
        raise SchemaError('"patternProperties" must be an object')
    pattern_properties = tuple(
        (pattern, parse_schema_fragment(sub)) for pattern, sub in patterns_raw.items()
    )
    pattern_langs = tuple(
        _parse_pattern(pattern, '"patternProperties"') for pattern in patterns_raw
    )
    additional = body.get("additionalProperties")
    min_properties = body.get("minProperties")
    max_properties = body.get("maxProperties")
    return ast.ObjectSchema(
        required=tuple(required),
        min_properties=None
        if min_properties is None
        else _parse_natural(min_properties, '"minProperties"'),
        max_properties=None
        if max_properties is None
        else _parse_natural(max_properties, '"maxProperties"'),
        properties=properties,
        pattern_properties=pattern_properties,
        additional_properties=None
        if additional is None
        else parse_schema_fragment(additional),
        pattern_langs=pattern_langs,
    )


def _parse_array(body: dict[str, Any]) -> ast.Schema:
    _reject_extras(body, _ARRAY_KEYWORDS, "array")
    items_raw = body.get("items")
    items: tuple[ast.Schema, ...] | None
    if items_raw is None:
        items = None
    elif isinstance(items_raw, list):
        items = tuple(parse_schema_fragment(sub) for sub in items_raw)
    else:
        raise SchemaError(
            '"items" must be an array of schemas in the core fragment'
        )
    additional_raw = body.get("additionalItems")
    additional = (
        None if additional_raw is None else parse_schema_fragment(additional_raw)
    )
    unique = body.get("uniqueItems", False)
    if unique not in (True, False):
        raise SchemaError('"uniqueItems" must be true or false')
    return ast.ArraySchema(items, additional, bool(unique))
