"""Theorem 1, reverse direction: JSL --> JSON Schema.

The appendix proof sketches this construction; two spots need repair to
be correct under the paper's own semantics, and we implement the
repaired version (differentially tested against the forward direction):

* ``BOX_e phi`` as ``patternProperties`` only constrains *objects*,
  but the JSL formula holds vacuously on strings, numbers and arrays --
  so the schema is an ``anyOf`` of the non-object types and the object
  form.  The same applies to index boxes.
* ``DIA_{i:j} phi`` is existential; the sketch's ``items`` list (which
  *requires* every listed position) is the box form.  We translate
  diamonds by duality ``DIA = not BOX not``, keeping the special case
  ``DIA_w T = required`` for readability.
* array boxes respect array length: positions below ``i`` are free,
  arrays shorter than ``i`` satisfy the box vacuously, so the
  translation enumerates the short lengths explicitly (indices are in
  unary, as in the paper's own MinCh/MaxCh constructions).

Key languages that are not literal words/regexes (e.g. the complement
language of ``additionalProperties``) are rendered back into a single
``pattern`` string via DFA-to-regex extraction
(:func:`repro.automata.regex.dfa_to_regex_text`).
"""

from __future__ import annotations

from repro.automata.keylang import KeyLang
from repro.errors import TranslationError
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt
from repro.schema import ast

__all__ = ["jsl_to_schema", "jsl_formula_to_schema"]

_TRUE = ast.TrueSchema()
_FALSE = ast.NotSchema(ast.TrueSchema())


def jsl_to_schema(formula: jsl.Formula | jsl.RecursiveJSL) -> ast.SchemaDocument:
    """Translate (possibly recursive) JSL into a schema document."""
    if isinstance(formula, jsl.RecursiveJSL):
        definitions = tuple(
            (name, jsl_formula_to_schema(body))
            for name, body in formula.definitions
        )
        return ast.SchemaDocument(jsl_formula_to_schema(formula.base), definitions)
    return ast.SchemaDocument(jsl_formula_to_schema(formula), ())


def jsl_formula_to_schema(formula: jsl.Formula) -> ast.Schema:
    if isinstance(formula, jsl.Top):
        return _TRUE
    if isinstance(formula, jsl.Not):
        return ast.NotSchema(jsl_formula_to_schema(formula.operand))
    if isinstance(formula, jsl.And):
        return ast.AllOf(
            (
                jsl_formula_to_schema(formula.left),
                jsl_formula_to_schema(formula.right),
            )
        )
    if isinstance(formula, jsl.Or):
        return ast.AnyOf(
            (
                jsl_formula_to_schema(formula.left),
                jsl_formula_to_schema(formula.right),
            )
        )
    if isinstance(formula, jsl.TestAtom):
        return _test_to_schema(formula.test)
    if isinstance(formula, jsl.DiaKey):
        return _dia_key_to_schema(formula)
    if isinstance(formula, jsl.BoxKey):
        return _box_key_to_schema(formula)
    if isinstance(formula, jsl.DiaIdx):
        # DIA_{i:j} = not BOX_{i:j} not.
        return ast.NotSchema(
            _box_idx_to_schema(
                jsl.BoxIdx(formula.low, formula.high, jsl.Not(formula.body))
            )
        )
    if isinstance(formula, jsl.BoxIdx):
        return _box_idx_to_schema(formula)
    if isinstance(formula, jsl.Ref):
        return ast.RefSchema(formula.name)
    raise TypeError(f"unknown JSL formula {formula!r}")


def _test_to_schema(test: nt.NodeTest) -> ast.Schema:
    if isinstance(test, nt.IsObject):
        return ast.ObjectSchema()
    if isinstance(test, nt.IsArray):
        return ast.ArraySchema()
    if isinstance(test, nt.IsString):
        return ast.StringSchema()
    if isinstance(test, nt.IsNumber):
        return ast.NumberSchema()
    if isinstance(test, nt.Unique):
        return ast.ArraySchema(unique_items=True)
    if isinstance(test, nt.Pattern):
        pattern = test.lang.to_pattern_text()
        if pattern is None:
            return _FALSE  # Pattern over the empty language
        return ast.StringSchema(pattern, KeyLang.regex(pattern))
    if isinstance(test, nt.MinVal):
        # Min(i): value > i, i.e. inclusive minimum i+1 (numbers are
        # naturals, so a non-positive bound is vacuous on numbers).
        if test.bound < 0:
            return ast.NumberSchema()
        return ast.NumberSchema(minimum=test.bound + 1)
    if isinstance(test, nt.MaxVal):
        # Max(i): value < i, i.e. inclusive maximum i-1.
        if test.bound <= 0:
            return _FALSE  # no natural number is < 0
        return ast.NumberSchema(maximum=test.bound - 1)
    if isinstance(test, nt.MultOf):
        return ast.NumberSchema(multiple_of=test.divisor)
    if isinstance(test, nt.MinCh):
        if test.count <= 0:
            return _TRUE
        return ast.AnyOf(
            (
                ast.ObjectSchema(min_properties=test.count),
                ast.ArraySchema(
                    items=(_TRUE,) * test.count, additional_items=_TRUE
                ),
            )
        )
    if isinstance(test, nt.MaxCh):
        arrays = tuple(
            _exact_length_array((_TRUE,) * length)
            for length in range(test.count + 1)
        )
        return ast.AnyOf(
            (
                ast.StringSchema(),
                ast.NumberSchema(),
                ast.ObjectSchema(max_properties=test.count),
            )
            + arrays
        )
    if isinstance(test, nt.EqDocTest):
        return ast.EnumSchema((test.doc,))
    raise TypeError(f"unknown node test {test!r}")


def _exact_length_array(items: tuple[ast.Schema, ...]) -> ast.ArraySchema:
    """An array of exactly these positions (items required, no extras)."""
    return ast.ArraySchema(items=items, additional_items=None)


def _pattern_of(lang: KeyLang) -> tuple[str, KeyLang]:
    pattern = lang.to_pattern_text()
    if pattern is None:
        raise TranslationError(
            "cannot render the empty key language as a pattern"
        )
    return pattern, lang


def _non_object_types() -> tuple[ast.Schema, ...]:
    return (ast.StringSchema(), ast.NumberSchema(), ast.ArraySchema())


def _non_array_types() -> tuple[ast.Schema, ...]:
    return (ast.StringSchema(), ast.NumberSchema(), ast.ObjectSchema())


def _dia_key_to_schema(formula: jsl.DiaKey) -> ast.Schema:
    word = formula.lang.single_word
    if word is not None and isinstance(formula.body, jsl.Top):
        return ast.ObjectSchema(required=(word,))
    if formula.lang.is_empty():
        return _FALSE
    # DIA_e phi = not BOX_e not phi ... but the box translation is
    # disjoined with non-object types, so restrict to objects first:
    # DIA_e phi  =  Obj ^ not(BOX-as-schema(e, not phi) restricted).
    box = _box_key_object_form(jsl.BoxKey(formula.lang, jsl.Not(formula.body)))
    return ast.AllOf((ast.ObjectSchema(), ast.NotSchema(box)))


def _box_key_object_form(formula: jsl.BoxKey) -> ast.Schema:
    pattern, lang = _pattern_of(formula.lang)
    body = jsl_formula_to_schema(formula.body)
    return ast.ObjectSchema(
        pattern_properties=((pattern, body),), pattern_langs=(lang,)
    )


def _box_key_to_schema(formula: jsl.BoxKey) -> ast.Schema:
    if formula.lang.is_empty():
        return _TRUE
    return ast.AnyOf(_non_object_types() + (_box_key_object_form(formula),))


def _box_idx_to_schema(formula: jsl.BoxIdx) -> ast.Schema:
    body = jsl_formula_to_schema(formula.body)
    low, high = formula.low, formula.high
    # Arrays shorter than `low` satisfy the box vacuously.
    short_arrays = tuple(
        _exact_length_array((_TRUE,) * length) for length in range(low)
    )
    if high is None:
        long_form: tuple[ast.Schema, ...] = (
            ast.ArraySchema(items=(_TRUE,) * low, additional_items=body),
        )
    else:
        # Lengths low..high constrain positions low..length-1 ...
        mid_forms = tuple(
            _exact_length_array((_TRUE,) * low + (body,) * (length - low))
            for length in range(low, high + 1)
        )
        # ... and longer arrays constrain exactly positions low..high.
        tail = ast.ArraySchema(
            items=(_TRUE,) * low + (body,) * (high - low + 1),
            additional_items=_TRUE,
        )
        long_form = mid_forms + (tail,)
    return ast.AnyOf(_non_array_types() + short_arrays + long_form)
