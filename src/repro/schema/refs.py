"""Well-formedness of recursive schemas (Section 5.3 / Theorem 3).

A ``$ref`` is *guarded* when it sits under a structural keyword
(``properties``, ``patternProperties``, ``additionalProperties``,
``items``, ``additionalItems``) -- validation will only re-enter the
referenced definition at a strictly deeper node.  References reachable
through boolean combinators only (``allOf``/``anyOf``/``not``/top
level) are unguarded; the precedence graph over unguarded references
must be acyclic, mirroring the condition for recursive JSL.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.jsl.recursion import find_cycle
from repro.schema import ast

__all__ = [
    "unguarded_schema_refs",
    "schema_precedence_graph",
    "check_schema_well_formed",
    "is_schema_well_formed",
    "all_schema_refs",
]


def unguarded_schema_refs(schema: ast.Schema) -> set[str]:
    """Definition names referenced outside any structural keyword."""
    refs: set[str] = set()
    stack: list[ast.Schema] = [schema]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.RefSchema):
            refs.add(current.name)
        elif isinstance(current, (ast.AllOf, ast.AnyOf)):
            stack.extend(current.schemas)
        elif isinstance(current, ast.NotSchema):
            stack.append(current.schema)
        # Typed schemas guard their subschemas: do not descend.
    return refs


def all_schema_refs(schema: ast.Schema) -> set[str]:
    """All definition names referenced anywhere in the schema."""
    refs: set[str] = set()
    stack: list[ast.Schema] = [schema]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.RefSchema):
            refs.add(current.name)
        elif isinstance(current, (ast.AllOf, ast.AnyOf)):
            stack.extend(current.schemas)
        elif isinstance(current, ast.NotSchema):
            stack.append(current.schema)
        elif isinstance(current, ast.ObjectSchema):
            stack.extend(sub for _key, sub in current.properties)
            stack.extend(sub for _pattern, sub in current.pattern_properties)
            if current.additional_properties is not None:
                stack.append(current.additional_properties)
        elif isinstance(current, ast.ArraySchema):
            if current.items is not None:
                stack.extend(current.items)
            if current.additional_items is not None:
                stack.append(current.additional_items)
        elif isinstance(current, ast.SchemaDocument):
            stack.append(current.root)
            stack.extend(sub for _name, sub in current.definitions)
    return refs


def schema_precedence_graph(document: ast.SchemaDocument) -> dict[str, set[str]]:
    names = {name for name, _schema in document.definitions}
    return {
        name: unguarded_schema_refs(schema) & names
        for name, schema in document.definitions
    }


def check_schema_well_formed(document: ast.SchemaDocument) -> None:
    """Raise :class:`WellFormednessError` on bad recursion or bad refs."""
    names = {name for name, _schema in document.definitions}
    if len(names) != len(document.definitions):
        raise WellFormednessError("duplicate definition names")
    for name, schema in document.definitions:
        missing = all_schema_refs(schema) - names
        if missing:
            raise WellFormednessError(
                f"definition {name!r} references undefined schemas: "
                f"{sorted(missing)}"
            )
    missing = all_schema_refs(document.root) - names
    if missing:
        raise WellFormednessError(
            f"root schema references undefined schemas: {sorted(missing)}"
        )
    cycle = find_cycle(schema_precedence_graph(document))
    if cycle is not None:
        raise WellFormednessError(
            "cyclic (unguarded) $ref precedence: "
            + " -> ".join(cycle + [cycle[0]])
        )


def is_schema_well_formed(document: ast.SchemaDocument) -> bool:
    try:
        check_schema_well_formed(document)
    except WellFormednessError:
        return False
    return True
