"""JSON Schema (Table-1 core fragment) with Theorem-1/3 translations.

* :mod:`repro.schema.ast` / :mod:`repro.schema.parser` -- typed schema
  trees and parsing from JSON;
* :mod:`repro.schema.validator` -- direct validation;
* :mod:`repro.schema.to_jsl` / :mod:`repro.schema.from_jsl` -- the
  Theorem-1 translations (both directions);
* :mod:`repro.schema.refs` -- ``definitions``/``$ref`` well-formedness
  (Theorem 3).
"""

from repro.schema.ast import (
    AllOf,
    AnyOf,
    ArraySchema,
    EnumSchema,
    NotSchema,
    NumberSchema,
    ObjectSchema,
    RefSchema,
    Schema,
    SchemaDocument,
    StringSchema,
    TrueSchema,
)
from repro.schema.from_jsl import jsl_formula_to_schema, jsl_to_schema
from repro.schema.parser import parse_schema, parse_schema_fragment
from repro.schema.refs import (
    check_schema_well_formed,
    is_schema_well_formed,
    schema_precedence_graph,
)
from repro.schema.to_jsl import schema_fragment_to_jsl, schema_to_jsl
from repro.schema.validator import SchemaValidator, validates, validates_value

__all__ = [
    "Schema",
    "TrueSchema",
    "StringSchema",
    "NumberSchema",
    "ObjectSchema",
    "ArraySchema",
    "AllOf",
    "AnyOf",
    "NotSchema",
    "EnumSchema",
    "RefSchema",
    "SchemaDocument",
    "parse_schema",
    "parse_schema_fragment",
    "SchemaValidator",
    "validates",
    "validates_value",
    "schema_to_jsl",
    "schema_fragment_to_jsl",
    "jsl_to_schema",
    "jsl_formula_to_schema",
    "check_schema_well_formed",
    "is_schema_well_formed",
    "schema_precedence_graph",
]
