"""Direct validation of JSON documents against core-fragment schemas.

``SchemaValidator`` implements the validation relation of the paper /
[29] directly over :class:`~repro.model.tree.JSONTree`, including the
recursive ``definitions`` / ``$ref`` mechanism (checked well-formed
first, so validation always terminates).

Theorem 1 is tested by running this validator against the
``schema -> JSL -> evaluate`` pipeline on random schema/document pairs.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.model.equality import all_children_distinct, subtree_equal
from repro.model.tree import JSONTree, JSONValue, Kind
from repro.schema import ast
from repro.schema.refs import check_schema_well_formed

__all__ = ["SchemaValidator", "validates", "validates_value"]


class SchemaValidator:
    """Validates documents against one parsed schema document."""

    def __init__(
        self,
        document: ast.Schema,
        *,
        exact_unique: bool = False,
    ) -> None:
        if isinstance(document, ast.SchemaDocument):
            self.root = document.root
            self.definitions = document.definition_map()
            check_schema_well_formed(document)
        else:
            self.root = document
            self.definitions = {}
        self.document = document
        self.exact_unique = exact_unique
        # Property maps per object schema, built once per validator
        # instead of once per visited object node per call.  Keyed by
        # identity: the schemas are reachable from ``self.document``,
        # so the ids stay valid for the validator's lifetime.
        self._prop_maps: dict[int, dict[str, ast.Schema]] = {}

    # ------------------------------------------------------------------

    def validate(self, tree: JSONTree, node: int | None = None) -> bool:
        """Does the document (subtree at ``node``) validate?"""
        target = tree.root if node is None else node
        memo: dict[tuple[int, int], bool] = {}
        return self._valid(self.root, tree, target, memo)

    def validate_value(self, value: JSONValue) -> bool:
        return self.validate(JSONTree.from_value(value))

    # ------------------------------------------------------------------

    def _valid(
        self,
        schema: ast.Schema,
        tree: JSONTree,
        node: int,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        key = (id(schema), node)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = self._dispatch(schema, tree, node, memo)
        memo[key] = result
        return result

    def _dispatch(
        self,
        schema: ast.Schema,
        tree: JSONTree,
        node: int,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if isinstance(schema, ast.TrueSchema):
            return True
        if isinstance(schema, ast.StringSchema):
            if tree.kind(node) is not Kind.STRING:
                return False
            if schema.lang is None:
                return True
            return schema.lang.matches(str(tree.value(node)))
        if isinstance(schema, ast.NumberSchema):
            if tree.kind(node) is not Kind.NUMBER:
                return False
            value = int(tree.value(node))
            if schema.minimum is not None and value < schema.minimum:
                return False
            if schema.maximum is not None and value > schema.maximum:
                return False
            if schema.multiple_of is not None:
                if schema.multiple_of == 0:
                    return value == 0
                return value % schema.multiple_of == 0
            return True
        if isinstance(schema, ast.ObjectSchema):
            return self._valid_object(schema, tree, node, memo)
        if isinstance(schema, ast.ArraySchema):
            return self._valid_array(schema, tree, node, memo)
        if isinstance(schema, ast.AllOf):
            return all(
                self._valid(sub, tree, node, memo) for sub in schema.schemas
            )
        if isinstance(schema, ast.AnyOf):
            return any(
                self._valid(sub, tree, node, memo) for sub in schema.schemas
            )
        if isinstance(schema, ast.NotSchema):
            return not self._valid(schema.schema, tree, node, memo)
        if isinstance(schema, ast.EnumSchema):
            return any(
                subtree_equal(tree, node, doc, doc.root)
                for doc in schema.documents
            )
        if isinstance(schema, ast.RefSchema):
            target = self.definitions.get(schema.name)
            if target is None:
                raise SchemaError(f"unresolved $ref #/definitions/{schema.name}")
            return self._valid(target, tree, node, memo)
        if isinstance(schema, ast.SchemaDocument):
            raise SchemaError("nested schema documents are not allowed")
        raise TypeError(f"unknown schema {schema!r}")

    def _valid_object(
        self,
        schema: ast.ObjectSchema,
        tree: JSONTree,
        node: int,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if tree.kind(node) is not Kind.OBJECT:
            return False
        count = tree.num_children(node)
        if schema.min_properties is not None and count < schema.min_properties:
            return False
        if schema.max_properties is not None and count > schema.max_properties:
            return False
        for required_key in schema.required:
            if tree.object_child(node, required_key) is None:
                return False
        properties = self._prop_maps.get(id(schema))
        if properties is None:
            properties = dict(schema.properties)
            self._prop_maps[id(schema)] = properties
        for label, child in tree.edges(node):
            assert isinstance(label, str)
            constrained = False
            prop_schema = properties.get(label)
            if prop_schema is not None:
                constrained = True
                if not self._valid(prop_schema, tree, child, memo):
                    return False
            for (pattern_text, sub), lang in zip(
                schema.pattern_properties, schema.pattern_langs
            ):
                del pattern_text
                if lang.matches(label):
                    constrained = True
                    if not self._valid(sub, tree, child, memo):
                        return False
            if not constrained and schema.additional_properties is not None:
                if not self._valid(
                    schema.additional_properties, tree, child, memo
                ):
                    return False
        return True

    def _valid_array(
        self,
        schema: ast.ArraySchema,
        tree: JSONTree,
        node: int,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if tree.kind(node) is not Kind.ARRAY:
            return False
        if schema.unique_items and not all_children_distinct(
            tree, node, exact_pairwise=self.exact_unique
        ):
            return False
        children = tree.array_children(node)
        if schema.items is None:
            if schema.additional_items is not None:
                return all(
                    self._valid(schema.additional_items, tree, child, memo)
                    for child in children
                )
            return True
        # Paper's Theorem-1 semantics: the first len(items) positions
        # are required (DIA_{i:i}); extras need additionalItems.
        if len(children) < len(schema.items):
            return False
        for position, sub in enumerate(schema.items):
            if not self._valid(sub, tree, children[position], memo):
                return False
        extras = children[len(schema.items) :]
        if not extras:
            return True
        if schema.additional_items is None:
            return False
        return all(
            self._valid(schema.additional_items, tree, child, memo)
            for child in extras
        )


def validates(
    document: ast.Schema, tree: JSONTree, node: int | None = None
) -> bool:
    """One-shot validation of a tree against a schema.

    Routed through the compiled-validator cache: repeated calls with a
    structurally equal schema reuse one compiled program instead of
    re-checking well-formedness and re-interpreting the AST.
    """
    from repro.validate import compile_schema_validator

    return compile_schema_validator(document).validate_tree(tree, node)


def validates_value(document: ast.Schema, value: JSONValue) -> bool:
    """One-shot validation of a Python value against a schema.

    The compiled program is cached, but the value is still materialised
    as a :class:`JSONTree` so values outside the paper's abstraction
    (floats, booleans, ``null``) are rejected anywhere in the document,
    exactly like the seed path.  For the no-tree fast path (which
    checks values lazily, where the schema inspects them) call
    :meth:`~repro.validate.CompiledValidator.validate_value` on a
    compiled validator directly.
    """
    from repro.validate import compile_schema_validator

    return compile_schema_validator(document).validate_tree(
        JSONTree.from_value(value)
    )
