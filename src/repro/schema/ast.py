"""The JSON Schema core fragment of Table 1, as typed syntax trees.

Schema kinds:

* string schemas  -- ``type: string`` with optional ``pattern``;
* number schemas  -- ``type: number`` with ``minimum`` / ``maximum`` /
  ``multipleOf``;
* object schemas  -- ``type: object`` with ``required``,
  ``minProperties`` / ``maxProperties``, ``properties``,
  ``patternProperties``, ``additionalProperties``;
* array schemas   -- ``type: array`` with ``items``,
  ``additionalItems``, ``uniqueItems``;
* boolean combinations -- ``allOf`` / ``anyOf`` / ``not`` / ``enum``;
* references      -- ``{"$ref": "#/definitions/<name>"}`` resolving
  into the reserved top-level ``definitions`` section (Section 5.3);
* the empty schema ``{}`` which validates everything.

Semantic conventions (documented in DESIGN.md):

* a ``type`` schema validates only documents of that type;
* ``minimum`` / ``maximum`` are **inclusive** (the paper's node tests
  ``Min`` / ``Max`` are strict; the translations offset by one);
* following the paper's Theorem-1 formula, ``items: [S1..Sn]``
  *requires* the first ``n`` positions to exist; extra positions are
  allowed only when ``additionalItems`` is present, and must satisfy it;
* ``pattern`` and ``patternProperties`` expressions are anchored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.automata.keylang import KeyLang
from repro.model.tree import JSONTree

__all__ = [
    "Schema",
    "TrueSchema",
    "StringSchema",
    "NumberSchema",
    "ObjectSchema",
    "ArraySchema",
    "AllOf",
    "AnyOf",
    "NotSchema",
    "EnumSchema",
    "RefSchema",
    "SchemaDocument",
]


class Schema:
    """Base class of schema syntax trees."""

    __slots__ = ()

    def to_value(self) -> Any:
        """Serialise back to the JSON form of the schema."""
        raise NotImplementedError


@dataclass(frozen=True)
class TrueSchema(Schema):
    """``{}`` -- validates against any document."""

    def to_value(self) -> Any:
        return {}


@dataclass(frozen=True)
class StringSchema(Schema):
    pattern: str | None = None
    # Parsed language for the pattern (derived; excluded from eq/hash).
    lang: KeyLang | None = field(default=None, compare=False, repr=False)

    def to_value(self) -> Any:
        value: dict[str, Any] = {"type": "string"}
        if self.pattern is not None:
            value["pattern"] = self.pattern
        return value


@dataclass(frozen=True)
class NumberSchema(Schema):
    minimum: int | None = None
    maximum: int | None = None
    multiple_of: int | None = None

    def to_value(self) -> Any:
        value: dict[str, Any] = {"type": "number"}
        if self.minimum is not None:
            value["minimum"] = self.minimum
        if self.maximum is not None:
            value["maximum"] = self.maximum
        if self.multiple_of is not None:
            value["multipleOf"] = self.multiple_of
        return value


@dataclass(frozen=True)
class ObjectSchema(Schema):
    required: tuple[str, ...] = ()
    min_properties: int | None = None
    max_properties: int | None = None
    properties: tuple[tuple[str, Schema], ...] = ()
    pattern_properties: tuple[tuple[str, Schema], ...] = ()
    additional_properties: Schema | None = None
    # Parsed pattern languages, positionally matching pattern_properties.
    pattern_langs: tuple[KeyLang, ...] = field(
        default=(), compare=False, repr=False
    )

    def to_value(self) -> Any:
        value: dict[str, Any] = {"type": "object"}
        if self.required:
            value["required"] = list(self.required)
        if self.min_properties is not None:
            value["minProperties"] = self.min_properties
        if self.max_properties is not None:
            value["maxProperties"] = self.max_properties
        if self.properties:
            value["properties"] = {
                key: schema.to_value() for key, schema in self.properties
            }
        if self.pattern_properties:
            value["patternProperties"] = {
                pattern: schema.to_value()
                for pattern, schema in self.pattern_properties
            }
        if self.additional_properties is not None:
            value["additionalProperties"] = self.additional_properties.to_value()
        return value


@dataclass(frozen=True)
class ArraySchema(Schema):
    items: tuple[Schema, ...] | None = None
    additional_items: Schema | None = None
    unique_items: bool = False

    def to_value(self) -> Any:
        value: dict[str, Any] = {"type": "array"}
        if self.items is not None:
            value["items"] = [schema.to_value() for schema in self.items]
        if self.additional_items is not None:
            value["additionalItems"] = self.additional_items.to_value()
        if self.unique_items:
            value["uniqueItems"] = True
        return value


@dataclass(frozen=True)
class AllOf(Schema):
    schemas: tuple[Schema, ...]

    def to_value(self) -> Any:
        return {"allOf": [schema.to_value() for schema in self.schemas]}


@dataclass(frozen=True)
class AnyOf(Schema):
    schemas: tuple[Schema, ...]

    def to_value(self) -> Any:
        return {"anyOf": [schema.to_value() for schema in self.schemas]}


@dataclass(frozen=True)
class NotSchema(Schema):
    schema: Schema

    def to_value(self) -> Any:
        return {"not": self.schema.to_value()}


@dataclass(frozen=True)
class EnumSchema(Schema):
    """``enum: [A1..An]`` -- equals one of the constant documents."""

    documents: tuple[JSONTree, ...]

    def to_value(self) -> Any:
        return {"enum": [doc.to_value() for doc in self.documents]}


@dataclass(frozen=True)
class RefSchema(Schema):
    """``{"$ref": "#/definitions/<name>"}``."""

    name: str

    def to_value(self) -> Any:
        return {"$ref": f"#/definitions/{self.name}"}


@dataclass(frozen=True)
class SchemaDocument(Schema):
    """A top-level schema: root schema plus the ``definitions`` section."""

    root: Schema
    definitions: tuple[tuple[str, Schema], ...] = ()

    def definition_map(self) -> dict[str, Schema]:
        return dict(self.definitions)

    def to_value(self) -> Any:
        value = self.root.to_value()
        if self.definitions:
            if not isinstance(value, dict):  # pragma: no cover - defensive
                raise TypeError("schema root must serialise to an object")
            value = {
                "definitions": {
                    name: schema.to_value() for name, schema in self.definitions
                },
                **value,
            }
        return value
