"""MongoDB's ``find`` projection: the paper's Section-6 outlook, built.

Section 6 leaves the *second* argument of ``find`` — the projection —
as future work: "the idea of the projection argument is to select only
those subtrees of input documents that can be reached by certain
navigation instructions, thus defining a JSON to JSON transformation".
This module implements exactly that transformation for the practical
core of MongoDB's projection language:

* inclusion projections ``{"a": 1, "b.c": 1}`` — keep only the listed
  paths (an object containing none of them projects to ``{}``);
* exclusion projections ``{"a": 0, "b.c": 0}`` — keep everything else;
* dotted paths traverse objects; a path *through* an array applies to
  every element (MongoDB semantics);
* mixing inclusion and exclusion in one projection is rejected, as in
  MongoDB.

The transformation is defined on Python values and on
:class:`~repro.model.tree.JSONTree` (producing a new tree), keeping the
"navigation instructions select subtrees" reading of the paper.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.model.tree import JSONTree, JSONValue

__all__ = ["Projection"]

_LEAF = None  # sentinel: the path ends here


class Projection:
    """A parsed projection document.

    >>> projection = Projection({"name.first": 1, "age": 1})
    >>> projection.apply_value({"name": {"first": "J", "last": "D"},
    ...                         "age": 3, "x": 0})
    {'name': {'first': 'J'}, 'age': 3}
    """

    def __init__(self, spec: dict[str, Any]) -> None:
        if not isinstance(spec, dict):
            raise ParseError("a projection is a JSON object")
        modes = set()
        for key, flag in spec.items():
            if flag in (0, False):
                modes.add("exclude")
            elif flag in (1, True):
                modes.add("include")
            else:
                raise ParseError(
                    f"projection values must be 0 or 1, got {flag!r}"
                )
            if not key:
                raise ParseError("empty projection path")
        if len(modes) > 1:
            raise ParseError(
                "cannot mix inclusion and exclusion in one projection"
            )
        self.include = modes != {"exclude"}
        # A trie of path segments; None marks the end of a listed path.
        self.paths: dict = {}
        for key in spec:
            node = self.paths
            segments = key.split(".")
            for segment in segments[:-1]:
                node = node.setdefault(segment, {})
                if node is _LEAF:  # pragma: no cover - defensive
                    break
            node[segments[-1]] = _LEAF

    # ------------------------------------------------------------------

    def apply_value(self, value: JSONValue) -> JSONValue:
        """Project a Python JSON value (the find() transformation)."""
        if self.include:
            projected = _include(value, self.paths)
            # MongoDB returns {} rather than dropping the document.
            return {} if projected is _MISSING else projected
        return _exclude(value, self.paths)

    def apply(self, tree: JSONTree, node: int | None = None) -> JSONTree:
        """Project a JSON tree into a new tree."""
        return JSONTree.from_value(
            self.apply_value(tree.to_value(node))
        )


_MISSING = object()


def _include(value: JSONValue, trie: dict) -> Any:
    if trie is _LEAF:
        return value
    if isinstance(value, dict):
        out = {}
        for key, sub in value.items():
            branch = trie.get(key, _MISSING)
            if branch is _MISSING:
                continue
            projected = _include(sub, branch)
            if projected is not _MISSING:
                out[key] = projected
        return out
    if isinstance(value, list):
        # A projection path through an array applies element-wise;
        # elements with nothing selected disappear (MongoDB keeps
        # documents but drops non-matching scalars).
        out_list = []
        for item in value:
            projected = _include(item, trie)
            if projected is not _MISSING and projected != {}:
                out_list.append(projected)
            elif isinstance(item, dict):
                out_list.append({})
        return out_list
    # An atomic value below an unfinished path: nothing to select.
    return _MISSING


def _exclude(value: JSONValue, trie: dict) -> JSONValue:
    if trie is _LEAF:
        raise AssertionError("exclusion leaves are handled by the caller")
    if isinstance(value, dict):
        out = {}
        for key, sub in value.items():
            branch = trie.get(key, _MISSING)
            if branch is _LEAF:
                continue  # excluded
            if branch is _MISSING:
                out[key] = sub
            else:
                out[key] = _exclude(sub, branch)
        return out
    if isinstance(value, list):
        return [_exclude(item, trie) for item in value]
    return value
