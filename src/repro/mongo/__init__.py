"""MongoDB ``find`` filters compiled onto JNL (Section 4.1), the
Section-6 projection transformation, and aggregation pipelines compiled
onto the store/IR/planner stack."""

from repro.mongo.aggregate import (
    AggregateExplain,
    CompiledPipeline,
    aggregate,
    compile_pipeline,
    match_value,
    naive_aggregate,
)
from repro.mongo.find import Collection, compile_filter, memory_collection
from repro.mongo.projection import Projection
from repro.mongo.update import (
    UpdateExplain,
    UpdateResult,
    compile_update,
    naive_update_value,
    replace_one,
    update_many,
    update_one,
)

__all__ = [
    "Collection",
    "memory_collection",
    "compile_filter",
    "Projection",
    "AggregateExplain",
    "CompiledPipeline",
    "aggregate",
    "compile_pipeline",
    "match_value",
    "naive_aggregate",
    "UpdateExplain",
    "UpdateResult",
    "compile_update",
    "naive_update_value",
    "replace_one",
    "update_many",
    "update_one",
]
