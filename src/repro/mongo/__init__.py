"""MongoDB ``find`` filters compiled onto JNL (Section 4.1), plus the
Section-6 projection transformation."""

from repro.mongo.find import Collection, compile_filter
from repro.mongo.projection import Projection

__all__ = ["Collection", "compile_filter", "Projection"]
