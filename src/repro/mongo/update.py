"""MongoDB-style updates, compiled, planned and delta-maintained.

The write-path front-end: ``update_one``/``update_many``/``replace_one``
over an indexed :class:`repro.store.Collection`, in (a practical subset
of) MongoDB's update-document syntax -- ``$set``, ``$unset``, ``$inc``,
``$mul``, ``$rename``, ``$push`` (with ``$each``), ``$addToSet`` (with
``$each``), ``$pull``, ``$pop`` -- plus upsert.  The pieces compose the
existing stack end to end:

* an update document compiles **once** into a
  :class:`repro.store.update.CompiledUpdate` program (registered in the
  process-wide artifact cache under the ``"mongo-update"`` namespace,
  keyed on the canonical JSON text of the update document);
* **target selection** goes through the PR-3 planner: the filter
  compiles through :func:`repro.query.compiled.compile_mongo_find` so
  its logical plan prunes candidates via the secondary indexes, and the
  authoritative per-candidate verdict is the same value-space predicate
  the aggregation front-end uses (a filter outside the find compiler's
  dialect still works -- it just scans);
* **application** is delta index maintenance
  (:meth:`repro.store.Collection.apply_update`): only the postings
  under mutated paths are retired/re-added, never a full
  drop-and-reinsert of the document, and schema-enforced collections
  revalidate through the PR-2 compiled-validator pipeline before
  anything commits.

Operators apply in update-document order (a deterministic refinement
of MongoDB's behaviour).  :func:`naive_update_value` is the reference
interpreter -- per-call parse, deepcopy, in-place edits, no mutation
tracking -- that the differential tests pit the compiled path against.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.errors import ParseError, UpdateError
from repro.explain import Explain, UpdateExplain
from repro.mongo.aggregate import (
    _op_holds,
    _validate_operator_doc,
    compile_value_filter,
)
from repro.mongo.find import _is_operator_doc
from repro.query import optimizer, planner
from repro.query.compiled import compile_mongo_find
from repro.query.stages import split_field_path, values_equal
from repro.store.indexes import DeltaOps
from repro.store.update import (
    CompiledUpdate,
    add_to_set_op,
    inc_op,
    mul_op,
    mutation_delta,
    pop_op,
    pull_op,
    push_op,
    rename_op,
    replace_op,
    set_op,
    set_path_create,
    unset_op,
)

__all__ = [
    "UPDATE_OPS",
    "UpdateResult",
    "UpdateExplain",
    "parse_update",
    "compile_update",
    "update_cache_key",
    "update_one",
    "update_many",
    "replace_one",
    "explain_update",
    "first_match_id",
    "upsert_into",
    "compile_replacement",
    "naive_update_value",
]

UPDATE_OPS = (
    "$set",
    "$unset",
    "$inc",
    "$mul",
    "$rename",
    "$push",
    "$addToSet",
    "$pull",
    "$pop",
)

_DIALECT = "mongo-update"


@dataclass(frozen=True)
class UpdateResult:
    """MongoDB's ``UpdateResult``: what a write call did."""

    matched_count: int
    modified_count: int
    upserted_id: int | None = None


# UpdateExplain moved to repro.explain as a deprecated constructor shim
# over the unified Explain report; it stays importable from this module
# for source compatibility.


# ---------------------------------------------------------------------------
# Parsing update documents into compiled programs.
# ---------------------------------------------------------------------------


def _require_int(operator: str, path: str, operand: Any) -> int:
    if isinstance(operand, bool) or not isinstance(operand, int):
        raise ParseError(
            f"{operator} takes an integer for {path!r}, got {operand!r}"
        )
    return operand


def _field_specs(operator: str, spec: Any) -> list[tuple[str, Any]]:
    if not isinstance(spec, dict) or not spec:
        raise ParseError(
            f"{operator} takes a non-empty document of field: argument pairs"
        )
    return list(spec.items())


def _each_items(operator: str, operand: Any) -> tuple:
    """The items of a ``$push``/``$addToSet`` operand (``$each`` aware)."""
    if isinstance(operand, dict) and any(
        isinstance(key, str) and key.startswith("$") for key in operand
    ):
        unknown = [key for key in operand if key != "$each"]
        if unknown:
            raise ParseError(
                f"unsupported {operator} modifiers {unknown!r} "
                "(only $each is supported)"
            )
        each = operand["$each"]
        if not isinstance(each, list):
            raise ParseError(f"{operator} $each takes an array, got {each!r}")
        return tuple(copy.deepcopy(each))
    return (copy.deepcopy(operand),)


def _pull_keep(path: str, condition: Any) -> Any:
    """Compile a ``$pull`` condition into a *keep* predicate."""
    condition = copy.deepcopy(condition)
    if isinstance(condition, dict) and _is_operator_doc(condition):
        _validate_operator_doc(condition)
        tests = tuple(condition.items())
        return lambda element: not all(
            _op_holds(op, arg, element) for op, arg in tests
        )
    if isinstance(condition, dict):
        matches = compile_value_filter(condition)
        return lambda element: not matches(element)
    return lambda element: not values_equal(element, condition)


def _rename_paths(src: str, dst: Any) -> tuple[tuple, tuple]:
    if not isinstance(dst, str):
        raise ParseError(f"$rename takes a path string, got {dst!r}")
    source = split_field_path(src)
    target = split_field_path(dst)
    bound = min(len(source), len(target))
    if source[:bound] == target[:bound]:
        raise ParseError(
            f"$rename source {src!r} and target {dst!r} must not overlap"
        )
    return source, target


def parse_update(update_doc: Any) -> CompiledUpdate:
    """Compile a Mongo update document into a fresh program.

    Operators (and fields within an operator) apply in document order.
    Shape and operand errors raise :class:`~repro.errors.ParseError`
    at compile time; type mismatches against a concrete document
    (``$inc`` on a string, ``$push`` on a non-array) raise
    :class:`~repro.errors.UpdateError` at apply time.
    """
    if not isinstance(update_doc, dict) or not update_doc:
        raise ParseError(
            "an update is a non-empty document of update operators "
            f"(supported: {', '.join(UPDATE_OPS)})"
        )
    ops = []
    for operator, spec in update_doc.items():
        if operator not in UPDATE_OPS:
            raise ParseError(
                f"unsupported update operator {operator!r} "
                f"(supported: {', '.join(UPDATE_OPS)})"
            )
        for path, operand in _field_specs(operator, spec):
            segments = split_field_path(path)
            if operator == "$set":
                ops.append(set_op(segments, copy.deepcopy(operand)))
            elif operator == "$unset":
                ops.append(unset_op(segments))
            elif operator == "$inc":
                ops.append(inc_op(segments, _require_int(operator, path, operand)))
            elif operator == "$mul":
                ops.append(mul_op(segments, _require_int(operator, path, operand)))
            elif operator == "$rename":
                ops.append(rename_op(*_rename_paths(path, operand)))
            elif operator == "$push":
                ops.append(push_op(segments, _each_items(operator, operand)))
            elif operator == "$addToSet":
                ops.append(
                    add_to_set_op(segments, _each_items(operator, operand))
                )
            elif operator == "$pull":
                ops.append(pull_op(segments, _pull_keep(path, operand)))
            else:  # $pop
                if operand not in (1, -1) or isinstance(operand, bool):
                    raise ParseError(
                        f"$pop takes 1 (last) or -1 (first) for {path!r}, "
                        f"got {operand!r}"
                    )
                ops.append(pop_op(segments, from_front=operand == -1))
    return CompiledUpdate(update_cache_key(update_doc), tuple(ops))


def update_cache_key(update_doc: Any) -> str:
    """Canonical JSON text of an update document, the compile-cache key.

    Key order is semantically significant (operators and fields apply
    in document order), so the plain order-preserving dump is already
    canonical per-program.
    """
    return json.dumps(update_doc, separators=(",", ":"), default=repr)


def compile_update(
    update_doc: Any, *, cache: object = USE_DEFAULT_CACHE
) -> CompiledUpdate:
    """Compile an update document, through the artifact cache.

    Keyed on the canonical JSON text in the ``"mongo-update"``
    namespace of the process-wide artifact cache, alongside query
    plans, validators and aggregation pipelines.  Pass ``cache=None``
    to force a fresh compilation.
    """
    resolved = resolve_cache(cache)
    if resolved is None:
        return parse_update(update_doc)
    key = (_DIALECT, update_cache_key(update_doc))
    return resolved.get_or_compute(key, lambda: parse_update(update_doc))


# ---------------------------------------------------------------------------
# Target selection (through the planner) and the write entry points.
# ---------------------------------------------------------------------------


def _select_targets(
    collection: Any,
    filter_doc: Any,
    *,
    first_only: bool = False,
    no_semantic: bool = False,
) -> tuple[list[tuple[int, Any]], int | None, int, Any]:
    """Matching documents, index-pruned where the filter allows.

    Returns ``(matched (id, value) pairs, candidate count or None,
    scanned, semantic decision)``.  The value-space predicate is
    authoritative; the compiled find query exists only for its logical
    plan (pruning and semantic proofs), and a filter outside the find
    dialect simply scans.  An enforced semantic ``"empty"`` verdict
    selects no targets without materialising a document; ``"all"``
    selects every live document without per-value verification.  The
    matched values are handed on to :meth:`Collection.apply_update` so
    no document is materialised twice per call.
    """
    try:
        query = compile_mongo_find(filter_doc)
    except ParseError:
        query = None
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    kind = optimizer.effective_kind(decision)
    if kind == "empty":
        return [], None, 0, decision
    matches = compile_value_filter(filter_doc)
    candidates = None
    if (
        kind != "all"
        and collection.indexes is not None
        and query is not None
    ):
        candidates = planner.candidate_ids(
            query.plan.match_predicate, collection.indexes
        )
    ids = collection.doc_ids() if candidates is None else sorted(candidates)
    matched: list[tuple[int, Any]] = []
    scanned = 0
    if kind == "all":
        for doc_id in ids:
            scanned += 1
            matched.append((doc_id, collection._peek_value(doc_id)))
            if first_only:
                break
    else:
        count = optimizer.count_verify
        for doc_id in ids:
            scanned += 1
            value = collection._peek_value(doc_id)
            count()
            if matches(value):
                matched.append((doc_id, value))
                if first_only:
                    break
    candidate_count = None if candidates is None else len(candidates)
    return matched, candidate_count, scanned, decision


def _run_update(
    collection: Any,
    filter_doc: Any,
    compiled: CompiledUpdate,
    *,
    upsert: bool,
    first_only: bool,
    maintenance: str = "delta",
) -> UpdateResult:
    """The shared select → (upsert | apply) → count tail of every
    write entry point."""
    matched, _, _, _ = _select_targets(
        collection, filter_doc, first_only=first_only
    )
    if not matched:
        if upsert:
            return _upsert(collection, filter_doc, compiled)
        return UpdateResult(0, 0)
    modified, _ = collection.apply_update(
        [doc_id for doc_id, _ in matched],
        compiled,
        maintenance=maintenance,
        values=dict(matched),
    )
    return UpdateResult(len(matched), len(modified))


def _upsert(collection: Any, filter_doc: Any, compiled: CompiledUpdate) -> UpdateResult:
    """Insert the document the filter's equality facts + update imply."""
    seed = _upsert_seed(filter_doc)
    value, _ = compiled.apply(seed)
    doc_id = collection.insert(value)
    return UpdateResult(0, 0, upserted_id=doc_id)


def _upsert_seed(filter_doc: Any) -> dict:
    """The equality skeleton of a filter (what MongoDB seeds upserts
    with): plain ``field: value`` pairs, ``$eq`` operands and ``$and``
    branches; every other operator contributes nothing."""
    if not isinstance(filter_doc, dict):
        raise ParseError("a find filter is a JSON object")
    seed: Any = {}

    def absorb(part: Any) -> None:
        nonlocal seed
        if not isinstance(part, dict):
            raise ParseError("a find filter is a JSON object")
        for key, spec in part.items():
            if key == "$and" and isinstance(spec, list):
                for sub in spec:
                    absorb(sub)
            elif key.startswith("$"):
                continue
            elif _is_operator_doc(spec):
                if "$eq" in spec:
                    seed = set_path_create(
                        seed, split_field_path(key), copy.deepcopy(spec["$eq"])
                    )
            else:
                seed = set_path_create(
                    seed, split_field_path(key), copy.deepcopy(spec)
                )

    absorb(filter_doc)
    return seed


def update_many(
    collection: Any,
    filter_doc: Any,
    update_doc: Any,
    *,
    upsert: bool = False,
    maintenance: str = "delta",
) -> UpdateResult:
    """Update every document matching the filter."""
    return _run_update(
        collection,
        filter_doc,
        compile_update(update_doc),
        upsert=upsert,
        first_only=False,
        maintenance=maintenance,
    )


def update_one(
    collection: Any,
    filter_doc: Any,
    update_doc: Any,
    *,
    upsert: bool = False,
) -> UpdateResult:
    """Update the first document (in id order) matching the filter."""
    return _run_update(
        collection,
        filter_doc,
        compile_update(update_doc),
        upsert=upsert,
        first_only=True,
    )


def compile_replacement(replacement: Any) -> CompiledUpdate:
    """Validate and compile a ``replace_one`` replacement document."""
    if not isinstance(replacement, dict):
        raise ParseError("a replacement must be a document")
    offenders = [
        key
        for key in replacement
        if isinstance(key, str) and key.startswith("$")
    ]
    if offenders:
        raise ParseError(
            f"a replacement document cannot contain update operators "
            f"({offenders[0]!r}); use update_one instead"
        )
    return CompiledUpdate(
        update_cache_key(replacement),
        (replace_op(copy.deepcopy(replacement)),),
    )


def replace_one(
    collection: Any,
    filter_doc: Any,
    replacement: Any,
    *,
    upsert: bool = False,
) -> UpdateResult:
    """Replace the first matching document wholesale."""
    return _run_update(
        collection,
        filter_doc,
        compile_replacement(replacement),
        upsert=upsert,
        first_only=True,
    )


def first_match_id(collection: Any, filter_doc: Any) -> int | None:
    """The id of the first document (in id order) matching the filter.

    The scatter half of a sharded ``update_one``/``replace_one``: each
    shard reports its local first match, the coordinator takes the
    global minimum -- which is that shard's local first match too, so
    routing the single-document write to the owning shard updates
    exactly the document the unsharded path would have.
    """
    matched, _, _, _ = _select_targets(collection, filter_doc, first_only=True)
    return matched[0][0] if matched else None


def upsert_into(
    collection: Any, filter_doc: Any, compiled: CompiledUpdate
) -> UpdateResult:
    """Insert the document the filter + compiled update imply.

    The coordinator half of a sharded upsert: seeding and applying the
    update happen here, the produced document routes through the
    (sharded) collection's own ``insert``.
    """
    return _upsert(collection, filter_doc, compiled)


def explain_update(
    collection: Any,
    filter_doc: Any,
    update_doc: Any,
    *,
    first_only: bool = False,
    no_semantic: bool = False,
) -> Explain:
    """Dry-run an update: target pruning plus the index delta it would
    apply.  Mirrors the find explain on the read side; nothing in the
    collection or its indexes changes.  ``first_only`` previews
    ``update_one`` instead of ``update_many``."""
    compiled = compile_update(update_doc)
    matched, candidates, scanned, decision = _select_targets(
        collection, filter_doc, first_only=first_only, no_semantic=no_semantic
    )
    ops = DeltaOps()
    modified = 0
    for doc_id, value in matched:
        _, mutations = compiled.apply(value)
        if not mutations:
            continue
        modified += 1
        delta = mutation_delta(mutations, extended=collection.extended)
        if collection.indexes is not None:
            ops.merge(
                collection.indexes.apply_entry_delta(
                    doc_id, delta, commit=False
                )
            )
    return Explain(
        kind="update",
        source=update_cache_key(filter_doc),
        update_source=compiled.source,
        total=len(collection),
        candidates=candidates,
        scanned=scanned,
        matched=len(matched),
        modified=modified,
        entries_added=ops.entries_added,
        entries_removed=ops.entries_removed,
        refcount_adjusted=ops.adjusted,
        postings=dict(ops.postings),
        semantics=None if decision is None else decision.semantics_explain(),
    )


# ---------------------------------------------------------------------------
# The naive reference interpreter (differential-test oracle).
# ---------------------------------------------------------------------------


def naive_update_value(update_doc: Any, value: Any) -> Any:
    """Reference update evaluation: deepcopy, then in-place edits.

    Parses the update document per call and navigates with its own
    helpers -- deliberately sharing nothing with the compiled path
    beyond the *semantics* (digit segments are array indexes, missing
    object keys are created by the ``$set`` family, operators apply in
    document order) -- so the differential tests exercise compilation,
    spine-copying and mutation tracking against an independent
    implementation.
    """
    if not isinstance(update_doc, dict) or not update_doc:
        raise ParseError(
            "an update is a non-empty document of update operators "
            f"(supported: {', '.join(UPDATE_OPS)})"
        )
    doc = copy.deepcopy(value)
    for operator, spec in update_doc.items():
        if operator not in UPDATE_OPS:
            raise ParseError(
                f"unsupported update operator {operator!r} "
                f"(supported: {', '.join(UPDATE_OPS)})"
            )
        for path, operand in _field_specs(operator, spec):
            doc = _naive_apply(doc, operator, path, operand)
    return doc


def _naive_walk(doc: Any, segments: tuple, create: bool) -> Any:
    """The container holding the final segment, or None when the path
    is unreachable (non-create mode)."""
    node = doc
    for position, segment in enumerate(segments[:-1]):
        if segment.isdigit():
            if not isinstance(node, list) or int(segment) >= len(node):
                if create:
                    raise UpdateError(
                        f"cannot apply update at {'.'.join(segments)!r}: "
                        "an array index step needs an existing array"
                    )
                return None
            node = node[int(segment)]
        else:
            if not isinstance(node, dict):
                if create:
                    raise UpdateError(
                        f"cannot apply update at {'.'.join(segments)!r}: "
                        f"cannot create field {segment!r} inside a "
                        "non-document"
                    )
                return None
            if segment not in node:
                if not create:
                    return None
                node[segment] = {}
            node = node[segment]
    return node


def _naive_read(container: Any, segment: str) -> Any:
    from repro.query.stages import MISSING

    if segment.isdigit():
        if isinstance(container, list) and int(segment) < len(container):
            return container[int(segment)]
        return MISSING
    if isinstance(container, dict) and segment in container:
        return container[segment]
    return MISSING


def _naive_write(container: Any, segments: tuple, new: Any) -> None:
    segment = segments[-1]
    if segment.isdigit():
        if not isinstance(container, list):
            raise UpdateError(
                f"cannot apply update at {'.'.join(segments)!r}: "
                "an array index step needs an existing array"
            )
        position = int(segment)
        if position > len(container):
            raise UpdateError(
                f"cannot apply update at {'.'.join(segments)!r}: "
                f"array index {position} past the end "
                f"(length {len(container)})"
            )
        if position == len(container):
            container.append(new)
        else:
            container[position] = new
    else:
        if not isinstance(container, dict):
            raise UpdateError(
                f"cannot apply update at {'.'.join(segments)!r}: "
                f"cannot create field {segment!r} inside a non-document"
            )
        container[segment] = new


def _naive_delete(container: Any, segments: tuple) -> None:
    segment = segments[-1]
    if segment.isdigit():
        if isinstance(container, list) and int(segment) < len(container):
            raise UpdateError(
                f"cannot apply update at {'.'.join(segments)!r}: "
                "cannot remove an array element by index "
                "(use $pull or $pop)"
            )
        return
    if isinstance(container, dict):
        container.pop(segment, None)


def _naive_array(
    operator: str, segments: tuple, container: Any
) -> list | None:
    from repro.query.stages import MISSING

    old = _naive_read(container, segments[-1])
    if old is MISSING:
        return None
    if not isinstance(old, list):
        raise UpdateError(
            f"{operator} needs an array at {'.'.join(segments)!r}, "
            f"found {old!r}"
        )
    return old


def _naive_apply(doc: Any, operator: str, path: str, operand: Any) -> Any:
    from repro.query.stages import MISSING

    segments = split_field_path(path)
    create = operator in ("$set", "$inc", "$mul", "$push", "$addToSet")
    container = _naive_walk(doc, segments, create)
    if container is None:
        return doc
    old = _naive_read(container, segments[-1])
    if operator == "$set":
        _naive_write(container, segments, copy.deepcopy(operand))
    elif operator == "$unset":
        if old is not MISSING:
            _naive_delete(container, segments)
    elif operator in ("$inc", "$mul"):
        amount = _require_int(operator, path, operand)
        if old is MISSING:
            base = 0
        elif isinstance(old, bool) or not isinstance(old, int):
            raise UpdateError(
                f"{operator} needs a number at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        else:
            base = old
        result = base + amount if operator == "$inc" else base * amount
        _naive_write(container, segments, result)
    elif operator == "$rename":
        source, target = _rename_paths(path, operand)
        if old is not MISSING:
            _naive_delete(container, segments)
            doc = _naive_apply_set_value(doc, target, old)
    elif operator == "$push":
        items = list(_each_items(operator, operand))
        existing = _naive_array(operator, segments, container)
        if existing is None:
            _naive_write(container, segments, items)
        else:
            existing.extend(items)
    elif operator == "$addToSet":
        items = list(_each_items(operator, operand))
        existing = _naive_array(operator, segments, container)
        if existing is None:
            existing = []
            _naive_write(container, segments, existing)
        for item in items:
            if not any(values_equal(item, seen) for seen in existing):
                existing.append(item)
    elif operator == "$pull":
        keep = _pull_keep(path, operand)  # validate before touching doc
        existing = _naive_array(operator, segments, container)
        if existing is not None:
            existing[:] = [element for element in existing if keep(element)]
    else:  # $pop
        if operand not in (1, -1) or isinstance(operand, bool):
            raise ParseError(
                f"$pop takes 1 (last) or -1 (first) for {path!r}, "
                f"got {operand!r}"
            )
        existing = _naive_array(operator, segments, container)
        if existing:
            if operand == -1:
                del existing[0]
            else:
                del existing[-1]
    return doc


def _naive_apply_set_value(doc: Any, segments: tuple, value: Any) -> Any:
    container = _naive_walk(doc, segments, True)
    _naive_write(container, segments, value)
    return doc
