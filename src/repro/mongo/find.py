"""MongoDB's ``find`` filters compiled onto JNL (Section 4.1).

The paper isolates MongoDB's filter parameter as navigation conditions
``P ~ J`` combined with booleans, and proposes JNL as the logic
capturing them.  This module makes that concrete: a filter document in
(a practical subset of) MongoDB's syntax compiles to a unary JNL
formula, evaluated by the Proposition 1 engine.

Supported operators: implicit equality, ``$eq``, ``$ne``, ``$gt``,
``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``, ``$exists``, ``$type``,
``$size``, ``$regex``, ``$elemMatch``, ``$and``, ``$or``, ``$nor``,
``$not``.  Comparisons beyond equality use the NodeTest-atom extension
of JNL (Theorem 2's "atomic predicates" point).  As in MongoDB, an
equality against a scalar also matches arrays *containing* the value.

Dotted paths navigate keys; an all-digit segment is an array index
(MongoDB would try both readings; see DESIGN.md).
"""

from __future__ import annotations

from typing import Any

from repro.automata.keylang import KeyLang
from repro.errors import ParseError
from repro.jnl import ast as jnl
from repro.jnl import builder as q
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree, JSONValue
from repro.store.collection import Collection as _StoreCollection
from repro.store.engine import MemoryEngine as _MemoryEngine

__all__ = ["compile_filter", "Collection", "memory_collection"]

_TYPE_TESTS: dict[str, nt.NodeTest] = {
    "object": nt.IsObject(),
    "array": nt.IsArray(),
    "string": nt.IsString(),
    "number": nt.IsNumber(),
    "int": nt.IsNumber(),
}


def _path_steps(path: str) -> list[jnl.Binary]:
    if not path:
        raise ParseError("empty field path in filter")
    steps: list[jnl.Binary] = []
    for segment in path.split("."):
        if segment.isdigit():
            steps.append(jnl.Index(int(segment)))
        else:
            steps.append(jnl.Key(segment))
    return steps


def _navigate(path: str, condition: jnl.Unary) -> jnl.Unary:
    """``has(path o <condition>)``."""
    steps = _path_steps(path)
    return q.has(q.compose(*steps, q.test(condition)))


def _scalar_eq(value: JSONValue) -> jnl.Unary:
    """Equality at the reached node, MongoDB-style.

    Matching a scalar also matches arrays containing it; matching an
    array/object is exact.
    """
    doc = JSONTree.from_value(value)
    exact = q.eq_doc(q.eps(), doc)
    if isinstance(value, (dict, list)):
        return exact
    contains = q.eq_doc(q.any_index_axis(), doc)
    return q.disj([exact, contains])


def _operator_condition(operator: str, operand: Any) -> jnl.Unary:
    if operator == "$eq":
        return _scalar_eq(operand)
    if operator == "$ne":
        return q.conj([~_scalar_eq(operand)])
    if operator == "$gt":
        _require_int(operator, operand)
        return q.atom(nt.MinVal(operand))
    if operator == "$gte":
        _require_int(operator, operand)
        return q.atom(nt.MinVal(operand - 1))
    if operator == "$lt":
        _require_int(operator, operand)
        return q.atom(nt.MaxVal(operand))
    if operator == "$lte":
        _require_int(operator, operand)
        return q.atom(nt.MaxVal(operand + 1))
    if operator == "$in":
        _require_list(operator, operand)
        return q.disj([_scalar_eq(item) for item in operand])
    if operator == "$nin":
        _require_list(operator, operand)
        return ~q.disj([_scalar_eq(item) for item in operand])
    if operator == "$type":
        test = _TYPE_TESTS.get(operand)
        if test is None:
            raise ParseError(f"unsupported $type operand {operand!r}")
        return q.atom(test)
    if operator == "$size":
        _require_int(operator, operand)
        return q.conj(
            [
                q.atom(nt.IsArray()),
                q.atom(nt.MinCh(operand)),
                q.atom(nt.MaxCh(operand)),
            ]
        )
    if operator == "$regex":
        if not isinstance(operand, str):
            raise ParseError("$regex takes a string")
        # MongoDB regexes are unanchored searches unless anchored.
        pattern = operand
        prefix = "" if pattern.startswith("^") else ".*"
        suffix = "" if pattern.endswith("$") else ".*"
        pattern = pattern.removeprefix("^").removesuffix("$")
        return q.atom(nt.Pattern(KeyLang.regex(f"{prefix}(?:{pattern}){suffix}")))
    if operator == "$elemMatch":
        if not isinstance(operand, dict):
            raise ParseError("$elemMatch takes a filter document")
        condition = (
            _operators_condition(operand)
            if _is_operator_doc(operand)
            else compile_filter(operand)
        )
        return q.has(q.compose(q.any_index_axis(), q.test(condition)))
    if operator == "$not":
        if not isinstance(operand, dict):
            raise ParseError("$not takes an operator document")
        return ~_operators_condition(operand)
    raise ParseError(f"unsupported operator {operator!r}")


def _require_int(operator: str, operand: Any) -> None:
    # Genuinely integral, not just numeric: the $gte/$lte lowering does
    # operand +- 1 arithmetic on the NodeTest bounds.
    if isinstance(operand, bool) or not isinstance(operand, int):
        raise ParseError(f"{operator} takes an integer, got {operand!r}")


def _require_list(operator: str, operand: Any) -> None:
    if not isinstance(operand, list):
        raise ParseError(f"{operator} takes an array, got {operand!r}")


def _operators_condition(document: dict[str, Any]) -> jnl.Unary:
    return q.conj(
        [_operator_condition(op, operand) for op, operand in document.items()]
    )


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, dict) and value and all(
        isinstance(key, str) and key.startswith("$") for key in value
    )


def compile_filter(filter_doc: dict[str, Any]) -> jnl.Unary:
    """Compile a MongoDB ``find`` filter into a unary JNL formula."""
    parts: list[jnl.Unary] = []
    for key, value in filter_doc.items():
        if key == "$and":
            _require_list(key, value)
            parts.append(q.conj([compile_filter(sub) for sub in value]))
        elif key == "$or":
            _require_list(key, value)
            parts.append(q.disj([compile_filter(sub) for sub in value]))
        elif key == "$nor":
            _require_list(key, value)
            parts.append(~q.disj([compile_filter(sub) for sub in value]))
        elif key.startswith("$"):
            raise ParseError(f"unsupported top-level operator {key!r}")
        elif _is_operator_doc(value):
            exists_flag = value.get("$exists")
            rest = {op: arg for op, arg in value.items() if op != "$exists"}
            if exists_flag is not None:
                presence = q.has(q.compose(*_path_steps(key)))
                parts.append(presence if exists_flag else ~presence)
            if rest:
                parts.append(_navigate(key, _operators_condition(rest)))
        else:
            parts.append(_navigate(key, _scalar_eq(value)))
    return q.conj(parts)


class Collection(_StoreCollection):
    """A queryable collection of JSON documents (the Mongo-facing view).

    Since the store refactor this is the indexed
    :class:`repro.store.Collection`: filters compile once through the
    shared logical-plan IR (cached process-wide, keyed on canonical
    JSON text), the planner prunes candidate documents via the
    secondary indexes, and only the survivors pay the per-document
    Proposition-1 reachability.  The class is kept as a thin alias so
    Mongo-flavoured call sites read naturally.

    Like the store class, constructing one without a storage engine is
    deprecated: acquire collections through :func:`repro.api.connect`
    or :func:`repro.api.collection`.

    >>> from repro import api
    >>> people = api.collection([{"name": "Sue"}, {"name": "Bob"}])
    >>> people.find({"name": {"$eq": "Sue"}})
    [{'name': 'Sue'}]
    """


def memory_collection(
    documents: "list[JSONValue] | tuple" = (), **kwargs: Any
) -> Collection:
    """Deprecated spelling of :func:`repro.api.collection`.

    The Mongo-facing class is a thin alias of the store collection, so
    the consolidated constructor covers this use unchanged.
    """
    import warnings

    warnings.warn(
        "repro.mongo.memory_collection is deprecated; use "
        "repro.api.collection() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    kwargs.setdefault("engine", _MemoryEngine())
    return Collection(documents, **kwargs)
