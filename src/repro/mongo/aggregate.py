"""MongoDB-style aggregation pipelines, compiled and index-pruned.

The paper's MongoDB treatment stops at ``find``-style navigation;
production document-database traffic is dominated by multi-stage
*aggregation*, a composable stage algebra over whole collections.  This
module implements its practical core -- ``$match``, ``$project``,
``$unwind``, ``$group`` (with ``$sum``/``$count``/``$min``/``$max``/
``$avg``/``$push`` accumulators), ``$sort``, ``$skip``/``$limit`` and
``$count`` -- on top of the existing store/IR/planner stack:

* a pipeline compiles **once** into a :class:`CompiledPipeline`
  (registered in the process-wide artifact cache of :mod:`repro.cache`
  under the ``"mongo-aggregate"`` namespace, keyed on the canonical
  JSON text of the pipeline);
* the **leading run of ``$match`` stages** is merged into one find
  filter and compiled through :func:`repro.query.compiled.
  compile_mongo_find` -- so it lowers into the shared logical-plan IR,
  and over an indexed collection the planner prunes candidates via the
  secondary indexes before any per-document work, exactly like ``find``;
* every **downstream stage** runs as a streaming generator
  (:mod:`repro.query.stages`) over the surviving documents -- nothing
  is materialised between stages except where ``$sort``/``$group``/
  ``$count`` inherently must.

All ``$match`` evaluation happens in value space (the compiled
:func:`compile_value_filter` closures; :func:`match_value` is the
per-call interpreter the naive reference uses) with the same operator
semantics as the ``find`` filter compiler -- the compiled JNL form of
the leading run exists only for its logical plan, i.e. for index
pruning.  Whether a pipeline is *accepted* never depends on stage
position: when the leading run is valid in value space but outside the
find compiler's dialect (a float comparison bound, a ``$regex`` beyond
the KeyLang subset such as ``(?i)``), the pipeline still compiles and
runs with identical semantics -- the leading match just scans instead
of pruning, which the explain report surfaces as ``"streamed"``.
:func:`naive_aggregate` is the reference evaluator -- eager,
list-at-a-time, no compilation, no pruning -- that the differential
tests pit the staged executor against.
"""

from __future__ import annotations

import heapq
import json
import re
from itertools import islice
from typing import Any, Iterable, Iterator

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.errors import ParseError
from repro.explain import AggregateExplain, Explain, ShardExplain, StageExplain
from repro.model.tree import JSONTree
from repro.mongo.find import _is_operator_doc, _require_int, _require_list
from repro.mongo.projection import Projection
from repro.query import optimizer, planner
from repro.query.compiled import CompiledQuery, compile_mongo_find
from repro.query.stages import (
    MISSING,
    ACCUMULATORS,
    CountStage,
    FilterStage,
    GroupStage,
    LimitStage,
    ProjectStage,
    SkipStage,
    SortStage,
    Stage,
    UnwindStage,
    compile_expr,
    canonical_group_key,
    composite_sort_key,
    resolve_path,
    run_stages,
    run_stages_ranked,
    set_path,
    sort_key,
    split_field_path,
    values_equal,
)

__all__ = [
    "STAGE_OPS",
    "AggregateExplain",
    "StageExplain",
    "ShardExplain",
    "CompiledPipeline",
    "compile_pipeline",
    "pipeline_cache_key",
    "parse_pipeline",
    "aggregate",
    "explain_pipeline",
    "partial_aggregate",
    "match_value",
    "compile_value_filter",
    "naive_aggregate",
]

STAGE_OPS = (
    "$match",
    "$project",
    "$unwind",
    "$group",
    "$sort",
    "$skip",
    "$limit",
    "$count",
)

_DIALECT = "mongo-aggregate"


# ---------------------------------------------------------------------------
# Value-space find filters (non-leading $match and the naive reference).
#
# Semantics mirror repro.mongo.find.compile_filter: a dotted path
# resolves to at most one node (digit segments are array indexes), a
# navigated condition requires the node to exist, and a scalar equality
# also matches arrays containing the value (one array level, like the
# compiled ``X_{0:inf}`` axis).
# ---------------------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _require_number(operator: str, operand: Any) -> None:
    if not _is_number(operand):
        raise ParseError(f"{operator} takes a number, got {operand!r}")


def _eq_mongo(node: Any, operand: Any) -> bool:
    """MongoDB equality at a node: exact, or array-containment for
    scalar operands."""
    if values_equal(node, operand):
        return True
    if isinstance(operand, (dict, list)):
        return False
    return isinstance(node, list) and any(
        values_equal(element, operand) for element in node
    )


_TYPE_CHECKS = {
    "object": lambda node: isinstance(node, dict),
    "array": lambda node: isinstance(node, list),
    "string": lambda node: isinstance(node, str),
    "number": _is_number,
    "int": _is_number,
}


def _op_holds(operator: str, operand: Any, node: Any) -> bool:
    if operator == "$eq":
        return _eq_mongo(node, operand)
    if operator == "$ne":
        return not _eq_mongo(node, operand)
    if operator == "$gt":
        _require_number(operator, operand)
        return _is_number(node) and node > operand
    if operator == "$gte":
        _require_number(operator, operand)
        return _is_number(node) and node >= operand
    if operator == "$lt":
        _require_number(operator, operand)
        return _is_number(node) and node < operand
    if operator == "$lte":
        _require_number(operator, operand)
        return _is_number(node) and node <= operand
    if operator == "$in":
        _require_list(operator, operand)
        return any(_eq_mongo(node, item) for item in operand)
    if operator == "$nin":
        _require_list(operator, operand)
        return not any(_eq_mongo(node, item) for item in operand)
    if operator == "$type":
        check = _TYPE_CHECKS.get(operand)
        if check is None:
            raise ParseError(f"unsupported $type operand {operand!r}")
        return check(node)
    if operator == "$size":
        _require_int(operator, operand)
        return isinstance(node, list) and len(node) == operand
    if operator == "$regex":
        if not isinstance(operand, str):
            raise ParseError("$regex takes a string")
        return isinstance(node, str) and re.search(operand, node) is not None
    if operator == "$elemMatch":
        if not isinstance(operand, dict):
            raise ParseError("$elemMatch takes a filter document")
        if not isinstance(node, list):
            return False
        if _is_operator_doc(operand):
            return any(
                all(_op_holds(op, arg, element) for op, arg in operand.items())
                for element in node
            )
        return any(match_value(operand, element) for element in node)
    if operator == "$not":
        if not isinstance(operand, dict):
            raise ParseError("$not takes an operator document")
        return not all(
            _op_holds(op, arg, node) for op, arg in operand.items()
        )
    raise ParseError(f"unsupported operator {operator!r}")


def _match_field(value: Any, path: str, spec: dict[str, Any]) -> bool:
    node = resolve_path(value, split_field_path(path))
    exists_flag = spec.get("$exists")
    rest = {op: arg for op, arg in spec.items() if op != "$exists"}
    if exists_flag is not None and bool(exists_flag) != (node is not MISSING):
        return False
    if rest:
        if node is MISSING:
            return False
        return all(_op_holds(op, arg, node) for op, arg in rest.items())
    return True


def match_value(filter_doc: dict[str, Any], value: Any) -> bool:
    """Evaluate a ``find`` filter directly on a Python JSON value.

    The value-space twin of :func:`repro.mongo.find.compile_filter`
    (same operator subset, same one-node path semantics), used for
    ``$match`` stages past the pipeline head -- where documents are
    pipeline products, not collection members -- and by the naive
    reference evaluator the differential tests compare against.
    """
    if not isinstance(filter_doc, dict):
        raise ParseError("a find filter is a JSON object")
    for key, spec in filter_doc.items():
        if key == "$and":
            _require_list(key, spec)
            if not all(match_value(sub, value) for sub in spec):
                return False
        elif key == "$or":
            _require_list(key, spec)
            if not any(match_value(sub, value) for sub in spec):
                return False
        elif key == "$nor":
            _require_list(key, spec)
            if any(match_value(sub, value) for sub in spec):
                return False
        elif key.startswith("$"):
            raise ParseError(f"unsupported top-level operator {key!r}")
        elif _is_operator_doc(spec):
            if not _match_field(value, key, spec):
                return False
        else:
            node = resolve_path(value, split_field_path(key))
            if not _eq_mongo(node, spec):
                return False
    return True


def compile_value_filter(filter_doc: dict[str, Any]) -> Any:
    """Compile a find filter into a value-space predicate closure.

    Same semantics as :func:`match_value` (which interprets the filter
    document per call -- the naive reference path), but field paths are
    split, operator documents classified and boolean structure resolved
    **once**: the staged executor matches each candidate with plain
    closure calls.  The differential tests pit the two against each
    other on every randomised pipeline.
    """
    if not isinstance(filter_doc, dict):
        raise ParseError("a find filter is a JSON object")
    predicates: list[Any] = []
    for key, spec in filter_doc.items():
        if key in ("$and", "$or", "$nor"):
            _require_list(key, spec)
            compiled = [compile_value_filter(sub) for sub in spec]
            if key == "$and":
                predicates.append(
                    lambda value, c=compiled: all(p(value) for p in c)
                )
            elif key == "$or":
                predicates.append(
                    lambda value, c=compiled: any(p(value) for p in c)
                )
            else:
                predicates.append(
                    lambda value, c=compiled: not any(p(value) for p in c)
                )
        elif key.startswith("$"):
            raise ParseError(f"unsupported top-level operator {key!r}")
        elif _is_operator_doc(spec):
            predicates.append(_compile_field_ops(key, spec))
        else:
            segments = split_field_path(key)
            predicates.append(
                lambda value, s=segments, operand=spec: _eq_mongo(
                    resolve_path(value, s), operand
                )
            )
    if len(predicates) == 1:
        return predicates[0]
    return lambda value: all(p(value) for p in predicates)


_FIELD_OPS = (
    "$eq",
    "$ne",
    "$gt",
    "$gte",
    "$lt",
    "$lte",
    "$in",
    "$nin",
    "$type",
    "$size",
    "$regex",
    "$elemMatch",
    "$not",
)


def _validate_operand(operator: str, operand: Any) -> None:
    """Eager operand checks, so a bad filter fails at *compile* time
    regardless of stage position or whether any row ever reaches it."""
    if operator in ("$gt", "$gte", "$lt", "$lte"):
        _require_number(operator, operand)
    elif operator == "$size":
        _require_int(operator, operand)
    elif operator in ("$in", "$nin"):
        _require_list(operator, operand)
    elif operator == "$type":
        if operand not in _TYPE_CHECKS:
            raise ParseError(f"unsupported $type operand {operand!r}")
    elif operator == "$regex":
        if not isinstance(operand, str):
            raise ParseError("$regex takes a string")
        try:
            re.compile(operand)
        except re.error as exc:
            raise ParseError(f"invalid $regex pattern {operand!r}: {exc}") from exc
    elif operator == "$elemMatch":
        if not isinstance(operand, dict):
            raise ParseError("$elemMatch takes a filter document")
        if _is_operator_doc(operand):
            _validate_operator_doc(operand)
        else:
            compile_value_filter(operand)
    elif operator == "$not":
        if not isinstance(operand, dict):
            raise ParseError("$not takes an operator document")
        _validate_operator_doc(operand)
    # $eq / $ne accept any operand.


def _validate_operator_doc(spec: dict[str, Any]) -> None:
    for operator, operand in spec.items():
        if operator not in _FIELD_OPS:
            raise ParseError(f"unsupported operator {operator!r}")
        _validate_operand(operator, operand)


def _compile_field_ops(key: str, spec: dict[str, Any]) -> Any:
    segments = split_field_path(key)
    exists_flag = spec.get("$exists")
    rest = tuple((op, arg) for op, arg in spec.items() if op != "$exists")
    for op, arg in rest:
        if op not in _FIELD_OPS:
            raise ParseError(f"unsupported operator {op!r}")
        _validate_operand(op, arg)

    def predicate(value: Any) -> bool:
        node = resolve_path(value, segments)
        if exists_flag is not None and bool(exists_flag) != (
            node is not MISSING
        ):
            return False
        if rest:
            if node is MISSING:
                return False
            return all(_op_holds(op, arg, node) for op, arg in rest)
        return True

    return predicate


# ---------------------------------------------------------------------------
# Pipeline parsing and stage construction.
# ---------------------------------------------------------------------------


def parse_pipeline(pipeline: Any) -> tuple[tuple[str, Any], ...]:
    """Normalise a pipeline into ``(op, spec)`` pairs, shape-checked."""
    if not isinstance(pipeline, list):
        raise ParseError("a pipeline is a JSON array of stage documents")
    parsed: list[tuple[str, Any]] = []
    for position, stage in enumerate(pipeline):
        if not isinstance(stage, dict) or len(stage) != 1:
            raise ParseError(
                f"stage {position} must be a single-operator document, "
                f"got {stage!r}"
            )
        ((op, spec),) = stage.items()
        if op not in STAGE_OPS:
            raise ParseError(
                f"unsupported pipeline stage {op!r} "
                f"(supported: {', '.join(STAGE_OPS)})"
            )
        parsed.append((op, spec))
    return tuple(parsed)


def _group_field_name(name: Any) -> str:
    if (
        not isinstance(name, str)
        or not name
        or name.startswith("$")
        or "." in name
    ):
        raise ParseError(f"invalid $group output field {name!r}")
    return name


def _build_group(spec: Any) -> GroupStage:
    if not isinstance(spec, dict) or "_id" not in spec:
        raise ParseError("$group takes a document with an _id expression")
    fields = []
    for name, accumulator_spec in spec.items():
        if name == "_id":
            continue
        _group_field_name(name)
        if not isinstance(accumulator_spec, dict) or len(accumulator_spec) != 1:
            raise ParseError(
                f"$group field {name!r} takes one accumulator, "
                f"got {accumulator_spec!r}"
            )
        ((accumulator, operand),) = accumulator_spec.items()
        factory = ACCUMULATORS.get(accumulator)
        if factory is None:
            raise ParseError(
                f"unsupported accumulator {accumulator!r} "
                f"(supported: {', '.join(sorted(ACCUMULATORS))})"
            )
        if accumulator == "$count":
            if operand != {}:
                raise ParseError("$count (accumulator) takes {}")
            expr = compile_expr(None)
        else:
            expr = compile_expr(operand)
        fields.append((name, factory, expr))
    return GroupStage(compile_expr(spec["_id"]), tuple(fields))


def _sort_spec_keys(spec: Any) -> list[tuple[tuple[str, ...], int]]:
    """Validated ``(path segments, 1|-1)`` pairs of a ``$sort`` spec
    (shared by the staged executor and the naive reference, so both
    reject invalid specs identically)."""
    if not isinstance(spec, dict) or not spec:
        raise ParseError("$sort takes a non-empty document of path: 1|-1")
    keys = []
    for path, direction in spec.items():
        if direction not in (1, -1) or isinstance(direction, bool):
            raise ParseError(
                f"$sort direction for {path!r} must be 1 or -1, "
                f"got {direction!r}"
            )
        keys.append((split_field_path(path), direction))
    return keys


def _skip_count(spec: Any) -> int:
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 0:
        raise ParseError(f"$skip takes a non-negative integer, got {spec!r}")
    return spec


def _limit_count(spec: Any) -> int:
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 1:
        raise ParseError(f"$limit takes a positive integer, got {spec!r}")
    return spec


def _count_field(spec: Any) -> str:
    if not isinstance(spec, str) or not spec or spec.startswith("$") or "." in spec:
        raise ParseError(f"$count takes an output field name, got {spec!r}")
    return spec


def _unwind_segments(spec: Any) -> tuple[str, ...]:
    if isinstance(spec, dict):
        spec = spec.get("path")
    if not isinstance(spec, str) or not spec.startswith("$"):
        raise ParseError(
            f'$unwind takes a "$path" string (or {{"path": "$path"}}), '
            f"got {spec!r}"
        )
    return split_field_path(spec[1:])


def _build_stage(op: str, spec: Any) -> Stage:
    """Validate one non-leading stage spec and build its executor."""
    if op == "$match":
        return FilterStage(compile_value_filter(spec))
    if op == "$project":
        return ProjectStage(Projection(spec).apply_value)
    if op == "$unwind":
        return UnwindStage(_unwind_segments(spec))
    if op == "$group":
        return _build_group(spec)
    if op == "$sort":
        return SortStage(
            tuple(
                (segments, direction == -1)
                for segments, direction in _sort_spec_keys(spec)
            )
        )
    if op == "$skip":
        return SkipStage(_skip_count(spec))
    if op == "$limit":
        return LimitStage(_limit_count(spec))
    if op == "$count":
        return CountStage(_count_field(spec))
    raise ParseError(f"unsupported pipeline stage {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# The compiled pipeline.
# ---------------------------------------------------------------------------


# StageExplain/ShardExplain moved to repro.explain (the unified report);
# AggregateExplain survives there as a deprecated constructor shim.  All
# three stay importable from this module for source compatibility.


def _window_bound(stages: tuple[Stage, ...]) -> int | None:
    """How many input rows the leading ``$skip``/``$limit`` run of
    ``stages`` can consume, or ``None`` when unbounded.

    The composed window over input-stream indices: sound as a per-shard
    truncation hint because the global first ``bound`` rows are always
    a subset of the union of each shard's local first ``bound`` rows.
    """
    start = 0
    stop: int | None = None
    for stage in stages:
        if isinstance(stage, SkipStage):
            start += stage.count
        elif isinstance(stage, LimitStage):
            bound = start + stage.count
            stop = bound if stop is None else min(stop, bound)
        else:
            break
    return stop


class CompiledPipeline:
    """An executable aggregation plan, reusable across collections.

    ``lead_query`` is the merged leading-``$match`` run compiled as a
    Mongo find filter (``None`` when the pipeline does not start with a
    match, or when the filter falls outside the find compiler's
    dialect and so cannot carry a logical plan): it carries the shared
    logical-plan IR, so collection execution prunes candidates through
    the secondary indexes exactly like ``find``.  ``lead_pred`` is the
    authoritative value-space matcher for the same run (``None`` only
    without a leading match).  ``stages`` are the downstream physical
    stages, run
    as a generator chain over the survivors.  No evaluation state lives
    on the compiled object, so one pipeline can be shared freely across
    collections and mutations.

    Compilation also fixes the pipeline's **shard decomposition** (the
    commuting-stages split of the Botoeva et al. formalisation): the
    maximal prefix of per-row stages after the leading match commutes
    with any partition of the input and runs map-side
    (``shard_map_count``), and the first blocking stage picks the
    coordinator's ``merge_strategy`` -- ``$group`` ships mergeable
    partial accumulator states (``"group-merge"``), ``$sort`` ships
    locally sorted runs for a k-way heap merge (``"sort-merge"``,
    truncated per shard to ``local_limit`` rows when a following
    ``$skip``/``$limit`` window bounds what the merge can consume),
    ``$count`` ships plain counts (``"count-sum"``), and anything else
    streams rank-ordered rows (``"stream"``).
    """

    __slots__ = (
        "source",
        "pipeline",
        "lead_filter",
        "lead_pred",
        "lead_count",
        "lead_query",
        "stages",
        "shard_map_count",
        "merge_strategy",
        "local_limit",
    )

    def __init__(self, pipeline: list[Any]) -> None:
        self.source = pipeline_cache_key(pipeline)
        self.pipeline = pipeline
        parsed = parse_pipeline(pipeline)
        lead: list[dict[str, Any]] = []
        split = 0
        for op, spec in parsed:
            if op != "$match":
                break
            if not isinstance(spec, dict):
                raise ParseError("$match takes a filter document")
            lead.append(spec)
            split += 1
        self.lead_count = split
        self.lead_filter: dict[str, Any] | None = None
        self.lead_query: CompiledQuery | None = None
        self.lead_pred = None
        if lead:
            self.lead_filter = lead[0] if len(lead) == 1 else {"$and": lead}
            # The value-space compilation is authoritative: it validates
            # the filter and delivers the verdict on every candidate.
            self.lead_pred = compile_value_filter(self.lead_filter)
            try:
                self.lead_query = compile_mongo_find(self.lead_filter)
            except ParseError:
                # Valid in value space but outside the find compiler's
                # dialect (float comparison bounds, a $regex beyond the
                # KeyLang subset): keep the match leading, without the
                # logical plan -- so no index pruning, a full scan.
                self.lead_query = None
        self.stages: tuple[Stage, ...] = tuple(
            _build_stage(op, spec) for op, spec in parsed[split:]
        )
        count = 0
        while count < len(self.stages) and isinstance(
            self.stages[count], (FilterStage, ProjectStage, UnwindStage)
        ):
            count += 1
        self.shard_map_count = count
        self.local_limit: int | None = None
        boundary = self.stages[count] if count < len(self.stages) else None
        if isinstance(boundary, GroupStage):
            self.merge_strategy = "group-merge"
        elif isinstance(boundary, SortStage):
            self.merge_strategy = "sort-merge"
            self.local_limit = _window_bound(self.stages[count + 1 :])
        elif isinstance(boundary, CountStage):
            self.merge_strategy = "count-sum"
        else:
            self.merge_strategy = "stream"
            self.local_limit = _window_bound(self.stages[count:])

    # ------------------------------------------------------------------

    def _collection_rows(
        self, collection: Any, no_semantic: bool = False
    ) -> Iterator[Any]:
        """Leading-match survivors of a store collection, index-pruned.

        Candidates come from folding the compiled filter's sargable
        predicates over the secondary indexes (a sound superset); the
        final verdict per candidate is the value-space matcher, so only
        the handful of candidate documents are ever materialised --
        the loop never touches the pruned ids at all.  An enforced
        semantic verdict short-circuits first: ``"empty"`` yields
        nothing, ``"all"`` streams every live document verify-free.
        """
        decision = optimizer.semantic_plan(
            collection, self.lead_query, no_semantic=no_semantic
        )
        kind = optimizer.effective_kind(decision)
        if kind == "empty":
            return iter(())
        if kind == "all":
            return (tree.to_value() for _, tree in collection.documents())
        return self._survivors(collection, self._candidates(collection))

    def _survivors(
        self, collection: Any, candidates: set[int] | None
    ) -> Iterator[Any]:
        lead_pred = self.lead_pred
        if lead_pred is None:
            for _, tree in collection.documents():
                yield tree.to_value()
            return
        count = optimizer.count_verify
        if candidates is None:
            for _, tree in collection.documents():
                value = tree.to_value()
                count()
                if lead_pred(value):
                    yield value
            return
        for doc_id in sorted(candidates):
            value = collection.get(doc_id).to_value()
            count()
            if lead_pred(value):
                yield value

    def _candidates(self, collection: Any) -> set[int] | None:
        indexes = collection.indexes
        if indexes is None or self.lead_query is None:
            return None
        return planner.candidate_ids(
            self.lead_query.plan.match_predicate, indexes
        )

    def _item_rows(self, items: Iterable[Any]) -> Iterator[Any]:
        """Leading-match survivors of bare trees/values (no indexes).

        Trees materialise first and are matched by the same value-space
        predicate as every other path, so a pipeline yields identical
        rows whatever flavour the input arrives in.
        """
        for item in items:
            if isinstance(item, JSONTree):
                item = item.to_value()
            if self.lead_pred is None or self.lead_pred(item):
                yield item

    def _rows(self, source: Any, no_semantic: bool = False) -> Iterator[Any]:
        if hasattr(source, "documents") and hasattr(source, "indexes"):
            return self._collection_rows(source, no_semantic)
        return self._item_rows(source)

    def _scatter_payload(
        self, source: Any, no_semantic: bool
    ) -> "dict[str, Any] | None":
        """The scatter envelope, with the coordinator's verdict attached.

        The coordinator proves once (against the fleet-wide schema, when
        there is one) and the shards inherit: ``"semantic"`` carries an
        enforced ``"empty"``/``"all"`` verdict, ``None`` to let each
        shard consult its own summary, or ``"off"`` to disable the
        pass shard-side too.  Returns ``None`` when the coordinator's
        ``"empty"`` verdict makes scattering itself unnecessary.
        """
        if no_semantic:
            return {"pipeline": self.pipeline, "semantic": "off"}
        decision = optimizer.semantic_plan(source, self.lead_query)
        kind = optimizer.effective_kind(decision)
        if kind == "empty":
            return None
        semantic = kind if kind == "all" else None
        return {"pipeline": self.pipeline, "semantic": semantic}

    def execute(self, source: Any, *, no_semantic: bool = False) -> list[Any]:
        """Run the pipeline over a collection (index-pruned), a sharded
        collection (scatter-gather) or an iterable of trees/values
        (streamed), returning the result rows."""
        scatter = getattr(source, "scatter_partial_aggregate", None)
        if scatter is not None:
            payload = self._scatter_payload(source, no_semantic)
            if payload is None:  # coordinator proved "empty": no scatter
                return self.merge_partials([])
            return self.merge_partials(scatter(payload))
        return list(self.stream(source, no_semantic=no_semantic))

    def stream(
        self, source: Any, *, no_semantic: bool = False
    ) -> Iterator[Any]:
        """Lazy variant of :meth:`execute` (one generator per stage)."""
        return run_stages(self.stages, self._rows(source, no_semantic))

    # ------------------------------------------------------------------
    # Scatter-gather execution (one partial per shard, merged here).
    # ------------------------------------------------------------------

    def execute_partial(
        self, collection: Any, *, verdict: "str | None" = None
    ) -> dict[str, Any]:
        """The map-side share of this pipeline over one shard.

        Runs the leading match (index-pruned as usual) plus the per-row
        stage prefix, then folds into the merge strategy's partial form.
        Everything in the returned dict is picklable -- rows are plain
        JSON values tagged with ``(doc_id, seq)`` ranks, group tables
        carry exported accumulator partials -- so it can cross a worker
        process boundary to :meth:`merge_partials` unchanged.

        ``verdict`` is the coordinator's inherited semantic verdict
        (``"empty"``/``"all"``: enforce without re-proving; ``"off"``:
        skip the semantic pass; ``None``: decide locally against this
        shard's own context).
        """
        if verdict is None:
            decision = optimizer.semantic_plan(collection, self.lead_query)
            kind = optimizer.effective_kind(decision)
        elif verdict == "off":
            kind = "none"
        else:
            kind = verdict
        total = len(collection)
        if kind in ("empty", "all"):
            candidates = None
            scanned = 0
        else:
            candidates = self._candidates(collection)
            scanned = total if candidates is None else len(candidates)
        matched = 0

        def survivor_pairs() -> Iterator[tuple[int, Any]]:
            nonlocal matched
            if kind == "empty":
                return
            lead_pred = self.lead_pred
            if kind == "all":
                for doc_id, tree in collection.documents():
                    matched += 1
                    yield doc_id, tree.to_value()
                return
            count = optimizer.count_verify
            if candidates is None:
                for doc_id, tree in collection.documents():
                    value = tree.to_value()
                    if lead_pred is not None:
                        count()
                    if lead_pred is None or lead_pred(value):
                        matched += 1
                        yield doc_id, value
                return
            for doc_id in sorted(candidates):
                value = collection.get(doc_id).to_value()
                count()
                if lead_pred(value):
                    matched += 1
                    yield doc_id, value

        ranked = run_stages_ranked(
            self.stages[: self.shard_map_count], survivor_pairs()
        )
        strategy = self.merge_strategy
        data: Any
        if strategy == "group-merge":
            group = self.stages[self.shard_map_count]
            data = group.fold_partial(ranked)
            returned = len(data)
        elif strategy == "sort-merge":
            sort = self.stages[self.shard_map_count]
            run = sorted(ranked, key=composite_sort_key(sort.keys))
            if self.local_limit is not None:
                del run[self.local_limit :]
            data = run
            returned = len(run)
        elif strategy == "count-sum":
            data = sum(1 for _ in ranked)
            returned = 1 if data else 0
        else:  # "stream"
            if self.local_limit is not None:
                ranked = islice(ranked, self.local_limit)
            data = list(ranked)
            returned = len(data)
        return {
            "strategy": strategy,
            "total": total,
            "candidates": None if candidates is None else len(candidates),
            "scanned": scanned,
            "matched": matched,
            "returned": returned,
            "data": data,
        }

    def merge_partials(self, partials: list[dict[str, Any]]) -> list[Any]:
        """The reduce-side share: merge per-shard partials, finalise,
        and run the coordinator's stage suffix."""
        split = self.shard_map_count
        strategy = self.merge_strategy
        rows: Iterator[Any]
        if strategy == "group-merge":
            group = self.stages[split]
            rows = group.merge_partial(part["data"] for part in partials)
            rest = self.stages[split + 1 :]
        elif strategy == "sort-merge":
            sort = self.stages[split]
            merged = heapq.merge(
                *(part["data"] for part in partials),
                key=composite_sort_key(sort.keys),
            )
            rows = (row for _, row in merged)
            rest = self.stages[split + 1 :]
        elif strategy == "count-sum":
            count_stage = self.stages[split]
            count = sum(part["data"] for part in partials)
            rows = iter([{count_stage.field: count}] if count else [])
            rest = self.stages[split + 1 :]
        else:  # "stream": ranks are globally unique, so plain tuple
            # comparison on (rank, row) pairs never reaches the rows.
            merged = heapq.merge(*(part["data"] for part in partials))
            rows = (row for _, row in merged)
            rest = self.stages[split:]
        return list(run_stages(rest, rows))

    def explain(
        self, collection: Any, *, no_semantic: bool = False
    ) -> Explain:
        """Run over an indexed collection, reporting what was pruned
        by indexes versus streamed (the find explain's aggregation
        sibling), including the semantic optimizer's verdict."""
        decision = optimizer.semantic_plan(
            collection, self.lead_query, no_semantic=no_semantic
        )
        semantics = None if decision is None else decision.semantics_explain()
        scatter = getattr(collection, "scatter_partial_aggregate", None)
        if scatter is not None:
            kind = optimizer.effective_kind(decision)
            if no_semantic:
                semantic = "off"
            elif kind in ("empty", "all"):
                semantic = kind
            else:
                semantic = None
            partials = scatter(
                {"pipeline": self.pipeline, "semantic": semantic}
            )
            return self._explain_sharded(partials, semantics)
        total = len(collection)
        kind = optimizer.effective_kind(decision)
        if kind == "empty":
            results = sum(1 for _ in run_stages(self.stages, iter(())))
            matched = 0
            candidates = None
            scanned = 0
            survivors: Iterator[Any] = iter(())
        elif kind == "all":
            all_rows = (tree.to_value() for _, tree in collection.documents())
            results = sum(1 for _ in run_stages(self.stages, all_rows))
            matched = total  # the premise entails the match: every doc
            candidates = None
            scanned = 0
            survivors = iter(())
        else:
            raw_candidates = self._candidates(collection)
            scanned = (
                total if raw_candidates is None else len(raw_candidates)
            )
            survivors = self._survivors(collection, raw_candidates)
            matched = 0

            def counted() -> Iterator[Any]:
                nonlocal matched
                for value in survivors:
                    matched += 1
                    yield value

            results = sum(1 for _ in run_stages(self.stages, counted()))
            # An early-exiting stage ($limit) stops pulling; finish the
            # matched count over the untouched survivors.
            for _ in survivors:
                matched += 1
            candidates = (
                raw_candidates if raw_candidates is None
                else len(raw_candidates)
            )
        lead_mode = "index-pruned" if candidates is not None else "streamed"
        reports = [StageExplain("$match", lead_mode)] * self.lead_count
        reports.extend(
            StageExplain(stage.op, "materialised" if stage.blocking else "streamed")
            for stage in self.stages
        )
        return Explain(
            kind="aggregate",
            dialect=_DIALECT,
            source=self.source,
            total=total,
            candidates=candidates,
            scanned=scanned,
            matched=matched,
            results=results,
            stages=tuple(reports),
            semantics=semantics,
        )

    def _explain_sharded(
        self,
        partials: list[dict[str, Any]],
        semantics: Any = None,
    ) -> Explain:
        """Fold per-shard partial reports into one fleet explain."""
        results = len(self.merge_partials(partials))
        shard_reports = tuple(
            ShardExplain(
                shard=index,
                total=part["total"],
                candidates=part["candidates"],
                scanned=part["scanned"],
                matched=part["matched"],
                returned=part["returned"],
            )
            for index, part in enumerate(partials)
        )
        pruning = [part["candidates"] for part in partials]
        candidates = (
            None if any(c is None for c in pruning) else sum(pruning)
        )
        split = self.shard_map_count
        lead_mode = "index-pruned" if candidates is not None else "streamed"
        reports = [StageExplain("$match", lead_mode)] * self.lead_count
        reports.extend(
            StageExplain(stage.op, "map-side") for stage in self.stages[:split]
        )
        rest = split
        if self.merge_strategy != "stream":
            reports.append(StageExplain(self.stages[split].op, "merged"))
            rest = split + 1
        reports.extend(
            StageExplain(
                stage.op, "materialised" if stage.blocking else "streamed"
            )
            for stage in self.stages[rest:]
        )
        return Explain(
            kind="aggregate",
            dialect=_DIALECT,
            source=self.source,
            total=sum(part["total"] for part in partials),
            candidates=candidates,
            scanned=sum(part["scanned"] for part in partials),
            matched=sum(part["matched"] for part in partials),
            results=results,
            stages=tuple(reports),
            shards=shard_reports,
            merge=self.merge_strategy,
            semantics=semantics,
        )

    def __repr__(self) -> str:
        source = self.source if len(self.source) <= 40 else self.source[:37] + "..."
        return f"CompiledPipeline({source!r})"


# ---------------------------------------------------------------------------
# Cached entry points.
# ---------------------------------------------------------------------------


def pipeline_cache_key(pipeline: Any) -> str:
    """Canonical JSON text of a pipeline, the compile-cache key.

    Key order is **not** canonicalised away: it is semantically
    significant in ``$sort`` (precedence) and fixes the output field
    order of ``$project``/``$group``, and Python dicts preserve JSON
    document order -- so the plain dump is already canonical
    per-pipeline, while sorting keys would collide e.g.
    ``{"$sort": {"a": 1, "b": 1}}`` with ``{"$sort": {"b": 1, "a": 1}}``
    and serve one pipeline the other's plan.
    """
    return json.dumps(pipeline, separators=(",", ":"), default=repr)


def compile_pipeline(
    pipeline: list[Any], *, cache: object = USE_DEFAULT_CACHE
) -> CompiledPipeline:
    """Compile an aggregation pipeline, through the artifact cache.

    Keyed on the canonical JSON text in the ``"mongo-aggregate"``
    namespace of the process-wide artifact cache, alongside query plans
    and validators.  Pass ``cache=None`` to force a fresh compilation.
    """
    resolved = resolve_cache(cache)
    if resolved is None:
        return CompiledPipeline(pipeline)
    key = (_DIALECT, pipeline_cache_key(pipeline))
    return resolved.get_or_compute(key, lambda: CompiledPipeline(pipeline))


def aggregate(source: Any, pipeline: list[Any]) -> list[Any]:
    """Run an aggregation pipeline over a collection or tree/value
    iterable (the module-level convenience entry point)."""
    return compile_pipeline(pipeline).execute(source)


def explain_pipeline(
    collection: Any, pipeline: list[Any], *, no_semantic: bool = False
) -> Explain:
    """The staged executor's report for ``pipeline`` over ``collection``."""
    return compile_pipeline(pipeline).explain(
        collection, no_semantic=no_semantic
    )


def partial_aggregate(
    collection: Any, payload: "list[Any] | dict[str, Any]"
) -> dict[str, Any]:
    """One shard's picklable partial result for an aggregation.

    The map-side entry point sharded execution fans out (in a worker
    process or in-line): compiles through the process-wide artifact
    cache -- each worker pays compilation once per distinct pipeline --
    and returns what :meth:`CompiledPipeline.merge_partials` consumes.

    ``payload`` is either a bare pipeline (each shard makes its own
    semantic decision) or the coordinator's scatter envelope
    ``{"pipeline": [...], "semantic": verdict}`` (see
    :meth:`CompiledPipeline.execute_partial`).
    """
    if isinstance(payload, dict):
        pipeline = payload["pipeline"]
        verdict = payload.get("semantic")
    else:
        pipeline = payload
        verdict = None
    return compile_pipeline(pipeline).execute_partial(
        collection, verdict=verdict
    )


# ---------------------------------------------------------------------------
# The naive reference evaluator (differential-test oracle).
# ---------------------------------------------------------------------------


def _naive_group(spec: dict[str, Any], rows: list[Any]) -> list[Any]:
    """Independent $group semantics: collect per-group value lists,
    then apply each accumulator to the list (no streaming fold)."""
    id_expr = compile_expr(spec["_id"])
    names = [name for name in spec if name != "_id"]
    table: dict[Any, tuple[Any, list[list[Any]]]] = {}
    order: list[Any] = []
    for row in rows:
        id_value = id_expr(row)
        if id_value is MISSING:
            id_value = None
        key = canonical_group_key(id_value)
        if key not in table:
            table[key] = (id_value, [[] for _ in names])
            order.append(key)
        collected = table[key][1]
        for slot, name in enumerate(names):
            ((accumulator, operand),) = spec[name].items()
            value = None if accumulator == "$count" else compile_expr(operand)(row)
            collected[slot].append(value)
    results = []
    for key in order:
        id_value, collected = table[key]
        out = {"_id": id_value}
        for slot, name in enumerate(names):
            ((accumulator, _),) = spec[name].items()
            out[name] = _naive_accumulate(accumulator, collected[slot])
        results.append(out)
    return results


def _naive_accumulate(accumulator: str, values: list[Any]) -> Any:
    present = [value for value in values if value is not MISSING]
    numbers = [value for value in present if _is_number(value)]
    if accumulator == "$sum":
        return sum(numbers)
    if accumulator == "$avg":
        return sum(numbers) / len(numbers) if numbers else None
    if accumulator == "$min":
        return min(present, key=sort_key) if present else None
    if accumulator == "$max":
        return max(present, key=sort_key) if present else None
    if accumulator == "$push":
        return present
    if accumulator == "$count":
        return len(values)
    raise ParseError(f"unsupported accumulator {accumulator!r}")


def _naive_sort(spec: dict[str, Any], rows: list[Any]) -> list[Any]:
    """Independent $sort semantics: one comparator over all keys."""
    import functools

    keys = _sort_spec_keys(spec)

    def compare(left: Any, right: Any) -> int:
        for segments, direction in keys:
            left_key = sort_key(resolve_path(left, segments))
            right_key = sort_key(resolve_path(right, segments))
            if left_key < right_key:
                return -direction
            if left_key > right_key:
                return direction
        return 0

    return sorted(rows, key=functools.cmp_to_key(compare))


def _naive_unwind(spec: Any, rows: list[Any]) -> list[Any]:
    segments = _unwind_segments(spec)
    out: list[Any] = []
    for row in rows:
        value = resolve_path(row, segments)
        if value is MISSING or value is None:
            continue
        if not isinstance(value, list):
            out.append(row)
        else:
            out.extend(set_path(row, segments, element) for element in value)
    return out


def naive_aggregate(documents: Iterable[Any], pipeline: list[Any]) -> list[Any]:
    """Reference pipeline evaluation: eager, per-document, no indexes.

    Accepts trees or plain values; every ``$match`` -- leading or not --
    runs through the value-space :func:`match_value`, every stage
    materialises a full list.  Deliberately shares only the *semantic*
    kernels (path resolution, expressions, the sort order) with the
    staged executor, so the differential tests exercise the compiled
    leading-match path, the index pruning and the streaming machinery
    against an independent implementation.
    """
    rows = [
        doc.to_value() if isinstance(doc, JSONTree) else doc
        for doc in documents
    ]
    for op, spec in parse_pipeline(pipeline):
        if op == "$match":
            rows = [row for row in rows if match_value(spec, row)]
        elif op == "$project":
            projection = Projection(spec)
            rows = [projection.apply_value(row) for row in rows]
        elif op == "$unwind":
            rows = _naive_unwind(spec, rows)
        elif op == "$group":
            if not isinstance(spec, dict) or "_id" not in spec:
                raise ParseError("$group takes a document with an _id expression")
            rows = _naive_group(spec, rows)
        elif op == "$sort":
            rows = _naive_sort(spec, rows)
        elif op == "$skip":
            rows = rows[_skip_count(spec) :]
        elif op == "$limit":
            rows = rows[: _limit_count(spec)]
        else:  # $count
            field = _count_field(spec)
            rows = [{field: len(rows)}] if rows else []
    return rows
