"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: the data model, the parsers, the schema layer, the logic
translations and the satisfiability solver.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """An operation would violate the JSON-tree data model (Section 3.1)."""


class DuplicateKeyError(ModelError):
    """An object was built with two key-value pairs sharing the same key.

    The paper's data model makes JSON trees deterministic: condition 2 of
    the formal definition forbids a node from having two outgoing edges
    with the same key.
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"duplicate object key: {key!r}")
        self.key = key


class UnsupportedValueError(ModelError):
    """A Python value falls outside the paper's JSON abstraction.

    The paper restricts documents to objects, arrays, strings and natural
    numbers; ``true``/``false``/``null`` and floats are excluded "to
    abstract from encoding details".
    """


class NavigationError(ReproError):
    """A JSON navigation instruction (Section 2) failed to resolve."""


class ParseError(ReproError):
    """A textual query/formula/document could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class RegexParseError(ParseError):
    """A key regular expression could not be parsed."""


class SchemaError(ReproError):
    """A JSON Schema document is outside the paper's core fragment."""


class WellFormednessError(ReproError):
    """A recursive specification has a cyclic (unguarded) precedence graph.

    Section 5.3 requires the precedence graph of a recursive JSL
    expression -- and of a recursive JSON Schema -- to be acyclic once
    modal-guarded references are discounted.
    """


class TranslationError(ReproError):
    """A formula cannot be translated into the requested formalism."""


class UnsupportedFragmentError(TranslationError):
    """The operation is only defined for a fragment of the logic.

    Raised e.g. when asking for satisfiability of recursive
    non-deterministic JNL with ``EQ(alpha, beta)``, which Proposition 4
    proves undecidable.
    """


class SolverLimitError(ReproError):
    """The satisfiability engine exhausted a configured resource bound.

    The engine is sound (SAT answers are certified by witnesses); this
    error signals that neither SAT nor bounded-UNSAT could be concluded
    within the configured limits.
    """


class StreamingError(ReproError):
    """The streaming tokenizer or validator rejected its input."""


class StoreError(ReproError):
    """An operation on an indexed document collection failed."""


class StorageFormatError(StoreError):
    """A persistent artifact (WAL file, snapshot) was not recognised.

    Raised when a file's magic, ``format`` tag or ``version`` field is
    not one this build knows how to read -- a *torn tail*, by contrast,
    is recovered silently by truncating back to the committed prefix.
    The distinction keeps future format changes loud: an engine never
    silently misreads (or truncates) data written by another version.
    """


class StorageIOError(StoreError):
    """A storage operation failed at the I/O layer (disk, filesystem).

    Raised when the durable engine's writes hit the operating system's
    failure surface -- ``ENOSPC``, ``EIO``, a short write, a failed
    ``fsync`` or rename -- as opposed to :class:`StorageFormatError`,
    which means the *bytes* on disk are not ones this build understands.
    The original :class:`OSError` is always chained as ``__cause__``.

    After raising from a commit or checkpoint, the engine enters
    degraded read-only mode: reads keep answering from memory, further
    writes raise :class:`CollectionReadOnlyError`.
    """

    def __init__(self, message: str, *, rolled_back: bool = True) -> None:
        super().__init__(message)
        #: Whether the engine managed to roll the log file back to its
        #: pre-operation state.  ``False`` means the tail may hold a
        #: fully-written frame the caller was *not* acknowledged for;
        #: recovery may replay it (a ghost write, never a lost one).
        self.rolled_back = rolled_back


class CollectionReadOnlyError(StoreError):
    """A write reached an engine that is in degraded read-only mode.

    After any append or checkpoint failure the durable engine stops
    accepting writes rather than let memory diverge from disk; the
    :class:`StorageIOError` that tripped the degradation is chained as
    ``__cause__`` so callers can see the root cause.  Reads, queries
    and explains keep working from memory; reopening the database
    recovers the acknowledged prefix and clears the condition.
    """


class UpdateError(StoreError):
    """An update operator could not be applied to a document.

    Raised at apply time for type mismatches MongoDB also refuses --
    ``$inc`` on a non-number, ``$push`` on a non-array, creating a path
    through an existing scalar -- and for the documented deviations
    (array indexes may not be created past the end, ``$unset`` cannot
    remove an array element).  Nothing is modified when it raises.
    """


class DocumentRejectedError(StoreError):
    """A schema-enforced collection refused to ingest a document.

    Raised by :meth:`repro.store.Collection.insert` (and the bulk
    constructor path) when the collection's compiled validator rejects
    the document; nothing is inserted and the indexes are untouched.
    """

    def __init__(self, position: int, message: str | None = None) -> None:
        super().__init__(
            message
            or f"document at position {position} rejected by the "
            "collection schema"
        )
        self.position = position
