"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: the data model, the parsers, the schema layer, the logic
translations, the satisfiability solver and the store.

**Wire taxonomy.**  Every public exception class carries a stable
``code`` string (``"store.document-rejected"``, ``"storage.io"``, ...)
that survives serialisation: the server ships errors as
``{"code", "message", "data"}`` payloads (:func:`to_wire`) and the
client rehydrates them to the *same* exception class
(:func:`from_wire`), so ``except DocumentRejectedError`` works
identically against a local collection and a remote one.  Codes are
part of the wire contract -- renaming one is a protocol break, adding
a class means giving it a fresh code.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""

    #: Stable wire identifier for this class (see :func:`to_wire`).
    code = "repro.error"

    def _wire_data(self) -> dict[str, Any] | None:
        """Structured fields to ship alongside the message, if any."""
        return None

    @classmethod
    def _from_wire(cls, message: str, data: dict[str, Any]) -> "ReproError":
        """Rebuild an instance from its wire payload.

        The default works for every class whose constructor accepts a
        single message; classes with richer signatures override it to
        restore their structured attributes from ``data``.
        """
        return cls(message)


class ModelError(ReproError):
    """An operation would violate the JSON-tree data model (Section 3.1)."""

    code = "model.error"


class DuplicateKeyError(ModelError):
    """An object was built with two key-value pairs sharing the same key.

    The paper's data model makes JSON trees deterministic: condition 2 of
    the formal definition forbids a node from having two outgoing edges
    with the same key.
    """

    code = "model.duplicate-key"

    def __init__(self, key: str) -> None:
        super().__init__(f"duplicate object key: {key!r}")
        self.key = key

    def _wire_data(self) -> dict[str, Any]:
        return {"key": self.key}

    @classmethod
    def _from_wire(cls, message: str, data: dict[str, Any]) -> "DuplicateKeyError":
        return cls(str(data.get("key", "?")))


class UnsupportedValueError(ModelError):
    """A Python value falls outside the paper's JSON abstraction.

    The paper restricts documents to objects, arrays, strings and natural
    numbers; ``true``/``false``/``null`` and floats are excluded "to
    abstract from encoding details".
    """

    code = "model.unsupported-value"


class NavigationError(ReproError):
    """A JSON navigation instruction (Section 2) failed to resolve."""

    code = "model.navigation"


class ParseError(ReproError):
    """A textual query/formula/document could not be parsed."""

    code = "parse.error"

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position

    def _wire_data(self) -> dict[str, Any] | None:
        if self.position is None:
            return None
        return {"position": self.position}

    @classmethod
    def _from_wire(cls, message: str, data: dict[str, Any]) -> "ParseError":
        # The message already embeds the position suffix; restore only
        # the structured attribute, never double-append.
        error = cls(message)
        position = data.get("position")
        if isinstance(position, int):
            error.position = position
        return error


class RegexParseError(ParseError):
    """A key regular expression could not be parsed."""

    code = "parse.regex"


class SchemaError(ReproError):
    """A JSON Schema document is outside the paper's core fragment."""

    code = "schema.error"


class WellFormednessError(ReproError):
    """A recursive specification has a cyclic (unguarded) precedence graph.

    Section 5.3 requires the precedence graph of a recursive JSL
    expression -- and of a recursive JSON Schema -- to be acyclic once
    modal-guarded references are discounted.
    """

    code = "schema.well-formedness"


class TranslationError(ReproError):
    """A formula cannot be translated into the requested formalism."""

    code = "logic.translation"


class UnsupportedFragmentError(TranslationError):
    """The operation is only defined for a fragment of the logic.

    Raised e.g. when asking for satisfiability of recursive
    non-deterministic JNL with ``EQ(alpha, beta)``, which Proposition 4
    proves undecidable.
    """

    code = "logic.unsupported-fragment"


class SolverLimitError(ReproError):
    """The satisfiability engine exhausted a configured resource bound.

    The engine is sound (SAT answers are certified by witnesses); this
    error signals that neither SAT nor bounded-UNSAT could be concluded
    within the configured limits.
    """

    code = "solver.limit"


class StreamingError(ReproError):
    """The streaming tokenizer or validator rejected its input."""

    code = "streaming.error"


class StoreError(ReproError):
    """An operation on an indexed document collection failed."""

    code = "store.error"


class StorageFormatError(StoreError):
    """A persistent artifact (WAL file, snapshot) was not recognised.

    Raised when a file's magic, ``format`` tag or ``version`` field is
    not one this build knows how to read -- a *torn tail*, by contrast,
    is recovered silently by truncating back to the committed prefix.
    The distinction keeps future format changes loud: an engine never
    silently misreads (or truncates) data written by another version.
    """

    code = "storage.format"


class StorageIOError(StoreError):
    """A storage operation failed at the I/O layer (disk, filesystem).

    Raised when the durable engine's writes hit the operating system's
    failure surface -- ``ENOSPC``, ``EIO``, a short write, a failed
    ``fsync`` or rename -- as opposed to :class:`StorageFormatError`,
    which means the *bytes* on disk are not ones this build understands.
    The original :class:`OSError` is always chained as ``__cause__``.

    After raising from a commit or checkpoint, the engine enters
    degraded read-only mode: reads keep answering from memory, further
    writes raise :class:`CollectionReadOnlyError`.
    """

    code = "storage.io"

    def __init__(self, message: str, *, rolled_back: bool = True) -> None:
        super().__init__(message)
        #: Whether the engine managed to roll the log file back to its
        #: pre-operation state.  ``False`` means the tail may hold a
        #: fully-written frame the caller was *not* acknowledged for;
        #: recovery may replay it (a ghost write, never a lost one).
        self.rolled_back = rolled_back

    def _wire_data(self) -> dict[str, Any]:
        return {"rolled_back": self.rolled_back}

    @classmethod
    def _from_wire(cls, message: str, data: dict[str, Any]) -> "StorageIOError":
        return cls(message, rolled_back=bool(data.get("rolled_back", True)))


class CollectionReadOnlyError(StoreError):
    """A write reached an engine that is in degraded read-only mode.

    After any append or checkpoint failure the durable engine stops
    accepting writes rather than let memory diverge from disk; the
    :class:`StorageIOError` that tripped the degradation is chained as
    ``__cause__`` so callers can see the root cause.  Reads, queries
    and explains keep working from memory; reopening the database
    recovers the acknowledged prefix and clears the condition.
    """

    code = "store.read-only"


class UpdateError(StoreError):
    """An update operator could not be applied to a document.

    Raised at apply time for type mismatches MongoDB also refuses --
    ``$inc`` on a non-number, ``$push`` on a non-array, creating a path
    through an existing scalar -- and for the documented deviations
    (array indexes may not be created past the end, ``$unset`` cannot
    remove an array element).  Nothing is modified when it raises.
    """

    code = "store.update"


class DocumentRejectedError(StoreError):
    """A schema-enforced collection refused to ingest a document.

    Raised by :meth:`repro.store.Collection.insert` (and the bulk
    constructor path) when the collection's compiled validator rejects
    the document; nothing is inserted and the indexes are untouched.
    """

    code = "store.document-rejected"

    def __init__(self, position: int, message: str | None = None) -> None:
        super().__init__(
            message
            or f"document at position {position} rejected by the "
            "collection schema"
        )
        self.position = position

    def _wire_data(self) -> dict[str, Any]:
        return {"position": self.position}

    @classmethod
    def _from_wire(
        cls, message: str, data: dict[str, Any]
    ) -> "DocumentRejectedError":
        position = data.get("position")
        return cls(position if isinstance(position, int) else -1, message)


class WireProtocolError(ReproError):
    """A server or client received a frame it could not understand.

    Raised for oversized lines, non-JSON frames, missing request
    fields, or an unknown operation -- the transport worked, the
    *content* did not conform to the JSON-lines protocol.
    """

    code = "wire.protocol"


class ServerError(ReproError):
    """The server failed internally while handling a request.

    The catch-all rehydration class: an exception that crossed the wire
    with a code this build does not recognise also lands here, with the
    original code preserved in :attr:`remote_code`.
    """

    code = "server.error"

    def __init__(self, message: str, *, remote_code: str | None = None) -> None:
        super().__init__(message)
        #: The code the remote actually sent (when it was not ours).
        self.remote_code = remote_code or self.code

    def _wire_data(self) -> dict[str, Any] | None:
        if self.remote_code == self.code:
            return None
        return {"remote_code": self.remote_code}

    @classmethod
    def _from_wire(cls, message: str, data: dict[str, Any]) -> "ServerError":
        remote = data.get("remote_code")
        return cls(
            message, remote_code=remote if isinstance(remote, str) else None
        )


# ---------------------------------------------------------------------------
# The wire registry: code string <-> exception class.
# ---------------------------------------------------------------------------


def _registry() -> dict[str, type[ReproError]]:
    """``code -> class`` over the whole hierarchy, built on first use.

    Walking ``__subclasses__`` keeps the registry honest: a class added
    without a distinct ``code`` shadows its parent and the duplicate
    check below fails loudly in the test suite.
    """
    classes: dict[str, type[ReproError]] = {}
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        existing = classes.get(cls.code)
        # A subclass that does not override ``code`` shares its
        # parent's; the parent (shallower, registered first) wins so
        # rehydration picks the most general class for the code.
        if existing is None or issubclass(existing, cls):
            classes[cls.code] = cls
        stack.extend(cls.__subclasses__())
    return classes


_WIRE_CLASSES: dict[str, type[ReproError]] | None = None


def error_code(error: BaseException) -> str:
    """The stable wire code for an exception (``server.error`` for
    anything outside the repro hierarchy)."""
    if isinstance(error, ReproError):
        return error.code
    return ServerError.code


def to_wire(error: BaseException) -> dict[str, Any]:
    """Serialise an exception as a ``{"code","message","data"}`` payload."""
    payload: dict[str, Any] = {
        "code": error_code(error),
        "message": str(error),
    }
    if isinstance(error, ReproError):
        data = error._wire_data()
        if data:
            payload["data"] = data
    return payload


def from_wire(payload: Any) -> ReproError:
    """Rehydrate a wire error payload to its exception class.

    An unknown or missing code lands on :class:`ServerError` with the
    remote code preserved -- a newer server can grow codes without
    breaking older clients, they just catch less precisely.
    """
    global _WIRE_CLASSES
    if _WIRE_CLASSES is None:
        _WIRE_CLASSES = _registry()
    if not isinstance(payload, dict):
        return ServerError(f"malformed wire error payload: {payload!r}")
    code = payload.get("code")
    message = str(payload.get("message", ""))
    data = payload.get("data")
    cls = _WIRE_CLASSES.get(code) if isinstance(code, str) else None
    if cls is None:
        return ServerError(
            message or f"remote error with unknown code {code!r}",
            remote_code=code if isinstance(code, str) else None,
        )
    return cls._from_wire(message, data if isinstance(data, dict) else {})
