"""Deprecated query-facing view of the shared compiled-artifact cache.

PR 1 introduced this module as the compiled-query subsystem's private
LRU; the compiled-validation subsystem generalised it into the
process-wide artifact cache of :mod:`repro.cache`, shared by query
plans, validators *and* logical plans, with unified hit/miss/eviction
stats.  This shim re-exports the cache machinery under its original
names only for backwards compatibility.

.. deprecated:: 1.3
   Import from :mod:`repro.cache` instead (``artifact_cache``,
   ``artifact_cache_stats``, ``clear_artifact_cache``,
   ``configure_artifact_cache``, ``LRUCache``, ``CacheStats``,
   ``DEFAULT_CAPACITY``).  The aliases here will be removed in a
   future release.
"""

from __future__ import annotations

import warnings

from repro.cache import (
    DEFAULT_CAPACITY,
    CacheStats,
    LRUCache,
    artifact_cache as query_cache,
    artifact_cache_stats as query_cache_stats,
    clear_artifact_cache as clear_query_cache,
    configure_artifact_cache as configure_query_cache,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "DEFAULT_CAPACITY",
    "query_cache",
    "query_cache_stats",
    "clear_query_cache",
    "configure_query_cache",
]

warnings.warn(
    "repro.query.cache is deprecated; import the artifact cache from "
    "repro.cache instead (query_cache -> artifact_cache, "
    "query_cache_stats -> artifact_cache_stats, ...)",
    DeprecationWarning,
    stacklevel=2,
)
