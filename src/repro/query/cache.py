"""Query-facing view of the shared compiled-artifact cache.

PR 1 introduced this module as the compiled-query subsystem's private
LRU; the compiled-validation subsystem generalised it into the
process-wide artifact cache of :mod:`repro.cache`, shared by query
plans *and* validators with unified hit/miss/eviction stats.  This
module re-exports the cache machinery under its original names so the
query API is unchanged: :func:`query_cache` *is* the artifact cache.
"""

from __future__ import annotations

from repro.cache import (
    DEFAULT_CAPACITY,
    CacheStats,
    LRUCache,
    artifact_cache as query_cache,
    artifact_cache_stats as query_cache_stats,
    clear_artifact_cache as clear_query_cache,
    configure_artifact_cache as configure_query_cache,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "DEFAULT_CAPACITY",
    "query_cache",
    "query_cache_stats",
    "clear_query_cache",
    "configure_query_cache",
]
