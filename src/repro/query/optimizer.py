"""The schema-aware semantic optimizer: satisfiability-driven pruning.

The pass sits between IR extraction and physical planning.  A filter
query carries its evaluation payload (a unary JNL formula); a
collection that enforces a schema -- or, schemaless, maintains an
inferred structural summary (:mod:`repro.store.summary`) -- exposes a
:class:`SemanticContext` whose ``formula`` is a JSL premise every live
document satisfies (Theorem 1 for schemas).  Translating the payload
into JSL (Theorem 2, :mod:`repro.translate.jnl_to_jsl`) turns planning
questions into satisfiability questions for the bounded solver of
:mod:`repro.jsl.satisfiability`:

* ``premise ^ payload`` unsatisfiable  ==>  verdict ``"empty"``: no
  admissible document can match; answer ``[]``/``0`` without touching
  an index or materialising a document;
* ``premise ^ ~payload`` unsatisfiable  ==>  verdict ``"all"``: every
  admissible document matches; skip index probing *and* per-document
  verification;
* otherwise, try each top-level conjunct of the payload: the entailed
  ones are discharged and only the **residual** conjunction is
  verified on index survivors (verdict ``"residual"``);
* anything else -- including payloads outside Theorem 2's fragment,
  prover timeouts and plain unprovable queries -- is verdict
  ``"none"``: execution proceeds exactly as without this module.

Every verdict is memoised in the process-wide artifact cache under the
``"semantic-verdict"`` namespace, keyed on the context fingerprint
(schema text, or summary identity + revision) and the query's dialect +
source, so a hot query pays the prover once per schema generation.  A
per-query wall-clock budget plus the solver's own resource bounds make
the pass safe on adversarial schemas: an unfinished proof is recorded
as ``"none"`` with ``timed_out=True`` and execution falls through.

Soundness note: verdicts are only ever produced for collections whose
documents live in the non-``extended`` value universe (objects, arrays,
strings, naturals) -- exactly the model class of the JSL solver -- and
only when the **whole payload** (or a conjunct of it) is proven, never
from the lossy sargable-predicate layer, whose predicates are necessary
but not sufficient conditions.
"""

from __future__ import annotations

import json
from dataclasses import astuple, dataclass, field
from time import perf_counter
from typing import Any

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.errors import UnsupportedFragmentError
from repro.jnl import ast as jnl
from repro.jsl.entailment import conjoin, negate, unsat
from repro.jsl.satisfiability import SolverConfig
from repro.query import ir
from repro.query.compiled import CompiledQuery, compile_formula
from repro.translate.jnl_to_jsl import jnl_to_jsl

__all__ = [
    "OPTIMIZE_MODES",
    "OptimizerConfig",
    "SemanticContext",
    "SemanticVerdict",
    "SemanticDecision",
    "semantic_plan",
    "effective_kind",
    "describe_formula",
    "check_optimize_mode",
    "count_verify",
    "reset_verify_calls",
    "verify_calls",
]

OPTIMIZE_MODES = ("on", "off", "proof-only")


def check_optimize_mode(mode: str) -> str:
    """Validate an ``optimize=`` knob value (shared by every facade)."""
    if mode not in OPTIMIZE_MODES:
        from repro.errors import StoreError

        raise StoreError(
            f"optimize must be one of {', '.join(OPTIMIZE_MODES)}, "
            f"got {mode!r}"
        )
    return mode


# ---------------------------------------------------------------------------
# The verification-call counter (benchmark instrumentation).
#
# Incremented by the execution paths at every per-document verification
# of a filter (compiled ``matches`` / value-space predicate) -- the work
# an ``"all"``/``"residual"`` verdict exists to eliminate.
# ---------------------------------------------------------------------------

VERIFY_CALLS = 0


def count_verify() -> None:
    global VERIFY_CALLS
    VERIFY_CALLS += 1


def reset_verify_calls() -> None:
    global VERIFY_CALLS
    VERIFY_CALLS = 0


def verify_calls() -> int:
    return VERIFY_CALLS


# ---------------------------------------------------------------------------
# Configuration and the context collections expose.
# ---------------------------------------------------------------------------


def _proof_solver() -> SolverConfig:
    """Solver bounds for optimizer proofs: tighter than the default
    satisfiability entry point, so a single obligation stays well under
    the per-query budget even on adversarial ``not``-heavy schemas."""
    return SolverConfig(
        max_rounds=48,
        dnf_limit=512,
        goal_limit=6000,
        int_scan_limit=2048,
        key_samples=16,
        max_children=10,
        max_demand=48,
    )


@dataclass(frozen=True)
class OptimizerConfig:
    """Resource bounds for one query's worth of proof obligations.

    ``budget_ms`` is a wall-clock deadline checked **between**
    obligations (each obligation is itself bounded by ``solver``): once
    exceeded, the remaining obligations are skipped and the verdict
    falls through as ``"none"``/partial-``"residual"`` with
    ``timed_out=True``.
    """

    budget_ms: float = 25.0
    solver: SolverConfig = field(default_factory=_proof_solver)


DEFAULT_CONFIG = OptimizerConfig()


@dataclass(frozen=True)
class SemanticContext:
    """What a collection tells the optimizer about its documents.

    ``formula`` is a JSL premise satisfied by **every live document**
    (and every document a snapshot of the collection can pin);
    ``source`` names where it came from (``"schema"``/``"summary"``);
    ``fingerprint`` is a hashable identity that changes whenever the
    premise does -- the verdict-cache key component.  ``mode`` is the
    collection's ``optimize`` knob (``"off"`` never builds a context).
    """

    mode: str
    source: str
    fingerprint: tuple
    formula: Any


@dataclass(frozen=True)
class SemanticVerdict:
    """The (cacheable) outcome of the proof obligations for one query."""

    kind: str  # "empty" | "all" | "residual" | "none"
    source: str
    discharged: tuple[str, ...] = ()
    residual: str | None = None
    residual_query: CompiledQuery | None = None
    proof_ms: float = 0.0
    timed_out: bool = False


@dataclass(frozen=True)
class SemanticDecision:
    """A verdict plus how this collection applies it.

    ``mode="on"`` enforces the verdict (execution short-circuits);
    ``mode="proof-only"`` reports it in explain output while execution
    stays byte-identical to ``optimize="off"``.
    """

    verdict: SemanticVerdict
    mode: str
    cached: bool

    @property
    def effective(self) -> str:
        """The verdict kind execution may act on (``"none"`` unless
        the collection's mode enforces verdicts)."""
        return self.verdict.kind if self.mode == "on" else "none"

    def semantics_explain(self):
        from repro.explain import SemanticsExplain

        return SemanticsExplain(
            mode=self.mode,
            verdict=self.verdict.kind,
            source=self.verdict.source,
            discharged=self.verdict.discharged,
            residual=self.verdict.residual,
            proof_ms=self.verdict.proof_ms,
            timed_out=self.verdict.timed_out,
            cached=self.cached,
        )


def effective_kind(decision: SemanticDecision | None) -> str:
    """The enforceable verdict kind of a possibly-absent decision."""
    return "none" if decision is None else decision.effective


# ---------------------------------------------------------------------------
# Rendering JNL formulas for explain output.
# ---------------------------------------------------------------------------


def describe_formula(formula: jnl.Unary | jnl.Binary) -> str:
    """A compact, stable rendering of a JNL payload (paper notation)."""
    if isinstance(formula, jnl.Top):
        return "T"
    if isinstance(formula, jnl.Not):
        return f"~{describe_formula(formula.operand)}"
    if isinstance(formula, jnl.And):
        return (
            f"({describe_formula(formula.left)} ^ "
            f"{describe_formula(formula.right)})"
        )
    if isinstance(formula, jnl.Or):
        return (
            f"({describe_formula(formula.left)} v "
            f"{describe_formula(formula.right)})"
        )
    if isinstance(formula, jnl.Exists):
        return f"[{describe_formula(formula.path)}]"
    if isinstance(formula, jnl.EqDoc):
        return (
            f"EQ({describe_formula(formula.path)}, "
            f"{json.dumps(formula.doc.to_value(), separators=(',', ':'))})"
        )
    if isinstance(formula, jnl.EqPath):
        return (
            f"EQ({describe_formula(formula.left)}, "
            f"{describe_formula(formula.right)})"
        )
    if isinstance(formula, jnl.Atom):
        return formula.test.describe()
    if isinstance(formula, jnl.Eps):
        return "eps"
    if isinstance(formula, jnl.Test):
        return f"<{describe_formula(formula.condition)}>"
    if isinstance(formula, jnl.Key):
        return f"X_{formula.word}"
    if isinstance(formula, jnl.Index):
        return f"X_{formula.position}"
    if isinstance(formula, jnl.KeyRegex):
        return f"X_{formula.lang.describe()}"
    if isinstance(formula, jnl.IndexRange):
        high = "inf" if formula.high is None else formula.high
        return f"X_{{{formula.low}:{high}}}"
    if isinstance(formula, jnl.Compose):
        return f"{describe_formula(formula.left)}.{describe_formula(formula.right)}"
    if isinstance(formula, jnl.Union):
        return (
            f"({describe_formula(formula.left)} u "
            f"{describe_formula(formula.right)})"
        )
    if isinstance(formula, jnl.Star):
        return f"({describe_formula(formula.inner)})*"
    return repr(formula)


# ---------------------------------------------------------------------------
# The proof obligations.
# ---------------------------------------------------------------------------


def _conjuncts(formula: jnl.Unary) -> list[jnl.Unary]:
    """Top-level conjuncts, left to right (the And tree flattened)."""
    out: list[jnl.Unary] = []
    stack: list[jnl.Unary] = [formula]
    while stack:
        current = stack.pop()
        if isinstance(current, jnl.And):
            stack.append(current.right)
            stack.append(current.left)
        else:
            out.append(current)
    return out


def _conjoin_jnl(conjuncts: list[jnl.Unary]) -> jnl.Unary:
    result = conjuncts[0]
    for part in conjuncts[1:]:
        result = jnl.And(result, part)
    return result


def _prove(
    context: SemanticContext,
    payload: jnl.Unary,
    config: OptimizerConfig,
) -> SemanticVerdict:
    """Run the obligation ladder for one payload against one premise."""
    started = perf_counter()
    deadline = started + config.budget_ms / 1000.0

    def elapsed_ms() -> float:
        return (perf_counter() - started) * 1000.0

    def out_of_budget() -> bool:
        return perf_counter() >= deadline

    try:
        payload_jsl = jnl_to_jsl(payload)
    except UnsupportedFragmentError:
        return SemanticVerdict(
            kind="none", source=context.source, proof_ms=elapsed_ms()
        )
    premise = context.formula
    timed_out = False

    # (a) unsat => empty.
    proved, complete = unsat(conjoin(premise, payload_jsl), config.solver)
    timed_out = timed_out or not complete
    if proved:
        return SemanticVerdict(
            kind="empty",
            source=context.source,
            discharged=(describe_formula(payload),),
            proof_ms=elapsed_ms(),
        )
    if out_of_budget():
        return SemanticVerdict(
            kind="none",
            source=context.source,
            proof_ms=elapsed_ms(),
            timed_out=True,
        )

    # (b) implied => verify-free.
    proved, complete = unsat(
        conjoin(premise, negate(payload_jsl)), config.solver
    )
    timed_out = timed_out or not complete
    if proved:
        return SemanticVerdict(
            kind="all",
            source=context.source,
            discharged=(describe_formula(payload),),
            proof_ms=elapsed_ms(),
        )

    # (c) conjunct-wise: discharge the entailed parts, verify the rest.
    conjuncts = _conjuncts(payload)
    if len(conjuncts) > 1:
        discharged: list[jnl.Unary] = []
        residual: list[jnl.Unary] = []
        for position, conjunct in enumerate(conjuncts):
            if out_of_budget():
                timed_out = True
                residual.extend(conjuncts[position:])
                break
            try:
                conjunct_jsl = jnl_to_jsl(conjunct)
            except UnsupportedFragmentError:
                residual.append(conjunct)
                continue
            proved, complete = unsat(
                conjoin(premise, negate(conjunct_jsl)), config.solver
            )
            timed_out = timed_out or not complete
            if proved:
                discharged.append(conjunct)
            else:
                residual.append(conjunct)
        if discharged:
            names = tuple(describe_formula(part) for part in discharged)
            if not residual:
                return SemanticVerdict(
                    kind="all",
                    source=context.source,
                    discharged=names,
                    proof_ms=elapsed_ms(),
                    timed_out=timed_out,
                )
            residual_formula = _conjoin_jnl(residual)
            return SemanticVerdict(
                kind="residual",
                source=context.source,
                discharged=names,
                residual=describe_formula(residual_formula),
                residual_query=compile_formula(residual_formula),
                proof_ms=elapsed_ms(),
                timed_out=timed_out,
            )
    return SemanticVerdict(
        kind="none",
        source=context.source,
        proof_ms=elapsed_ms(),
        timed_out=timed_out,
    )


# ---------------------------------------------------------------------------
# The entry point execution paths consult.
# ---------------------------------------------------------------------------


def semantic_plan(
    collection: Any,
    query: CompiledQuery | None,
    *,
    no_semantic: bool = False,
    config: OptimizerConfig | None = None,
    cache: object = USE_DEFAULT_CACHE,
) -> SemanticDecision | None:
    """The semantic decision for one query over one collection.

    Returns ``None`` -- proceed exactly as before -- when the
    collection exposes no :class:`SemanticContext` (no schema/summary,
    ``optimize="off"``, extended values, a duck-typed source), when the
    per-query ``hint={"no_semantic": True}`` escape hatch is set, or
    when the payload is not a filter formula.  Verdicts are memoised on
    ``(context fingerprint, dialect, source)`` in the process-wide
    artifact cache; ``cache=None`` forces a fresh proof.
    """
    if no_semantic or query is None:
        return None
    context = getattr(collection, "semantic_context", None)
    if context is None:
        return None
    plan = query.plan
    if plan.mode != ir.MODE_FILTER or plan.formula is None:
        return None
    config = config or DEFAULT_CONFIG
    resolved = resolve_cache(cache)
    computed = False

    def build() -> SemanticVerdict:
        nonlocal computed
        computed = True
        return _prove(context, plan.formula, config)

    if resolved is None:
        verdict = build()
    else:
        key = (
            "semantic-verdict",
            context.fingerprint,
            query.dialect,
            query.source,
            config.budget_ms,
            astuple(config.solver),
        )
        verdict = resolved.get_or_compute(key, build)
    return SemanticDecision(
        verdict=verdict, mode=context.mode, cached=not computed
    )
