"""The collection query planner: prune via indexes, evaluate survivors.

The execution model for a query over an indexed collection
(:class:`repro.store.Collection`) has three stages:

1. **Plan** -- the front-end's compiled query carries a
   :class:`~repro.query.ir.LogicalPlan` whose predicates are necessary
   conditions for a match (sargable path/value/kind/key facts);
2. **Prune** -- :func:`candidate_ids` folds the predicate tree over
   the collection's secondary indexes: leaves look up postings,
   conjunctions intersect (smallest first), disjunctions union, and
   anything unindexable dissolves to "all documents";
3. **Scan survivors** -- the PR-1 compiled per-tree evaluation
   (``matches``/``select``/``apply``) runs on the candidates only, in
   document-id order, so results are *identical* to a full scan -- the
   indexes never decide a match, they only skip documents that provably
   cannot match.

Candidates are recomputed from the live indexes on every call (plans
are tree-independent and cached process-wide; candidate sets never
are), so a mutated collection can never serve stale answers.

Before stages 2 and 3 the planner consults the schema-aware semantic
optimizer (:mod:`repro.query.optimizer`): an enforced ``"empty"``
verdict answers without touching an index, ``"all"`` streams every
live document verify-free, and ``"residual"`` verifies only the
conjuncts the schema could not discharge.  Collections opt in by
exposing a ``semantic_context``; everything else (and every
``no_semantic=True`` call) takes the classic prune-and-verify path.

The module is deliberately ignorant of :mod:`repro.store` internals:
anything with ``indexes``/``documents()``/``version`` duck-types as a
collection, which keeps the import graph acyclic (store builds on the
planner, not vice versa).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.explain import Explain, PlanExplain
from repro.model.tree import JSONTree, JSONValue
from repro.query import ir, optimizer
from repro.query.compiled import CompiledQuery
from repro.query.optimizer import SemanticDecision

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.store.collection import Collection
    from repro.store.indexes import DocumentIndexes

__all__ = [
    "PlanExplain",
    "candidate_ids",
    "match_ids",
    "match_flags",
    "count_matches",
    "find_documents",
    "find_rows",
    "select_nodes",
    "select_values",
    "explain",
]


# ---------------------------------------------------------------------------
# Stage 2: predicate -> candidate document ids.
# ---------------------------------------------------------------------------


def candidate_ids(
    predicate: ir.Pred, indexes: "DocumentIndexes"
) -> set[int] | None:
    """Documents possibly satisfying ``predicate``; ``None`` = all.

    Sound by construction: the returned set is a superset of the
    documents where the predicate holds, hence (the predicate being a
    necessary condition) of the documents the query matches.  The
    returned set is the caller's to keep (never an index internal).
    """
    result, owned = _fold_candidates(predicate, indexes)
    if result is None or owned:
        return result
    return set(result)


def _fold_candidates(
    predicate: ir.Pred, indexes: "DocumentIndexes"
) -> tuple[set[int] | None, bool]:
    """The candidate fold proper, returning ``(candidates, owned)``.

    Leaves return the live (read-only) index postings without copying
    (``owned=False``); connectives copy only when they genuinely
    combine -- a conjunction copies just its smallest operand, a
    disjunction with one non-empty branch passes it through.  So a
    selective query never materialises the big ``PathExists``-style
    postings it intersects against.
    """
    if isinstance(predicate, ir.TruePred):
        return None, True
    if isinstance(predicate, ir.AndPred):
        narrowed = [
            folded
            for part in predicate.parts
            if (folded := _fold_candidates(part, indexes))[0] is not None
        ]
        if not narrowed:
            return None, True
        narrowed.sort(key=lambda folded: len(folded[0]))
        smallest, owned = narrowed[0]
        if len(narrowed) == 1:
            return smallest, owned
        result = set(smallest)
        for other, _ in narrowed[1:]:
            result &= other
            if not result:
                break
        return result, True
    if isinstance(predicate, ir.OrPred):
        parts: list[tuple[set[int], bool]] = []
        for part in predicate.parts:
            folded = _fold_candidates(part, indexes)
            if folded[0] is None:
                return None, True
            if folded[0]:
                parts.append(folded)
        if not parts:
            return set(), True
        if len(parts) == 1:
            return parts[0]
        result = set(parts[0][0])
        for other, _ in parts[1:]:
            result |= other
        return result, True
    if isinstance(predicate, ir.PathExists):
        return indexes.docs_with_path(predicate.path), False
    if isinstance(predicate, ir.PathEq):
        return indexes.docs_with_value(predicate.path, predicate.value), False
    if isinstance(predicate, ir.PathKind):
        return indexes.docs_with_kind(predicate.path, predicate.kind), False
    if isinstance(predicate, ir.PathRange):
        return (
            indexes.docs_in_range(predicate.path, predicate.low, predicate.high),
            True,
        )
    if isinstance(predicate, ir.HasKey):
        return indexes.docs_with_key(predicate.key), False
    if isinstance(predicate, ir.TailEq):
        return (
            indexes.docs_with_tail_value(predicate.key, predicate.value),
            False,
        )
    if isinstance(predicate, ir.AnyEq):
        return indexes.docs_with_any_value(predicate.value), False
    return None, True  # Unknown predicate: never prune on it.


def _survivors(
    collection: "Collection", predicate: ir.Pred
) -> tuple[list[tuple[int, JSONTree]], int | None]:
    """Live ``(doc_id, tree)`` pairs to scan, in document-id order."""
    indexes = collection.indexes
    candidates = None
    if indexes is not None:
        candidates = candidate_ids(predicate, indexes)
    if candidates is None:
        return list(collection.documents()), None
    return (
        [(doc_id, tree) for doc_id, tree in collection.documents()
         if doc_id in candidates],
        len(candidates),
    )


# ---------------------------------------------------------------------------
# Stage 3: evaluate the compiled payload on the survivors.
# ---------------------------------------------------------------------------


def _matching(
    collection: "Collection",
    query: CompiledQuery,
    decision: SemanticDecision | None = None,
) -> Iterable[tuple[int, JSONTree]]:
    kind = optimizer.effective_kind(decision)
    if kind == "empty":
        return
    if kind == "all":
        # The premise entails the query: every live document matches.
        yield from collection.documents()
        return
    if kind == "residual":
        verify = decision.verdict.residual_query.matches
    else:
        verify = query.matches
    survivors, _ = _survivors(collection, query.plan.match_predicate)
    count = optimizer.count_verify
    for doc_id, tree in survivors:
        count()
        if verify(tree):
            yield doc_id, tree


def match_ids(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> list[int]:
    """Ids of the documents the query matches (root match / non-empty
    selection), in document-id order."""
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    return [doc_id for doc_id, _ in _matching(collection, query, decision)]


def match_flags(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> list[bool]:
    """One verdict per live document, aligned with ``documents()`` order.

    Pruned documents are reported ``False`` without being evaluated --
    the planner's equivalent of :func:`repro.query.batch.match_many`.
    """
    matched = set(match_ids(collection, query, no_semantic=no_semantic))
    return [doc_id in matched for doc_id, _ in collection.documents()]


def count_matches(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> int:
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    kind = optimizer.effective_kind(decision)
    if kind == "empty":
        return 0
    if kind == "all":
        return len(collection)
    return sum(1 for _ in _matching(collection, query, decision))


def find_documents(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> list[JSONValue]:
    """Mongo ``find`` over a collection: (projected) matching documents."""
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    results: list[JSONValue] = []
    projection = query.projection
    for _, tree in _matching(collection, query, decision):
        value = tree.to_value()
        results.append(projection.apply_value(value) if projection else value)
    return results


def find_rows(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> list[tuple[int, JSONValue]]:
    """``(doc_id, projected value)`` pairs for the matching documents.

    The id-carrying twin of :func:`find_documents`: scatter-gather
    execution fans this out per shard and k-way merges the returned
    rows by the globally unique doc-id, which reproduces the single
    collection's document-id answer order exactly.
    """
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    rows: list[tuple[int, JSONValue]] = []
    projection = query.projection
    for doc_id, tree in _matching(collection, query, decision):
        value = tree.to_value()
        rows.append(
            (doc_id, projection.apply_value(value) if projection else value)
        )
    return rows


def find_trees(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> list[JSONTree]:
    """The matching documents as trees (no projection applied)."""
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    return [tree for _, tree in _matching(collection, query, decision)]


def select_nodes(
    collection: "Collection", query: CompiledQuery
) -> list[tuple[int, list[int]]]:
    """Per-document selected node ids, one row per live document.

    Pruning uses the plan's *node* predicate for filter plans (a nested
    node can satisfy a formula whose root-anchored condition fails) and
    the root-anchored predicate for selector plans.  Pruned documents
    get an empty selection without being evaluated.
    """
    predicate = (
        query.plan.node_predicate
        if query.plan.mode == ir.MODE_FILTER
        else query.plan.match_predicate
    )
    survivors, _ = _survivors(collection, predicate)
    surviving = {doc_id for doc_id, _ in survivors}
    rows: list[tuple[int, list[int]]] = []
    for doc_id, tree in collection.documents():
        nodes = query.select(tree) if doc_id in surviving else []
        rows.append((doc_id, nodes))
    return rows


def select_values(
    collection: "Collection", query: CompiledQuery
) -> list[tuple[int, list[JSONValue]]]:
    """Like :func:`select_nodes` but materialising the subdocuments."""
    rows: list[tuple[int, list[JSONValue]]] = []
    for doc_id, nodes in select_nodes(collection, query):
        if not nodes:
            rows.append((doc_id, []))
            continue
        tree = collection.get(doc_id)
        rows.append((doc_id, [tree.to_value(node) for node in nodes]))
    return rows


def explain(
    collection: "Collection",
    query: CompiledQuery,
    *,
    no_semantic: bool = False,
) -> Explain:
    """Run the match pipeline, reporting pruning effectiveness."""
    decision = optimizer.semantic_plan(
        collection, query, no_semantic=no_semantic
    )
    semantics = None if decision is None else decision.semantics_explain()
    total = len(collection)
    kind = optimizer.effective_kind(decision)
    if kind == "empty":
        return Explain(
            kind="find",
            dialect=query.dialect,
            source=query.source,
            total=total,
            candidates=None,
            scanned=0,
            matched=0,
            semantics=semantics,
        )
    if kind == "all":
        return Explain(
            kind="find",
            dialect=query.dialect,
            source=query.source,
            total=total,
            candidates=None,
            scanned=0,
            matched=total,
            semantics=semantics,
        )
    if kind == "residual":
        verify = decision.verdict.residual_query.matches
    else:
        verify = query.matches
    survivors, candidates = _survivors(
        collection, query.plan.match_predicate
    )
    count = optimizer.count_verify
    matched = 0
    for _, tree in survivors:
        count()
        if verify(tree):
            matched += 1
    return Explain(
        kind="find",
        dialect=query.dialect,
        source=query.source,
        total=total,
        candidates=candidates,
        scanned=len(survivors),
        matched=matched,
        semantics=semantics,
    )
