"""Compiled query plans with cross-call caching and batch evaluation.

The compile-once / run-many subsystem behind every front-end:

* :class:`~repro.query.compiled.CompiledQuery` -- a reusable plan
  holding the parsed AST and its path automata;
* :func:`~repro.query.compiled.compile_query` /
  :func:`~repro.query.compiled.compile_mongo_find` -- cached compilers
  for the JNL, JSONPath and Mongo-find dialects;
* :mod:`~repro.query.batch` -- one plan over many trees, or many plans
  over one tree with a shared traversal;
* :mod:`~repro.query.cache` -- the instrumented LRU compile cache.
"""

from repro.query.batch import (
    evaluate_many,
    evaluate_queries,
    filter_many,
    match_many,
    select_many,
    select_queries,
)
from repro.query.cache import (
    DEFAULT_CAPACITY,
    CacheStats,
    LRUCache,
    clear_query_cache,
    configure_query_cache,
    query_cache,
    query_cache_stats,
)
from repro.query.compiled import (
    DIALECTS,
    CompiledQuery,
    compile_formula,
    compile_mongo_find,
    compile_path_query,
    compile_query,
)

__all__ = [
    "CompiledQuery",
    "DIALECTS",
    "compile_query",
    "compile_formula",
    "compile_path_query",
    "compile_mongo_find",
    "select_many",
    "evaluate_many",
    "match_many",
    "filter_many",
    "select_queries",
    "evaluate_queries",
    "LRUCache",
    "CacheStats",
    "DEFAULT_CAPACITY",
    "query_cache",
    "query_cache_stats",
    "clear_query_cache",
    "configure_query_cache",
]
