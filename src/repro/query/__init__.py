"""Compiled query plans with cross-call caching and batch evaluation.

The compile-once / run-many subsystem behind every front-end:

* :mod:`~repro.query.ir` -- the shared logical-plan IR the JSONPath,
  Mongo-find and JNL front-ends all lower into;
* :class:`~repro.query.compiled.CompiledQuery` -- a reusable plan
  holding the parsed AST, its logical plan and its path automata;
* :func:`~repro.query.compiled.compile_query` /
  :func:`~repro.query.compiled.compile_mongo_find` -- cached compilers
  for the JNL, JSONPath and Mongo-find dialects;
* :mod:`~repro.query.planner` -- index-backed pruning of collection
  queries down to the documents that can possibly match;
* :mod:`~repro.query.batch` -- one plan over many trees (or an indexed
  collection), or many plans over one tree with a shared traversal;
* :mod:`~repro.query.stages` -- the physical stage executors behind
  Mongo aggregation pipelines (:mod:`repro.mongo.aggregate`), whose
  leading ``$match`` runs prune through the planner like any find.

The compile cache lives in :mod:`repro.cache` (the process-wide
artifact cache); the ``query_cache*`` names below are kept as aliases
(their old home, :mod:`repro.query.cache`, is deprecated).
"""

from repro.cache import (
    DEFAULT_CAPACITY,
    CacheStats,
    LRUCache,
    artifact_cache as query_cache,
    artifact_cache_stats as query_cache_stats,
    clear_artifact_cache as clear_query_cache,
    configure_artifact_cache as configure_query_cache,
)
from repro.query.batch import (
    aggregate_many,
    evaluate_many,
    evaluate_queries,
    filter_many,
    match_many,
    select_many,
    select_queries,
)
from repro.query.compiled import (
    DIALECTS,
    CompiledQuery,
    compile_formula,
    compile_mongo_find,
    compile_path_query,
    compile_query,
)
from repro.query.ir import LogicalPlan
from repro.query.planner import PlanExplain

__all__ = [
    "CompiledQuery",
    "LogicalPlan",
    "PlanExplain",
    "DIALECTS",
    "compile_query",
    "compile_formula",
    "compile_path_query",
    "compile_mongo_find",
    "select_many",
    "evaluate_many",
    "match_many",
    "filter_many",
    "aggregate_many",
    "select_queries",
    "evaluate_queries",
    "LRUCache",
    "CacheStats",
    "DEFAULT_CAPACITY",
    "query_cache",
    "query_cache_stats",
    "clear_query_cache",
    "configure_query_cache",
]
