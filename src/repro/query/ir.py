"""The shared logical-plan IR behind every query front-end.

PR 1 gave each front-end (JSONPath, Mongo ``find``, textual JNL) its
own compile path straight into a :class:`~repro.query.compiled.
CompiledQuery`.  That was enough for one-tree-at-a-time evaluation, but
a document *store* needs a representation it can reason about before
touching any tree: which documents can possibly match?  This module is
that middle layer.  Every front-end now lowers into a
:class:`LogicalPlan`, which carries

* the **evaluation payload** -- the JNL formula (filter plans) or path
  (selector plans) exactly as the front-end produced it, so per-tree
  execution is bit-for-bit identical to the pre-IR engines; and
* **sargable predicates** -- a tree of necessary conditions
  (:class:`Pred`) extracted from the payload, phrased in terms the
  secondary indexes of :mod:`repro.store.indexes` can answer: "a leaf
  with value ``v`` under key path ``a.b``", "key ``author`` occurs
  somewhere", "the node at ``age`` is a number greater than 29".

The predicate extraction is deliberately *lossy but sound*: every
predicate is implied by the payload (a document violating it cannot
match), and anything the analysis cannot classify contributes
:data:`TRUE` (no pruning) rather than an unsound restriction.  The
planner (:mod:`repro.query.planner`) intersects index postings along
the predicate tree to prune candidates, then runs the compiled payload
on the survivors only -- so pruning can never change results, only skip
documents that provably do not match.

Key paths are *stripped*: array positions are dropped, so the leaf of
``{"a": {"b": [5]}}`` lies under the key path ``("a", "b")``.  This is
what makes Mongo's array-containment equality (a scalar filter matching
arrays containing the value) and negative/sliced index axes indexable
with one table.

Lowered plans are registered in the process-wide artifact cache of
:mod:`repro.cache` (namespace ``"ir-plan"``, keyed on the AST itself),
so structurally equal formulas compiled through different entry points
share one plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.jnl import ast as jnl
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree, Kind

__all__ = [
    "KeyPath",
    "Pred",
    "TruePred",
    "AndPred",
    "OrPred",
    "PathExists",
    "PathEq",
    "PathRange",
    "PathKind",
    "HasKey",
    "TailEq",
    "AnyEq",
    "TRUE",
    "and_",
    "or_",
    "LogicalPlan",
    "lower_formula",
    "lower_path",
    "plan_for",
    "strip_key_path",
]

# A *stripped* key path: the object keys along a root-to-node walk,
# with array positions dropped.
KeyPath = tuple[str, ...]


# ---------------------------------------------------------------------------
# Predicates: necessary conditions an index can answer.
# ---------------------------------------------------------------------------


class Pred:
    """Base class of sargable necessary-condition predicates.

    Semantics: a predicate *holds* of a document when the stated
    structure is present.  Lowering guarantees the implication
    "payload matches => predicate holds", never the converse.
    """

    __slots__ = ()


@dataclass(frozen=True)
class TruePred(Pred):
    """No information: every document is a candidate."""


TRUE = TruePred()


@dataclass(frozen=True)
class AndPred(Pred):
    """All parts must hold (candidates intersect)."""

    parts: tuple[Pred, ...]


@dataclass(frozen=True)
class OrPred(Pred):
    """Some part must hold (candidates union)."""

    parts: tuple[Pred, ...]


@dataclass(frozen=True)
class PathExists(Pred):
    """Some node lies under the stripped key path."""

    path: KeyPath


@dataclass(frozen=True)
class PathEq(Pred):
    """Some leaf under the stripped key path has exactly this value."""

    path: KeyPath
    value: str | int


@dataclass(frozen=True)
class PathRange(Pred):
    """Some number leaf under the path lies in the open interval.

    Bounds follow the NodeTest convention: ``low < value < high`` with
    ``None`` for an absent bound (``Min(i)``/``Max(i)`` are strict).
    """

    path: KeyPath
    low: int | None
    high: int | None


@dataclass(frozen=True)
class PathKind(Pred):
    """Some node under the stripped key path has this kind."""

    path: KeyPath
    kind: Kind


@dataclass(frozen=True)
class HasKey(Pred):
    """The object key occurs somewhere in the document."""

    key: str


@dataclass(frozen=True)
class TailEq(Pred):
    """Some leaf whose innermost key is ``key`` has exactly this value."""

    key: str
    value: str | int


@dataclass(frozen=True)
class AnyEq(Pred):
    """Some leaf anywhere in the document has exactly this value."""

    value: str | int


def and_(parts: Iterable[Pred]) -> Pred:
    """Conjunction with simplification (drops TRUE, dedupes, flattens)."""
    seen: list[Pred] = []
    for part in _flatten(parts, AndPred):
        if isinstance(part, TruePred):
            continue
        if part not in seen:
            seen.append(part)
    if not seen:
        return TRUE
    if len(seen) == 1:
        return seen[0]
    return AndPred(tuple(seen))


def or_(parts: Iterable[Pred]) -> Pred:
    """Disjunction with simplification (TRUE absorbs, dedupes, flattens)."""
    seen: list[Pred] = []
    for part in _flatten(parts, OrPred):
        if isinstance(part, TruePred):
            return TRUE
        if part not in seen:
            seen.append(part)
    if not seen:
        return TRUE
    if len(seen) == 1:
        return seen[0]
    return OrPred(tuple(seen))


def _flatten(parts: Iterable[Pred], wrapper: type) -> Iterable[Pred]:
    for part in parts:
        if isinstance(part, wrapper):
            yield from part.parts
        else:
            yield part


def strip_key_path(labels: Iterable[str | int]) -> KeyPath:
    """Drop array positions from a label path (the index key space)."""
    return tuple(label for label in labels if isinstance(label, str))


# ---------------------------------------------------------------------------
# The logical plan.
# ---------------------------------------------------------------------------

MODE_FILTER = "filter"
MODE_SELECT = "select"


@dataclass(frozen=True)
class LogicalPlan:
    """A dialect-neutral query plan.

    ``mode`` is ``"filter"`` (a unary formula deciding a root match)
    or ``"select"`` (a binary path selecting nodes from the root).
    Exactly one of ``formula``/``path`` is set -- the evaluation
    payload, preserved verbatim from the front-end so compiled
    execution matches the pre-IR engines exactly.

    ``match_predicate`` is a necessary condition for a **root match**
    (filter plans) or for a **non-empty selection** (selector plans).
    ``node_predicate`` is the weaker necessary condition for *any*
    node of the document to satisfy a filter formula -- what pruning a
    node-set selection over a filter plan must use, since a nested node
    can satisfy a formula whose root-anchored condition fails.
    """

    mode: str
    formula: jnl.Unary | None
    path: jnl.Binary | None
    match_predicate: Pred
    node_predicate: Pred

    @property
    def payload(self) -> jnl.Unary | jnl.Binary:
        payload = self.formula if self.formula is not None else self.path
        assert payload is not None
        return payload


# ---------------------------------------------------------------------------
# Lowering contexts.
#
# A context tracks where in the document a subformula is being
# evaluated: anchored at a known stripped key path, or floating with at
# most the innermost key known ("tail").  Anchoring is lost when a path
# steps through a wildcard, regex key or Kleene star.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Ctx:
    anchored: bool
    path: KeyPath  # meaningful only when anchored
    tail: str | None  # innermost key, when known

    def with_key(self, key: str) -> "_Ctx":
        if self.anchored:
            return _Ctx(True, self.path + (key,), key)
        return _Ctx(False, (), key)

    def unanchor(self) -> "_Ctx":
        return _Ctx(False, (), None)


_ROOT = _Ctx(True, (), None)
_FLOATING = _Ctx(False, (), None)


def _flatten_compose(path: jnl.Binary) -> list[jnl.Binary]:
    """Left-to-right step sequence of a composition chain (iterative)."""
    steps: list[jnl.Binary] = []
    stack = [path]
    while stack:
        node = stack.pop()
        if isinstance(node, jnl.Compose):
            stack.append(node.right)
            stack.append(node.left)
        else:
            steps.append(node)
    return steps


def _index_only(path: jnl.Binary) -> bool:
    """Does the path move through array positions only?

    Such a path never changes the stripped key path, so anchoring
    survives it (``[0]``, slices, index unions, starred index axes).
    """
    stack = [path]
    while stack:
        node = stack.pop()
        if isinstance(node, (jnl.Index, jnl.IndexRange, jnl.Eps)):
            continue
        if isinstance(node, (jnl.Compose, jnl.Union)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, jnl.Star):
            stack.append(node.inner)
        else:
            return False
    return True


def _scalar_doc_value(doc: JSONTree) -> str | int | None:
    """The value of a single-leaf document, ``None`` for object/array."""
    kind = doc.kind(doc.root)
    if kind in (Kind.STRING, Kind.NUMBER):
        return doc.value(doc.root)
    return None


# Branch budget for the path analysis: unions and stars fork the walk,
# and deeply nested forks could blow up; past the budget a branch
# resolves to TRUE (no pruning), which is always sound.
_BRANCH_BUDGET = 64


def _lift_path(ctx: _Ctx, path: jnl.Binary, doc: JSONTree | None) -> Pred:
    """Necessary conditions for ``[path]`` / ``EQ(path, doc)`` at ``ctx``.

    Recursively walks the composition chain, keeping the stripped key
    path while steps stay deterministic in key space.  Branching axes
    fork the analysis: a union is the disjunction of its branch
    continuations, a star the disjunction of skipping it and of the
    floating (anywhere-below) continuation.  Descending an array axis
    pins the current node's kind to array, a key-regex axis to object
    -- so a wildcard over an array field prunes through the array
    branch while the object branch dies on the kind index.
    """
    budget = [_BRANCH_BUDGET]
    return _analyze(ctx, _flatten_compose(path), 0, doc, budget)


def _analyze(
    ctx: _Ctx,
    steps: list[jnl.Binary],
    at: int,
    doc: JSONTree | None,
    budget: list[int],
) -> Pred:
    if budget[0] <= 0:
        return TRUE
    conjuncts: list[Pred] = []
    while at < len(steps):
        step = steps[at]
        at += 1
        if isinstance(step, jnl.Eps):
            continue
        if isinstance(step, jnl.Key):
            if not ctx.anchored:
                conjuncts.append(HasKey(step.word))
            ctx = ctx.with_key(step.word)
        elif isinstance(step, (jnl.Index, jnl.IndexRange)):
            # Array positions are stripped from the index key space, so
            # the path (and its tail key) carry through -- but the node
            # descended *from* must be an array.
            if ctx.anchored:
                conjuncts.append(PathKind(ctx.path, Kind.ARRAY))
        elif isinstance(step, jnl.Test):
            conjuncts.append(_lift(ctx, step.condition))
        elif isinstance(step, jnl.Compose):
            # Nested compositions inside union/star branches.
            steps = steps[: at - 1] + _flatten_compose(step) + steps[at:]
            at -= 1
        elif isinstance(step, jnl.Union):
            budget[0] -= 1
            left = _analyze(ctx, [step.left] + steps[at:], 0, doc, budget)
            right = _analyze(ctx, [step.right] + steps[at:], 0, doc, budget)
            conjuncts.append(or_([left, right]))
            return and_(conjuncts)
        elif isinstance(step, jnl.Star):
            if _index_only(step.inner):
                if ctx.anchored:
                    # Zero iterations need no array; one or more do,
                    # but either way the stripped path is unchanged --
                    # no constraint to add.
                    pass
                continue
            budget[0] -= 1
            skipped = _analyze(ctx, steps, at, doc, budget)
            below = _analyze(ctx.unanchor(), steps, at, doc, budget)
            if ctx.anchored and ctx.path:
                conjuncts.append(PathExists(ctx.path))
            conjuncts.append(or_([skipped, below]))
            return and_(conjuncts)
        elif isinstance(step, jnl.KeyRegex):
            # Descends through some object key: the current node must
            # be an object, the landing key is unknown.
            if ctx.anchored:
                conjuncts.append(PathKind(ctx.path, Kind.OBJECT))
            ctx = ctx.unanchor()
        else:  # Unclassified axis: keep the prefix, lose anchoring.
            if ctx.anchored and ctx.path:
                conjuncts.append(PathExists(ctx.path))
            ctx = ctx.unanchor()
    if doc is None:
        if ctx.anchored and ctx.path:
            conjuncts.append(PathExists(ctx.path))
    else:
        value = _scalar_doc_value(doc)
        if ctx.anchored:
            if value is not None:
                conjuncts.append(PathEq(ctx.path, value))
            else:
                if ctx.path:
                    conjuncts.append(PathExists(ctx.path))
                conjuncts.append(PathKind(ctx.path, doc.kind(doc.root)))
        elif value is not None:
            conjuncts.append(
                TailEq(ctx.tail, value) if ctx.tail is not None
                else AnyEq(value)
            )
    return and_(conjuncts)


def _lift_atom(ctx: _Ctx, test: nt.NodeTest) -> Pred:
    """Necessary condition for a NodeTest holding at ``ctx``."""
    if not ctx.anchored:
        if isinstance(test, nt.EqDocTest):
            value = _scalar_doc_value(test.doc)
            if value is not None:
                if ctx.tail is not None:
                    return TailEq(ctx.tail, value)
                return AnyEq(value)
        return TRUE
    path = ctx.path
    if isinstance(test, nt.IsObject):
        return PathKind(path, Kind.OBJECT)
    if isinstance(test, nt.IsArray):
        return PathKind(path, Kind.ARRAY)
    if isinstance(test, nt.IsString):
        return PathKind(path, Kind.STRING)
    if isinstance(test, nt.IsNumber):
        return PathKind(path, Kind.NUMBER)
    if isinstance(test, nt.Unique):
        return PathKind(path, Kind.ARRAY)
    if isinstance(test, nt.Pattern):
        return PathKind(path, Kind.STRING)
    if isinstance(test, (nt.MultOf,)):
        return PathKind(path, Kind.NUMBER)
    if isinstance(test, nt.MinVal):
        return PathRange(path, test.bound, None)
    if isinstance(test, nt.MaxVal):
        return PathRange(path, None, test.bound)
    if isinstance(test, nt.EqDocTest):
        value = _scalar_doc_value(test.doc)
        if value is not None:
            return PathEq(path, value)
        return PathKind(path, test.doc.kind(test.doc.root))
    # MinCh/MaxCh and unknown tests: counting children prunes nothing
    # the kind indexes can answer soundly for MaxCh; MinCh >= 1 implies
    # an inner (object or array) node.
    if isinstance(test, nt.MinCh) and test.count >= 1:
        return or_([PathKind(path, Kind.OBJECT), PathKind(path, Kind.ARRAY)])
    return TRUE


def _lift(ctx: _Ctx, formula: jnl.Unary) -> Pred:
    """Necessary condition for ``formula`` holding at ``ctx``."""
    if isinstance(formula, jnl.Top):
        return TRUE
    if isinstance(formula, jnl.Not):
        # Negations prune nothing: the index records presence, and
        # "absence of X" cannot be answered as a superset soundly.
        return TRUE
    if isinstance(formula, jnl.And):
        return and_([_lift(ctx, formula.left), _lift(ctx, formula.right)])
    if isinstance(formula, jnl.Or):
        return or_([_lift(ctx, formula.left), _lift(ctx, formula.right)])
    if isinstance(formula, jnl.Exists):
        return _lift_path(ctx, formula.path, None)
    if isinstance(formula, jnl.EqDoc):
        return _lift_path(ctx, formula.path, formula.doc)
    if isinstance(formula, jnl.EqPath):
        # Both paths must reach *something* for the equality to hold.
        return and_(
            [
                _lift_path(ctx, formula.left, None),
                _lift_path(ctx, formula.right, None),
            ]
        )
    if isinstance(formula, jnl.Atom):
        return _lift_atom(ctx, formula.test)
    return TRUE


# ---------------------------------------------------------------------------
# Public lowering entry points.
# ---------------------------------------------------------------------------


def lower_formula(formula: jnl.Unary) -> LogicalPlan:
    """Lower a unary JNL formula (filter) into a logical plan.

    Used by the textual-JNL and Mongo-find front-ends: both produce a
    unary formula, which stays the evaluation payload; the predicates
    are extracted at the root context (for root matches) and at the
    floating context (for node-set selections).
    """
    return LogicalPlan(
        mode=MODE_FILTER,
        formula=formula,
        path=None,
        match_predicate=_lift(_ROOT, formula),
        node_predicate=_lift(_FLOATING, formula),
    )


def lower_path(path: jnl.Binary) -> LogicalPlan:
    """Lower a binary JNL path (selector) into a logical plan.

    Used by the JSONPath and jnl-path front-ends.  Selection always
    starts at the root, so one root-anchored predicate covers both the
    "does anything match" and the node-selection questions.
    """
    predicate = _lift_path(_ROOT, path, None)
    return LogicalPlan(
        mode=MODE_SELECT,
        formula=None,
        path=path,
        match_predicate=predicate,
        node_predicate=predicate,
    )


def plan_for(
    formula: jnl.Unary | None = None,
    path: jnl.Binary | None = None,
    *,
    cache: object = USE_DEFAULT_CACHE,
) -> LogicalPlan:
    """The logical plan for a payload, through the artifact cache.

    Keys on the AST object itself (all JNL nodes hash structurally), in
    the ``"ir-plan"`` namespace of the process-wide artifact cache --
    so every compile path that lowers the same formula shares one plan.
    Pass ``cache=None`` to force a fresh lowering.
    """
    if (formula is None) == (path is None):
        raise ValueError("exactly one of formula/path must be given")
    if formula is not None:
        key = ("ir-plan", MODE_FILTER, formula)
        build = lambda: lower_formula(formula)  # noqa: E731
    else:
        assert path is not None
        key = ("ir-plan", MODE_SELECT, path)
        build = lambda: lower_path(path)  # noqa: E731
    resolved = resolve_cache(cache)
    if resolved is None:
        return build()
    return resolved.get_or_compute(key, build)
