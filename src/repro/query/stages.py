"""Physical stage executors for aggregation pipelines.

The paper's front-ends stop at *navigation* (``find``-style matching);
real document-database traffic is dominated by multi-stage aggregation,
which restructures documents as well as filtering them.  This module is
the dialect-neutral half of that subsystem: a small algebra of
**physical stages**, each a generator transformer over plain JSON
values (the documents flowing through a pipeline), plus the shared
value-space semantics they agree on -- dotted-path resolution, the
expression language (``"$field"`` references and literals), the
cross-type sort order and the ``$group`` accumulators.

Stages compose as a chain of generators: a streaming stage
(:class:`FilterStage`, :class:`ProjectStage`, :class:`UnwindStage`,
:class:`SkipStage`, :class:`LimitStage`) holds one document at a time,
while a blocking stage (:class:`SortStage`, :class:`GroupStage`,
:class:`CountStage`) must materialise or fold its whole input before
emitting.  Nothing here knows about MongoDB syntax or about
collections; :mod:`repro.mongo.aggregate` parses Mongo pipeline
documents into these stages and routes leading ``$match`` stages
through the logical-plan IR so the collection planner can prune via
secondary indexes before any stage runs.
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ParseError

__all__ = [
    "MISSING",
    "split_field_path",
    "resolve_path",
    "set_path",
    "values_equal",
    "sort_key",
    "compile_expr",
    "canonical_group_key",
    "Stage",
    "FilterStage",
    "ProjectStage",
    "UnwindStage",
    "GroupStage",
    "SortStage",
    "SkipStage",
    "LimitStage",
    "CountStage",
    "run_stages",
    "run_stages_ranked",
    "composite_sort_key",
    "DescendingKey",
    "ACCUMULATORS",
]


class _Missing:
    """Sentinel for an unresolvable field path (distinct from null)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MISSING"


MISSING = _Missing()


# ---------------------------------------------------------------------------
# Value-space path navigation (the semantics of dotted field paths).
#
# Mirrors :func:`repro.mongo.find._path_steps`: an all-digit segment is
# an array index, anything else an object key -- so both the compiled
# (tree) and the value-space evaluations of a path agree.
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def split_field_path(path: str) -> tuple[str, ...]:
    """Split a dotted field path into segments, rejecting empty ones.

    Memoised (value-space matching re-splits the same filter paths for
    every document; errors are not cached by ``lru_cache``)."""
    if not path:
        raise ParseError("empty field path")
    segments = tuple(path.split("."))
    if any(not segment for segment in segments):
        raise ParseError(f"empty segment in field path {path!r}")
    return segments


def resolve_path(value: Any, segments: Iterable[str]) -> Any:
    """The value under a dotted path, or :data:`MISSING`."""
    node = value
    for segment in segments:
        if segment.isdigit():
            index = int(segment)
            if not isinstance(node, list) or index >= len(node):
                return MISSING
            node = node[index]
        else:
            if not isinstance(node, dict) or segment not in node:
                return MISSING
            node = node[segment]
    return node


def set_path(value: Any, segments: tuple[str, ...], new: Any) -> Any:
    """A copy of ``value`` with the node under ``segments`` replaced.

    Only the containers along the path are copied (the spine); siblings
    are shared with the input, which keeps ``$unwind`` linear in the
    number of emitted rows rather than in total document size.
    """
    if not segments:
        return new
    head, rest = segments[0], segments[1:]
    if head.isdigit() and isinstance(value, list):
        index = int(head)
        if index >= len(value):
            return value
        out_list = list(value)
        out_list[index] = set_path(value[index], rest, new)
        return out_list
    if isinstance(value, dict) and head in value:
        out = dict(value)
        out[head] = set_path(value[head], rest, new)
        return out
    return value


# ---------------------------------------------------------------------------
# Equality and ordering in value space.
# ---------------------------------------------------------------------------


def values_equal(left: Any, right: Any) -> bool:
    """JSON equality: type-strict (``1 != True``), order-insensitive
    for objects, order-sensitive for arrays."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, dict):
        return (
            isinstance(right, dict)
            and left.keys() == right.keys()
            and all(values_equal(sub, right[key]) for key, sub in left.items())
        )
    if isinstance(left, list):
        return (
            isinstance(right, list)
            and len(left) == len(right)
            and all(values_equal(a, b) for a, b in zip(left, right))
        )
    return type(left) is type(right) and left == right


_NUMBER_RANK = 2


def sort_key(value: Any) -> tuple:
    """A total cross-type order for ``$sort``/``$min``/``$max``.

    Types rank ``missing < null < numbers < strings < booleans <
    arrays < objects`` (a fixed, documented order -- the point is
    determinism shared by the staged executor and the naive reference,
    not BSON fidelity); within a type, the natural order.
    """
    if value is MISSING:
        return (0,)
    if value is None:
        return (1,)
    if isinstance(value, bool):
        return (4, value)
    if isinstance(value, (int, float)):
        return (_NUMBER_RANK, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, list):
        return (5, tuple(sort_key(item) for item in value))
    if isinstance(value, dict):
        items = sorted((key, sort_key(sub)) for key, sub in value.items())
        return (6, tuple(items))
    raise ParseError(f"unorderable value {value!r}")  # pragma: no cover


def canonical_group_key(value: Any) -> Any:
    """A hashable canonical form of a group ``_id`` value.

    Scalars key on ``(type, value)`` directly (type-tagged so ``1``,
    ``1.0`` and ``True`` stay distinct groups); containers fall back to
    canonical JSON text.
    """
    if value is None or isinstance(value, (str, int, float)):
        return (value.__class__, value)
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=repr)


# ---------------------------------------------------------------------------
# The expression language: "$field" references and literals.
# ---------------------------------------------------------------------------


def compile_expr(spec: Any) -> Callable[[Any], Any]:
    """Compile an aggregation expression into ``row -> value``.

    ``"$a.b"`` is a field reference (resolving to :data:`MISSING` when
    absent), any other string/number/boolean/null a literal, an object
    a literal object of sub-expressions (keys resolving to MISSING are
    omitted, as in MongoDB), an array a literal array (MISSING becomes
    null).  Operator expressions (``{"$add": ...}``) are not supported
    and raise :class:`~repro.errors.ParseError`.
    """
    if isinstance(spec, str) and spec.startswith("$"):
        segments = split_field_path(spec[1:])
        return lambda row: resolve_path(row, segments)
    if isinstance(spec, dict):
        if any(isinstance(key, str) and key.startswith("$") for key in spec):
            raise ParseError(
                f"unsupported operator expression {spec!r} "
                "(only field references and literals are supported)"
            )
        compiled = {key: compile_expr(sub) for key, sub in spec.items()}

        def build_object(row: Any) -> Any:
            out = {}
            for key, fn in compiled.items():
                value = fn(row)
                if value is not MISSING:
                    out[key] = value
            return out

        return build_object
    if isinstance(spec, list):
        parts = [compile_expr(sub) for sub in spec]

        def build_array(row: Any) -> Any:
            return [None if (v := fn(row)) is MISSING else v for fn in parts]

        return build_array
    return lambda row: spec


# ---------------------------------------------------------------------------
# Accumulators (the $group fold states).
#
# Every accumulator is *mergeable*: ``partial()`` exports the fold
# state as a picklable value, and the ``merge()`` classmethod rebuilds
# one accumulator from any number of such partials so that
# ``merge(partials).result() == whole.result()`` whenever the partials
# were accumulated from any split of the whole input.  That contract is
# what lets ``$group`` run map-side per shard with only partial states
# crossing the process boundary.  Order-sensitive accumulators
# (``$push``) additionally accept a ``rank`` (any totally ordered,
# globally unique token -- the sharded executor uses ``(doc_id, seq)``)
# via ``add_ranked`` so the merged result reproduces the global input
# order, not the concatenation order of the partials.
# ---------------------------------------------------------------------------


class _Accumulator:
    __slots__ = ()

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_ranked(self, value: Any, rank: Any) -> None:
        """``add`` with a global-order token (order-insensitive default)."""
        self.add(value)

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def partial(self) -> Any:  # pragma: no cover - interface
        """The fold state as a picklable, mergeable value."""
        raise NotImplementedError

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Accumulator:
        """Rebuild one accumulator from exported partial states."""
        raise NotImplementedError  # pragma: no cover - interface


class _Sum(_Accumulator):
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total: int | float = 0

    def add(self, value: Any) -> None:
        # Non-numeric and missing inputs are ignored, as in MongoDB.
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value

    def result(self) -> Any:
        return self.total

    def partial(self) -> Any:
        return self.total

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Sum:
        merged = cls()
        for total in partials:
            merged.total += total
        return merged


class _Avg(_Accumulator):
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total: int | float = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
            self.count += 1

    def result(self) -> Any:
        return None if self.count == 0 else self.total / self.count

    def partial(self) -> Any:
        # The sum/count pair, not the quotient: averages of averages
        # are wrong as soon as the split is uneven.
        return (self.total, self.count)

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Avg:
        merged = cls()
        for total, count in partials:
            merged.total += total
            merged.count += count
        return merged


class _Min(_Accumulator):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = MISSING

    def add(self, value: Any) -> None:
        if value is MISSING:
            return
        if self.best is MISSING or sort_key(value) < sort_key(self.best):
            self.best = value

    def result(self) -> Any:
        return None if self.best is MISSING else self.best

    def partial(self) -> Any:
        # () encodes "no value seen": the MISSING sentinel is a module
        # singleton whose identity does not survive pickling.
        return () if self.best is MISSING else (self.best,)

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Min:
        merged = cls()
        for state in partials:
            if state:
                merged.add(state[0])
        return merged


class _Max(_Min):
    __slots__ = ()

    def add(self, value: Any) -> None:
        if value is MISSING:
            return
        if self.best is MISSING or sort_key(value) > sort_key(self.best):
            self.best = value


class _Push(_Accumulator):
    __slots__ = ("items", "ranks")

    def __init__(self) -> None:
        self.items: list[Any] = []
        self.ranks: list[Any] | None = None

    def add(self, value: Any) -> None:
        if value is not MISSING:
            self.items.append(value)

    def add_ranked(self, value: Any, rank: Any) -> None:
        if value is MISSING:
            return
        if self.ranks is None:
            self.ranks = []
        self.items.append(value)
        self.ranks.append(rank)

    def result(self) -> Any:
        return self.items

    def partial(self) -> Any:
        # Rank-tagged items; local indices stand in for ranks when the
        # stream was fed through plain ``add`` (sound only within one
        # partition, which is all un-ranked callers have).
        ranks = range(len(self.items)) if self.ranks is None else self.ranks
        return list(zip(ranks, self.items))

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Push:
        tagged: list[tuple[Any, Any]] = []
        for state in partials:
            tagged.extend(state)
        tagged.sort(key=lambda pair: pair[0])
        merged = cls()
        merged.items = [value for _, value in tagged]
        return merged


class _Count(_Accumulator):
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> Any:
        return self.count

    def partial(self) -> Any:
        return self.count

    @classmethod
    def merge(cls, partials: Iterable[Any]) -> _Count:
        merged = cls()
        merged.count = sum(partials)
        return merged


ACCUMULATORS: dict[str, type[_Accumulator]] = {
    "$sum": _Sum,
    "$avg": _Avg,
    "$min": _Min,
    "$max": _Max,
    "$push": _Push,
    "$count": _Count,
}


# ---------------------------------------------------------------------------
# The physical stages.
# ---------------------------------------------------------------------------


class Stage:
    """One physical pipeline stage: an iterator transformer.

    ``op`` names the surface operator (``"$match"``, ...); ``blocking``
    says whether the stage must see its whole input before emitting
    (``$sort``, ``$group``, ``$count``) or streams one document at a
    time.  The explain report surfaces both.
    """

    __slots__ = ()

    op = "?"
    blocking = False

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.op})"


class FilterStage(Stage):
    """Keep the documents satisfying a predicate (non-leading ``$match``)."""

    __slots__ = ("predicate",)

    op = "$match"

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        return (row for row in rows if self.predicate(row))


class ProjectStage(Stage):
    """Apply a document-to-document transformation (``$project``)."""

    __slots__ = ("transform",)

    op = "$project"

    def __init__(self, transform: Callable[[Any], Any]) -> None:
        self.transform = transform

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        return (self.transform(row) for row in rows)


class UnwindStage(Stage):
    """Emit one document per element of the array under a path.

    MongoDB semantics: a missing path, null value or empty array drops
    the document; a non-array value passes the document through
    unchanged; an array emits one copy per element with the path
    replaced by that element.
    """

    __slots__ = ("segments",)

    op = "$unwind"

    def __init__(self, segments: tuple[str, ...]) -> None:
        self.segments = segments

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        for row in rows:
            value = resolve_path(row, self.segments)
            if value is MISSING or value is None:
                continue
            if not isinstance(value, list):
                yield row
                continue
            for element in value:
                yield set_path(row, self.segments, element)


class GroupStage(Stage):
    """Fold the input into one document per distinct ``_id`` value.

    Groups are emitted in first-seen order (a deterministic refinement
    of MongoDB's unordered output, shared with the naive reference
    evaluator).  Accumulator state is one fold cell per (group, field):
    the stage holds the group table, never the input documents.
    """

    __slots__ = ("id_expr", "fields")

    op = "$group"
    blocking = True

    def __init__(
        self,
        id_expr: Callable[[Any], Any],
        fields: tuple[tuple[str, type[_Accumulator], Callable[[Any], Any]], ...],
    ) -> None:
        self.id_expr = id_expr
        self.fields = fields

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        groups: dict[Any, tuple[Any, list[_Accumulator]]] = {}
        for row in rows:
            id_value = self.id_expr(row)
            if id_value is MISSING:
                id_value = None
            key = canonical_group_key(id_value)
            entry = groups.get(key)
            if entry is None:
                entry = (id_value, [factory() for _, factory, _ in self.fields])
                groups[key] = entry
            for accumulator, (_, _, expr) in zip(entry[1], self.fields):
                accumulator.add(expr(row))
        for id_value, accumulators in groups.values():
            out = {"_id": id_value}
            for (name, _, _), accumulator in zip(self.fields, accumulators):
                out[name] = accumulator.result()
            yield out

    def fold_partial(
        self, ranked_rows: Iterable[tuple[Any, Any]]
    ) -> list[tuple[Any, Any, list[Any]]]:
        """Map-side half of the fold: a partial group table.

        Consumes ``(rank, row)`` pairs and returns one
        ``(id_value, first_rank, partial_states)`` entry per distinct
        group seen in this partition.  Everything in the table is
        picklable (partial states encode absence structurally, never as
        the :data:`MISSING` singleton), so the table can cross a
        process boundary to :meth:`merge_partial`.
        """
        groups: dict[Any, list[Any]] = {}
        for rank, row in ranked_rows:
            id_value = self.id_expr(row)
            if id_value is MISSING:
                id_value = None
            key = canonical_group_key(id_value)
            entry = groups.get(key)
            if entry is None:
                entry = [id_value, rank, [factory() for _, factory, _ in self.fields]]
                groups[key] = entry
            for accumulator, (_, _, expr) in zip(entry[2], self.fields):
                accumulator.add_ranked(expr(row), rank)
        return [
            (id_value, first_rank, [acc.partial() for acc in accumulators])
            for id_value, first_rank, accumulators in groups.values()
        ]

    def merge_partial(
        self, tables: Iterable[list[tuple[Any, Any, list[Any]]]]
    ) -> Iterator[Any]:
        """Reduce-side half: merge partial group tables and finalise.

        Emits groups in global first-seen order (ascending first rank),
        with each group's ``_id`` taken from the partition that saw the
        group earliest -- exactly what :meth:`run` over the undivided
        stream would have produced.
        """
        merged: dict[Any, list[Any]] = {}
        for table in tables:
            for id_value, first_rank, states in table:
                key = canonical_group_key(id_value)
                entry = merged.get(key)
                if entry is None:
                    merged[key] = [id_value, first_rank, [[s] for s in states]]
                    continue
                if first_rank < entry[1]:
                    entry[0] = id_value
                    entry[1] = first_rank
                for pooled, state in zip(entry[2], states):
                    pooled.append(state)
        ordered = sorted(merged.values(), key=lambda entry: entry[1])
        for id_value, _, pooled_states in ordered:
            out = {"_id": id_value}
            for (name, factory, _), states in zip(self.fields, pooled_states):
                out[name] = factory.merge(states).result()
            yield out


class SortStage(Stage):
    """Materialise and sort by one or more dotted paths.

    Multiple keys apply in spec order with later keys breaking ties
    (implemented as repeated stable sorts from the last key to the
    first); missing values order first on ascending keys.
    """

    __slots__ = ("keys",)

    op = "$sort"
    blocking = True

    def __init__(self, keys: tuple[tuple[tuple[str, ...], bool], ...]) -> None:
        self.keys = keys

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        materialised = list(rows)
        for segments, descending in reversed(self.keys):
            materialised.sort(
                key=lambda row: sort_key(resolve_path(row, segments)),
                reverse=descending,
            )
        return iter(materialised)


class DescendingKey:
    """Inverts the order of one wrapped :func:`sort_key` tuple.

    Lets a multi-key sort with mixed directions collapse into a single
    composite key (tuples compare element-wise, so wrapping just the
    descending components flips their direction without touching the
    others).  That single-key form is what a k-way merge of per-shard
    sorted runs needs: ``heapq.merge`` takes one key function.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __eq__(self, other: Any) -> bool:
        return self.key == other.key

    def __lt__(self, other: Any) -> bool:
        return other.key < self.key

    def __hash__(self) -> int:  # pragma: no cover - keys are never hashed
        return hash(self.key)


def composite_sort_key(
    keys: tuple[tuple[tuple[str, ...], bool], ...],
) -> Callable[[tuple[Any, Any]], tuple]:
    """One composite key over ``(rank, row)`` pairs for a ``$sort`` spec.

    Equivalent to :class:`SortStage`'s repeated stable sorts: the spec
    keys compare in order (descending ones wrapped in
    :class:`DescendingKey`) and the globally unique rank breaks every
    remaining tie, reproducing stability over the undivided stream.
    """

    def key(pair: tuple[Any, Any]) -> tuple:
        rank, row = pair
        parts: list[Any] = []
        for segments, descending in keys:
            part = sort_key(resolve_path(row, segments))
            parts.append(DescendingKey(part) if descending else part)
        parts.append(rank)
        return tuple(parts)

    return key


class SkipStage(Stage):
    __slots__ = ("count",)

    op = "$skip"

    def __init__(self, count: int) -> None:
        self.count = count

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        for index, row in enumerate(rows):
            if index >= self.count:
                yield row


class LimitStage(Stage):
    __slots__ = ("count",)

    op = "$limit"

    def __init__(self, count: int) -> None:
        self.count = count

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        if self.count <= 0:  # pragma: no cover - parser rejects it
            return
        for index, row in enumerate(rows):
            yield row
            if index + 1 >= self.count:
                return


class CountStage(Stage):
    """Emit ``{field: n}`` -- nothing at all when the input is empty,
    as in MongoDB."""

    __slots__ = ("field",)

    op = "$count"
    blocking = True

    def __init__(self, field: str) -> None:
        self.field = field

    def run(self, rows: Iterator[Any]) -> Iterator[Any]:
        count = sum(1 for _ in rows)
        if count:
            yield {self.field: count}


def run_stages(stages: Iterable[Stage], rows: Iterator[Any]) -> Iterator[Any]:
    """Chain the stages over ``rows`` as one lazy generator pipeline."""
    for stage in stages:
        rows = stage.run(rows)
    return rows


def run_stages_ranked(
    stages: Iterable[Stage],
    doc_rows: Iterable[tuple[int, Any]],
) -> Iterator[tuple[tuple[int, int], Any]]:
    """Run per-row stages over ``(doc_id, value)`` pairs, keeping ranks.

    Each output row carries a ``(doc_id, seq)`` rank -- ``seq`` numbers
    the rows one input document expanded into (``$unwind`` fan-out), so
    ranks are globally unique and ordered exactly like the undivided
    stream.  Only valid for streaming stages whose output rows each
    derive from a single input row (``$match``/``$project``/
    ``$unwind``); blocking or window stages would need cross-document
    state and are the coordinator's job.
    """
    stage_list = tuple(stages)
    if not stage_list:
        for doc_id, value in doc_rows:
            yield (doc_id, 0), value
        return
    for doc_id, value in doc_rows:
        for seq, row in enumerate(run_stages(stage_list, iter((value,)))):
            yield (doc_id, seq), row
