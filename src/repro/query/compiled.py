"""Compiled query plans: parse and build automata once, evaluate many times.

The paper's per-evaluation bounds (Propositions 1 and 3) assume the
formula is already in hand; a document store running the same query
over millions of documents pays parsing and automaton construction only
once.  A :class:`CompiledQuery` captures exactly the reusable,
tree-independent part of a query:

* the shared logical-plan IR (:mod:`repro.query.ir`) every front-end
  lowers into -- carrying the parsed JNL AST (a unary *filter* or a
  binary *selector* path) plus the sargable predicates the collection
  planner prunes with;
* the path automata of every ``[alpha]`` / ``EQ(alpha, .)`` subformula,
  built eagerly by the same Thompson construction the evaluator uses
  (:mod:`repro.jnl.paths`);
* for Mongo queries, the parsed projection.

Evaluation state (node sets, subtree hashes) is per-tree and is *never*
stored on the compiled object, so one plan can be shared freely across
documents, threads and mutations.

Three surface dialects compile to plans: JNL text (``jnl`` for unary
formulas, ``jnl-path`` for paths), JSONPath (``jsonpath``) and MongoDB
find filters (:func:`compile_mongo_find`).  The module-level entry
points consult the process-wide LRU cache of :mod:`repro.cache` keyed
on ``(dialect, canonical query text)``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.cache import USE_DEFAULT_CACHE, resolve_cache
from repro.errors import ParseError
from repro.jnl import ast as jnl
from repro.query import ir
from repro.jnl.efficient import JNLEvaluator
from repro.jnl.paths import PathAutomaton, compile_path
from repro.model.tree import JSONTree, JSONValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (frontends)
    from repro.mongo.projection import Projection

__all__ = [
    "CompiledQuery",
    "DIALECTS",
    "compile_query",
    "compile_formula",
    "compile_path_query",
    "compile_mongo_find",
    "mongo_cache_key",
]

# Text dialects accepted by :func:`compile_query`.
DIALECT_JNL = "jnl"
DIALECT_JNL_PATH = "jnl-path"
DIALECT_JSONPATH = "jsonpath"
DIALECT_MONGO_FIND = "mongo-find"
DIALECTS = (DIALECT_JNL, DIALECT_JNL_PATH, DIALECT_JSONPATH)

# Sentinel distinguishing "use the global cache" from "no caching".
_DEFAULT_CACHE = USE_DEFAULT_CACHE


def _collect_paths(root: jnl.Unary | jnl.Binary) -> list[jnl.Binary]:
    """Every binary subformula the evaluator will compile to an automaton.

    These are the operands of ``[alpha]``, ``EQ(alpha, A)`` and
    ``EQ(alpha, beta)`` anywhere in the AST -- including inside ``<phi>``
    tests -- plus the root itself when the query *is* a path.
    """
    paths: list[jnl.Binary] = []
    if isinstance(root, jnl.Binary):
        paths.append(root)
    stack: list[jnl.Unary | jnl.Binary] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (jnl.Exists, jnl.EqDoc)):
            paths.append(node.path)
        elif isinstance(node, jnl.EqPath):
            paths.append(node.left)
            paths.append(node.right)
        stack.extend(jnl._children(node))
    return paths


class CompiledQuery:
    """An executable query plan, reusable across documents.

    Exactly one of ``formula`` (a unary node filter) and ``path`` (a
    binary node selector) is set; ``projection`` optionally post-
    processes matched documents (Mongo find's second argument).
    """

    __slots__ = (
        "dialect",
        "source",
        "formula",
        "path",
        "_plan",
        "projection",
        "automata",
    )

    def __init__(
        self,
        dialect: str,
        source: str,
        *,
        formula: jnl.Unary | None = None,
        path: jnl.Binary | None = None,
        projection: "Projection | None" = None,
    ) -> None:
        if (formula is None) == (path is None):
            raise ValueError("exactly one of formula/path must be given")
        self.dialect = dialect
        self.source = source
        self.formula = formula
        self.path = path
        self._plan: ir.LogicalPlan | None = None
        self.projection = projection
        # Eagerly build every path automaton the evaluator needs, so no
        # per-evaluation call ever pays the Thompson construction.
        self.automata: dict[jnl.Binary, PathAutomaton] = {}
        for subpath in _collect_paths(formula if formula is not None else path):
            if subpath not in self.automata:
                self.automata[subpath] = compile_path(subpath)

    @property
    def plan(self) -> ir.LogicalPlan:
        """The shared logical-plan IR this query lowers into.

        Lowered lazily on first use (only collection-level execution
        needs it; per-tree evaluation reads the payload directly) and
        registered in the process-wide artifact cache keyed on the AST,
        so structurally equal queries compiled through any front-end
        share one plan.
        """
        plan = self._plan
        if plan is None:
            plan = ir.plan_for(formula=self.formula, path=self.path)
            self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def evaluator(self, tree: JSONTree) -> JNLEvaluator:
        """A fresh evaluator for ``tree`` sharing this plan's automata."""
        return JNLEvaluator(tree, automata=self.automata)

    def _selected(
        self, tree: JSONTree, evaluator: JNLEvaluator | None
    ) -> frozenset[int]:
        if evaluator is None:
            evaluator = self.evaluator(tree)
        if self.path is not None:
            return evaluator.target_nodes(self.path)
        assert self.formula is not None
        return evaluator.nodes_satisfying(self.formula)

    def select(
        self, tree: JSONTree, *, evaluator: JNLEvaluator | None = None
    ) -> list[int]:
        """Node ids selected in ``tree``, in document (preorder) order.

        Selector plans return the nodes reachable from the root through
        the path; filter plans return all nodes satisfying the formula.
        """
        return tree.document_order(self._selected(tree, evaluator))

    def values(
        self, tree: JSONTree, *, evaluator: JNLEvaluator | None = None
    ) -> list[JSONValue]:
        """The selected subdocuments, in document order."""
        return [tree.to_value(node) for node in self.select(tree, evaluator=evaluator)]

    def matches(
        self,
        tree: JSONTree,
        node: int | None = None,
        *,
        evaluator: JNLEvaluator | None = None,
    ) -> bool:
        """Does the query match at ``node`` (default: the root)?

        For filter plans this is the Evaluation problem; for selector
        plans it asks whether the path selects anything at all (``node``
        then names the origin of the traversal).
        """
        if evaluator is None:
            evaluator = self.evaluator(tree)
        if self.formula is not None:
            target = tree.root if node is None else node
            # Point evaluation: a root match only visits the nodes the
            # paths can reach, not the whole arena.
            return evaluator.satisfies_at(target, self.formula)
        assert self.path is not None
        return bool(evaluator.target_nodes(self.path, node))

    def apply(
        self, tree: JSONTree, *, evaluator: JNLEvaluator | None = None
    ) -> JSONValue | None:
        """Mongo ``find`` semantics: the (projected) document on a root
        match, ``None`` otherwise."""
        if not self.matches(tree, evaluator=evaluator):
            return None
        value = tree.to_value()
        return self.projection.apply_value(value) if self.projection else value

    def __repr__(self) -> str:
        source = self.source if len(self.source) <= 40 else self.source[:37] + "..."
        return f"CompiledQuery({self.dialect!r}, {source!r})"


# ---------------------------------------------------------------------------
# Per-dialect compilers (uncached).
# ---------------------------------------------------------------------------


def _compile_text(source: str, dialect: str) -> CompiledQuery:
    # Parsers are imported lazily: the front-end modules import this one
    # for their thin wrappers, and eager imports would form a cycle.
    if dialect == DIALECT_JNL:
        from repro.jnl.parser import parse_jnl

        return CompiledQuery(dialect, source, formula=parse_jnl(source))
    if dialect == DIALECT_JNL_PATH:
        from repro.jnl.parser import parse_jnl_path

        return CompiledQuery(dialect, source, path=parse_jnl_path(source))
    if dialect == DIALECT_JSONPATH:
        from repro.jsonpath.parser import parse_jsonpath

        return CompiledQuery(dialect, source, path=parse_jsonpath(source))
    raise ParseError(
        f"unknown query dialect {dialect!r}; expected one of {DIALECTS}"
    )


def mongo_cache_key(
    filter_doc: dict[str, Any], projection: dict[str, Any] | None = None
) -> str:
    """Canonical text of a Mongo find call, the compile-cache key."""
    return json.dumps(
        [filter_doc, projection], sort_keys=True, separators=(",", ":"), default=repr
    )


def _compile_mongo(
    filter_doc: dict[str, Any], projection: dict[str, Any] | None
) -> CompiledQuery:
    from repro.mongo.find import compile_filter
    from repro.mongo.projection import Projection

    return CompiledQuery(
        DIALECT_MONGO_FIND,
        mongo_cache_key(filter_doc, projection),
        formula=compile_filter(filter_doc),
        projection=Projection(projection) if projection else None,
    )


# ---------------------------------------------------------------------------
# Cached entry points.
# ---------------------------------------------------------------------------


_resolve_cache = resolve_cache


def compile_query(
    source: str, dialect: str = DIALECT_JNL, *, cache: object = _DEFAULT_CACHE
) -> CompiledQuery:
    """Compile query text into a reusable plan, through the LRU cache.

    ``dialect`` is ``"jnl"`` (unary formula), ``"jnl-path"`` (binary
    path) or ``"jsonpath"``.  Pass ``cache=None`` to force a fresh,
    uncached compilation (the old one-shot behaviour), or an explicit
    :class:`~repro.cache.LRUCache` to use a private cache.
    """
    resolved = _resolve_cache(cache)
    if resolved is None:
        return _compile_text(source, dialect)
    return resolved.get_or_compute(
        (dialect, source), lambda: _compile_text(source, dialect)
    )


def compile_formula(formula: jnl.Unary) -> CompiledQuery:
    """Wrap an already-parsed unary formula as a plan (not cached)."""
    return CompiledQuery(DIALECT_JNL, repr(formula), formula=formula)


def compile_path_query(path: jnl.Binary) -> CompiledQuery:
    """Wrap an already-parsed binary path as a plan (not cached)."""
    return CompiledQuery(DIALECT_JNL_PATH, repr(path), path=path)


def compile_mongo_find(
    filter_doc: dict[str, Any],
    projection: dict[str, Any] | None = None,
    *,
    cache: object = _DEFAULT_CACHE,
) -> CompiledQuery:
    """Compile a Mongo find filter (+ optional projection) into a plan.

    The cache key is the canonical (sorted-keys) JSON text of both
    arguments, so structurally equal filter documents share one plan.
    """
    resolved = _resolve_cache(cache)
    if resolved is None:
        return _compile_mongo(filter_doc, projection)
    key = (DIALECT_MONGO_FIND, mongo_cache_key(filter_doc, projection))
    return resolved.get_or_compute(
        key, lambda: _compile_mongo(filter_doc, projection)
    )
