"""Batch evaluation: amortise one plan over many trees, or many plans
over one tree.

Two batching axes mirror how document stores execute queries:

* **one query, many documents** -- the collection scan.  The plan's
  automata are built once; each document only pays the product
  reachability of Proposition 1.
* **many queries, one document** -- the multi-tenant read.  All plans
  share a *single* :class:`~repro.jnl.efficient.JNLEvaluator`, so the
  arena is traversed once per distinct subformula rather than once per
  query: node sets of shared tests (``[alpha]``, atoms, booleans) are
  memoised across plans, and the document-order ranks are computed once
  for the whole batch.

No evaluation state survives a batch call: results are recomputed from
the trees passed in, so mutated or rebuilt documents can never yield
stale answers (the compile cache only ever stores tree-independent
plans).

Since the store refactor, every one-plan/many-trees function also
accepts an indexed :class:`repro.store.Collection` in place of the
tree iterable: the call is then routed through the planner
(:mod:`repro.query.planner`), which prunes candidate documents via the
collection's secondary indexes before falling back to the per-tree
compiled evaluation below -- same results, aligned with the
collection's live-document order.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.jnl.efficient import JNLEvaluator
from repro.model.tree import JSONTree, JSONValue
from repro.query.compiled import CompiledQuery


def _as_collection(trees: object):
    """The store Collection behind ``trees``, if it is one (lazy import:
    the store builds on this module, not vice versa)."""
    from repro.store.collection import Collection

    return trees if isinstance(trees, Collection) else None

__all__ = [
    "select_many",
    "evaluate_many",
    "match_many",
    "filter_many",
    "aggregate_many",
    "select_queries",
    "evaluate_queries",
]


# ---------------------------------------------------------------------------
# One compiled query, many trees.
# ---------------------------------------------------------------------------


def select_many(
    query: CompiledQuery, trees: "Iterable[JSONTree]"
) -> list[list[int]]:
    """Per-tree document-order node ids selected by ``query``."""
    collection = _as_collection(trees)
    if collection is not None:
        from repro.query import planner

        return [nodes for _, nodes in planner.select_nodes(collection, query)]
    return [query.select(tree) for tree in trees]


def evaluate_many(
    query: CompiledQuery, trees: "Iterable[JSONTree]"
) -> list[list[JSONValue]]:
    """Per-tree document-order subdocuments selected by ``query``."""
    collection = _as_collection(trees)
    if collection is not None:
        from repro.query import planner

        return [
            values for _, values in planner.select_values(collection, query)
        ]
    return [query.values(tree) for tree in trees]


def match_many(
    query: CompiledQuery, trees: "Iterable[JSONTree]"
) -> list[bool]:
    """Per-tree root-match verdicts (the collection-scan predicate)."""
    collection = _as_collection(trees)
    if collection is not None:
        from repro.query import planner

        return planner.match_flags(collection, query)
    return [query.matches(tree) for tree in trees]


def filter_many(
    query: CompiledQuery, trees: "Iterable[JSONTree]"
) -> list[JSONValue]:
    """Mongo ``find`` over a collection: the (projected) matching docs."""
    collection = _as_collection(trees)
    if collection is not None:
        from repro.query import planner

        return planner.find_documents(collection, query)
    results: list[JSONValue] = []
    for tree in trees:
        value = query.apply(tree)
        if value is not None:
            results.append(value)
    return results


def aggregate_many(
    pipeline: list, trees: "Iterable[JSONTree]"
) -> list[JSONValue]:
    """Run a Mongo aggregation pipeline over many trees (or a
    collection, which additionally prunes the leading ``$match`` run
    via the secondary indexes).  The pipeline compiles once through
    the process-wide artifact cache."""
    from repro.mongo.aggregate import compile_pipeline

    compiled = compile_pipeline(pipeline)
    collection = _as_collection(trees)
    return compiled.execute(collection if collection is not None else trees)


# ---------------------------------------------------------------------------
# Many compiled queries, one tree.
# ---------------------------------------------------------------------------


def _shared_evaluator(
    queries: Sequence[CompiledQuery], tree: JSONTree
) -> JNLEvaluator:
    """One evaluator for the whole batch, seeded with every plan's automata."""
    automata = {}
    for query in queries:
        automata.update(query.automata)
    return JNLEvaluator(tree, automata=automata)


def select_queries(
    queries: Sequence[CompiledQuery], tree: JSONTree
) -> list[list[int]]:
    """Run many plans over one tree with one shared evaluator.

    Returns one document-order node-id list per query, in order.
    """
    evaluator = _shared_evaluator(queries, tree)
    return [query.select(tree, evaluator=evaluator) for query in queries]


def evaluate_queries(
    queries: Sequence[CompiledQuery], tree: JSONTree
) -> list[list[JSONValue]]:
    """Like :func:`select_queries` but returning subdocument values."""
    evaluator = _shared_evaluator(queries, tree)
    return [query.values(tree, evaluator=evaluator) for query in queries]
