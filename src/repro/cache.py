"""The process-wide LRU cache for compiled artifacts.

Compiling a query (parsing, path-automaton construction) or a validator
(definition resolution, key-set/regex prebuilding, closure generation)
is pure in its source, so the work can be shared across calls and
across documents.  This module provides a small instrumented LRU cache
plus the process-wide default instance shared by *every* compile-once
subsystem: :func:`repro.query.compile_query` and the query front-ends,
and :func:`repro.validate.compile_schema_validator` and the other
validator compilers.  One cache, one set of hit/miss/eviction counters.

Only *compilation artifacts* are cached -- never per-tree evaluation
results -- so a cached plan or validator can be run against any
document, including one that changed since the last call, without ever
returning stale results.  Keys are namespaced by a dialect string
(``"jnl"``, ``"jsonpath"``, ``"mongo-find"``, ``"schema-validator"``,
``"jsl-validator"``, ``"stream-validator"``) so the subsystems can
never collide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Callable, Hashable, TypeVar

__all__ = [
    "CacheStats",
    "LRUCache",
    "DEFAULT_CAPACITY",
    "USE_DEFAULT_CACHE",
    "artifact_cache",
    "artifact_cache_stats",
    "clear_artifact_cache",
    "configure_artifact_cache",
    "resolve_cache",
]

T = TypeVar("T")

DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A thread-safe LRU mapping with instrumentation.

    >>> cache = LRUCache(capacity=2)
    >>> cache.get_or_compute("a", lambda: 1)
    1
    >>> cache.get_or_compute("a", lambda: 1)
    1
    >>> cache.stats().hits, cache.stats().misses
    (1, 1)
    """

    __slots__ = ("_capacity", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> object | None:
        """The cached value, refreshing recency; ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self.misses += 1
        # Compute outside the lock: compilation can be slow and reentrant
        # (a Mongo $elemMatch compiles a nested filter).
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries if shrinking."""
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )


# ---------------------------------------------------------------------------
# The process-wide default compile cache.
# ---------------------------------------------------------------------------

_GLOBAL_CACHE = LRUCache(DEFAULT_CAPACITY)

# Sentinel distinguishing "use the global cache" from "no caching"
# (``cache=None``) in the compile entry points' signatures.
USE_DEFAULT_CACHE = object()


def artifact_cache() -> LRUCache:
    """The process-wide compiled-artifact cache shared by all subsystems."""
    return _GLOBAL_CACHE


def artifact_cache_stats() -> CacheStats:
    """Unified counters of the process-wide compiled-artifact cache."""
    return _GLOBAL_CACHE.stats()


def clear_artifact_cache() -> None:
    """Empty the process-wide artifact cache and reset its counters."""
    _GLOBAL_CACHE.clear()


def configure_artifact_cache(capacity: int) -> None:
    """Resize the process-wide artifact cache (evicting if shrinking)."""
    _GLOBAL_CACHE.resize(capacity)


def resolve_cache(cache: object) -> LRUCache | None:
    """Normalise a compile entry point's ``cache`` argument.

    ``USE_DEFAULT_CACHE`` resolves to the process-wide cache, ``None``
    disables caching, and an explicit :class:`LRUCache` is used as-is.
    """
    if cache is USE_DEFAULT_CACHE:
        return _GLOBAL_CACHE
    if cache is None or isinstance(cache, LRUCache):
        return cache
    raise TypeError(f"cache must be an LRUCache or None, got {cache!r}")
