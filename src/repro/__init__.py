"""repro: a reproduction of "JSON: data model, query languages and schema
specification" (Bourhis, Reutter, Suarez, Vrgoc; PODS 2017).

The package implements the paper's three formalisms and everything they
depend on:

* :mod:`repro.model` -- JSON trees, the formal data model (Section 3);
* :mod:`repro.jnl` -- JSON Navigational Logic: deterministic core plus
  non-determinism and recursion (Section 4);
* :mod:`repro.jsl` -- JSON Schema Logic with node tests, modalities and
  recursive definitions (Section 5);
* :mod:`repro.schema` -- the JSON Schema core fragment of Table 1, with
  Theorem-1 translations to and from JSL;
* :mod:`repro.translate` -- the Theorem-2 translations between JNL and JSL;
* :mod:`repro.automata` -- regex engine, key languages, J-automata;
* :mod:`repro.reductions` -- executable hardness reductions (Props 2/4/7/9);
* :mod:`repro.mongo`, :mod:`repro.jsonpath` -- the surveyed front-ends
  compiled onto JNL;
* :mod:`repro.query`, :mod:`repro.store` -- the compiled-query
  subsystem (shared logical-plan IR, planner) and the indexed document
  collections it serves;
* :mod:`repro.streaming` -- streaming validation (Section 6 outlook);
* :mod:`repro.workloads`, :mod:`repro.bench` -- generators and the
  benchmark harness.

Quickstart::

    from repro import JSONTree, Navigator, parse_jnl, evaluate_jnl

    doc = JSONTree.from_value({"name": {"first": "John"}, "age": 32})
    assert Navigator(doc)["name"]["first"].value() == "John"
    nodes = evaluate_jnl(doc, parse_jnl('has(.name/.first)'))
    assert doc.root in nodes
"""

from repro.errors import (
    DuplicateKeyError,
    ModelError,
    NavigationError,
    ParseError,
    ReproError,
    SchemaError,
    SolverLimitError,
    TranslationError,
    UnsupportedFragmentError,
    WellFormednessError,
)
from repro.model import (
    JSONTree,
    Kind,
    Navigator,
    TreeBuilder,
    fetch,
    navigate,
    subtree_equal,
    try_navigate,
)

__version__ = "1.10.0"

__all__ = [
    "JSONTree",
    "Kind",
    "Navigator",
    "TreeBuilder",
    "navigate",
    "try_navigate",
    "fetch",
    "subtree_equal",
    "ReproError",
    "ModelError",
    "DuplicateKeyError",
    "NavigationError",
    "ParseError",
    "SchemaError",
    "TranslationError",
    "UnsupportedFragmentError",
    "WellFormednessError",
    "SolverLimitError",
    "__version__",
    # Populated lazily below once the logic packages import cleanly.
    "parse_jnl",
    "evaluate_jnl",
    "parse_jsl",
    "evaluate_jsl",
    "CompiledQuery",
    "compile_query",
    "Collection",
    "Database",
    "connect",
    "open_database",
    "memory_collection",
    "CompiledValidator",
    "compile_schema_validator",
    "compile_jsl_validator",
    "validate_corpus",
]


def __getattr__(name: str):  # pragma: no cover - thin convenience shim
    """Lazily re-export the most used logic entry points.

    Importing them eagerly would make ``import repro`` pull in every
    subsystem; the lazy hook keeps startup light while preserving the
    convenient flat namespace used in the README examples.
    """
    if name == "parse_jnl":
        from repro.jnl.parser import parse_jnl

        return parse_jnl
    if name == "evaluate_jnl":
        from repro.jnl.efficient import evaluate_unary as evaluate_jnl

        return evaluate_jnl
    if name == "CompiledQuery":
        from repro.query import CompiledQuery

        return CompiledQuery
    if name == "compile_query":
        from repro.query import compile_query

        return compile_query
    if name == "Collection":
        from repro.store import Collection

        return Collection
    if name == "connect":
        from repro.api import connect

        return connect
    if name in ("Database", "open_database", "memory_collection"):
        import repro.store as _store

        return getattr(_store, name)
    if name in (
        "CompiledValidator",
        "compile_schema_validator",
        "compile_jsl_validator",
        "validate_corpus",
    ):
        import repro.validate as _validate

        return getattr(_validate, name)
    if name == "parse_jsl":
        from repro.jsl.parser import parse_jsl

        return parse_jsl
    if name == "evaluate_jsl":
        from repro.jsl.evaluator import satisfies as evaluate_jsl

        return evaluate_jsl
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
