"""Indexed document collections: the store layer over the query stack.

The architectural seam between one-tree evaluation and many-document
serving::

    front-ends (JSONPath / Mongo find / JNL)
        |  lower into
    logical-plan IR (repro.query.ir)
        |  pruned by                 \\  evaluated by
    secondary indexes (store.indexes)  compiled plans (repro.query)
        |
    Collection (store.collection): interned trees, incremental index
    maintenance, schema enforcement on ingest, planner-routed queries,
    delta-maintained in-place updates (store.update)

* :class:`~repro.store.collection.Collection` -- the document store;
* :class:`~repro.store.indexes.DocumentIndexes` -- path/value/kind/
  key-presence postings with counted, incremental maintenance;
* :class:`~repro.store.update.CompiledUpdate` -- dialect-neutral update
  programs whose mutation records drive delta index maintenance.
"""

from repro.store.collection import Collection
from repro.store.indexes import (
    DeltaOps,
    DocumentIndexes,
    IndexStats,
    index_entries,
    tree_entry_counts,
    value_entry_counts,
)
from repro.store.update import CompiledUpdate, Mutation, mutation_delta

__all__ = [
    "Collection",
    "DeltaOps",
    "DocumentIndexes",
    "IndexStats",
    "index_entries",
    "tree_entry_counts",
    "value_entry_counts",
    "CompiledUpdate",
    "Mutation",
    "mutation_delta",
]
