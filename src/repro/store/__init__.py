"""Indexed document collections: the store layer over the query stack.

The architectural seam between one-tree evaluation and many-document
serving::

    front-ends (JSONPath / Mongo find / JNL)
        |  lower into
    logical-plan IR (repro.query.ir)
        |  pruned by                 \\  evaluated by
    secondary indexes (store.indexes)  compiled plans (repro.query)
        |
    Collection (store.collection): interned trees, incremental index
    maintenance, schema enforcement on ingest, planner-routed queries

* :class:`~repro.store.collection.Collection` -- the document store;
* :class:`~repro.store.indexes.DocumentIndexes` -- path/value/kind/
  key-presence postings with incremental maintenance.
"""

from repro.store.collection import Collection
from repro.store.indexes import DocumentIndexes, IndexStats, index_entries

__all__ = ["Collection", "DocumentIndexes", "IndexStats", "index_entries"]
