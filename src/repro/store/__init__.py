"""Indexed document collections: the store layer over the query stack.

The architectural seam between one-tree evaluation and many-document
serving::

    front-ends (JSONPath / Mongo find / JNL)
        |  lower into
    logical-plan IR (repro.query.ir)
        |  pruned by                 \\  evaluated by
    secondary indexes (store.indexes)  compiled plans (repro.query)
        |
    Collection (store.collection): interned trees, incremental index
    maintenance, schema enforcement on ingest, planner-routed queries,
    delta-maintained in-place updates (store.update)
        |  commits through
    StorageEngine (store.engine): MemoryEngine | DurableEngine
        |                              | sharded across N collections by
    WAL + snapshots (store.wal,    ShardedEngine/ShardedCollection
    store.durable), owned per      (store.sharded): global doc-ids,
    named collection by a          scatter-gather queries, mergeable
    Database handle                partial aggregation, optional
    (store.database)               multiprocessing worker pool

* :class:`~repro.store.database.Database` -- the factory every layer
  acquires collections through (open one via :func:`repro.api.connect`);
* :class:`~repro.store.collection.Collection` -- the document store
  (:func:`repro.api.collection` is the volatile convenience
  constructor);
* :class:`~repro.store.engine.StorageEngine` -- the persistence seam:
  :class:`~repro.store.engine.MemoryEngine` (no-op),
  :class:`~repro.store.durable.DurableEngine` (write-ahead log +
  versioned snapshots, replay-on-open, log compaction) and
  :class:`~repro.store.sharded.ShardedEngine` (N engine-backed shards
  behind one coordinator);
* :class:`~repro.store.sharded.ShardedCollection` -- the
  hash-partitioned collection with parallel scatter-gather execution
  (``repro.api.collection(..., shards=N)`` is the volatile convenience
  constructor);
* :class:`~repro.store.indexes.DocumentIndexes` -- path/value/kind/
  key-presence postings with counted, incremental maintenance;
* :class:`~repro.store.update.CompiledUpdate` -- dialect-neutral update
  programs whose mutation records drive delta index maintenance;
* :mod:`repro.store.faults` -- the injectable I/O seam
  (:class:`~repro.store.faults.IOAdapter`,
  :class:`~repro.store.faults.FaultyIO`) every durable byte routes
  through, for deterministic fault and crash-point testing;
* :mod:`repro.store.fsck` -- the offline integrity verifier and
  repairer behind ``repro db verify`` / ``repro db repair``.
"""

from repro.store.collection import Collection, memory_collection
from repro.store.database import Database, open_database
from repro.store.durable import CompactionReport, DurableEngine, ReplayFolder
from repro.store.engine import (
    EngineHealth,
    MemoryEngine,
    RecoveredState,
    StorageEngine,
    decode_snapshot,
)
from repro.store.faults import (
    Fault,
    FaultPlan,
    FaultyIO,
    IOAdapter,
    RealIO,
    SimulatedCrash,
)
from repro.store.fsck import (
    IntegrityReport,
    RepairReport,
    repair,
    verify,
)
from repro.store.indexes import (
    DeltaOps,
    DocumentIndexes,
    IndexStats,
    decode_entry_counts,
    encode_entry_counts,
    index_entries,
    tree_entry_counts,
    value_entry_counts,
)
from repro.store.snapshot import CollectionSnapshot
from repro.store.sharded import (
    ShardedCollection,
    ShardedEngine,
    shard_name,
    shard_of,
    sharded_collection,
)
from repro.store.update import CompiledUpdate, Mutation, mutation_delta
from repro.store.wal import WriteAheadLog, scan_wal

__all__ = [
    "Collection",
    "CollectionSnapshot",
    "memory_collection",
    "Database",
    "open_database",
    "StorageEngine",
    "MemoryEngine",
    "DurableEngine",
    "ShardedEngine",
    "ShardedCollection",
    "sharded_collection",
    "shard_of",
    "shard_name",
    "CompactionReport",
    "RecoveredState",
    "EngineHealth",
    "ReplayFolder",
    "WriteAheadLog",
    "scan_wal",
    "decode_snapshot",
    "IOAdapter",
    "RealIO",
    "FaultyIO",
    "Fault",
    "FaultPlan",
    "SimulatedCrash",
    "IntegrityReport",
    "RepairReport",
    "verify",
    "repair",
    "DeltaOps",
    "DocumentIndexes",
    "IndexStats",
    "index_entries",
    "tree_entry_counts",
    "value_entry_counts",
    "encode_entry_counts",
    "decode_entry_counts",
    "CompiledUpdate",
    "Mutation",
    "mutation_delta",
]
