"""Value-space update programs with delta index maintenance.

The paper's data model treats JSON trees as first-class documents, but
the store so far could only insert and remove them whole; realistic
workloads (counters, enrichment, denormalisation) mutate documents in
place.  This module is the dialect-neutral half of the write path: a
small algebra of **update operations** over plain JSON values, composed
into a :class:`CompiledUpdate` program that applies with spine-copying
(:func:`repro.query.stages.set_path` semantics) and reports exactly
*what* it changed as a list of :class:`Mutation` records -- the
replaced and replacement subtrees, located by stripped key path.

Mutations are what make **delta index maintenance** possible: feeding
each mutation's old/new subtree through
:func:`repro.store.indexes.value_entry_counts` (subtract the old, add
the new) yields the counted entry delta of the whole edit, and
:meth:`repro.store.indexes.DocumentIndexes.apply_entry_delta` then
touches only the postings whose refcount crosses zero -- never the
unchanged remainder of the document.

Nothing here knows about MongoDB update-document syntax;
:mod:`repro.mongo.update` parses ``{"$set": ...}``-style documents
into these operations and wires the result through the collection and
the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import UpdateError
from repro.query.stages import MISSING, resolve_path, values_equal
from repro.store.indexes import (
    Entry,
    leaf_entry_delta,
    value_entry_counts,
)

__all__ = [
    "Mutation",
    "CompiledUpdate",
    "mutation_delta",
    "set_op",
    "unset_op",
    "inc_op",
    "mul_op",
    "rename_op",
    "push_op",
    "add_to_set_op",
    "pull_op",
    "pop_op",
    "replace_op",
    "set_path_create",
]

KeyPath = tuple  # stripped key path (array positions dropped)


@dataclass(frozen=True)
class Mutation:
    """One subtree replacement an update performed.

    ``path`` is the *stripped* key path of the mutated node (array
    positions dropped -- the index entry coordinate), ``edge_key`` the
    object key of the edge into it (``None`` for the document root or
    an array element).  ``old``/``new`` are the replaced/replacement
    subtrees, with :data:`~repro.query.stages.MISSING` marking creation
    (no ``old``) or deletion (no ``new``).  No-op edits never produce a
    mutation, so a document is *modified* iff its mutation list is
    non-empty.
    """

    path: KeyPath
    edge_key: str | None
    old: Any
    new: Any


class _NoChange:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_CHANGE"


#: Returned by an edit closure to signal "leave the node untouched".
NO_CHANGE = _NoChange()

# An edit closure: old subtree (or MISSING) -> new subtree, MISSING to
# delete, NO_CHANGE to keep.
Edit = Callable[[Any], Any]
# A compiled operation: (document value, mutation sink) -> new value.
Op = Callable[[Any, list], Any]


def _segment_error(segments: tuple[str, ...], index: int, reason: str) -> UpdateError:
    dotted = ".".join(segments)
    return UpdateError(f"cannot apply update at {dotted!r}: {reason}")


def edit_at(
    value: Any,
    segments: tuple[str, ...],
    edit: Edit,
    *,
    create: bool,
) -> tuple[Any, Mutation | None]:
    """Apply ``edit`` to the node under ``segments``, spine-copying.

    Path semantics match the query side (:func:`repro.query.stages.
    resolve_path`): an all-digit segment is an array index, anything
    else an object key.  With ``create=True`` missing object keys are
    created as nested documents (the ``$set`` family); an array index
    may be created only at exactly the current length (append).  With
    ``create=False`` a missing path is a no-op (the ``$unset`` family).
    Traversing through an existing non-container raises
    :class:`~repro.errors.UpdateError` in create mode and no-ops
    otherwise.

    Returns ``(new_root, mutation)``; ``mutation`` is ``None`` (and
    ``new_root is value``) when nothing changed.
    """
    if not segments:
        raise UpdateError("empty update path")
    outcome = _edit_rec(value, segments, 0, (), edit, create)
    if outcome is None:
        return value, None
    return outcome


def _build_chain(segments: tuple[str, ...], index: int, edit: Edit) -> Any:
    """The nested documents a created path contributes past ``index``."""
    for position in range(index, len(segments)):
        if segments[position].isdigit():
            raise _segment_error(
                segments,
                position,
                "an array index cannot be created inside a new path",
            )
    leaf = edit(MISSING)
    if leaf is NO_CHANGE or leaf is MISSING:
        return leaf
    for segment in reversed(segments[index:]):
        leaf = {segment: leaf}
    return leaf


def _edit_rec(
    node: Any,
    segments: tuple[str, ...],
    index: int,
    path: KeyPath,
    edit: Edit,
    create: bool,
) -> tuple[Any, Mutation] | None:
    """Returns ``(new_node, mutation)`` or ``None`` for a no-op."""
    segment = segments[index]
    last = index == len(segments) - 1
    if segment.isdigit():
        if not isinstance(node, list):
            if create:
                raise _segment_error(
                    segments,
                    index,
                    "an array index step needs an existing array",
                )
            return None
        position = int(segment)
        if position > len(node) or (position == len(node) and not create):
            if create:
                raise _segment_error(
                    segments,
                    index,
                    f"array index {position} past the end "
                    f"(length {len(node)})",
                )
            return None
        if position == len(node):  # create-mode append
            if not last:
                raise _segment_error(
                    segments,
                    index,
                    "cannot create a path through a missing array element",
                )
            new = edit(MISSING)
            if new is NO_CHANGE or new is MISSING:
                return None
            return node + [new], Mutation(path, None, MISSING, new)
        child = node[position]
        if last:
            new = edit(child)
            if new is NO_CHANGE:
                return None
            if new is MISSING:
                raise _segment_error(
                    segments,
                    index,
                    "cannot remove an array element by index "
                    "(use $pull or $pop)",
                )
            out = list(node)
            out[position] = new
            return out, Mutation(path, None, child, new)
        deeper = _edit_rec(child, segments, index + 1, path, edit, create)
        if deeper is None:
            return None
        out = list(node)
        out[position] = deeper[0]
        return out, deeper[1]
    # Object-key step.
    if not isinstance(node, dict):
        if create:
            raise _segment_error(
                segments,
                index,
                f"cannot create field {segment!r} inside a non-document",
            )
        return None
    child_path = path + (segment,)
    if segment not in node:
        if not create:
            return None
        chain = _build_chain(segments, index + 1, edit)
        if chain is NO_CHANGE or chain is MISSING:
            return None
        out = dict(node)
        out[segment] = chain
        return out, Mutation(child_path, segment, MISSING, chain)
    child = node[segment]
    if last:
        new = edit(child)
        if new is NO_CHANGE:
            return None
        out = dict(node)
        if new is MISSING:
            del out[segment]
            return out, Mutation(child_path, segment, child, MISSING)
        out[segment] = new
        return out, Mutation(child_path, segment, child, new)
    deeper = _edit_rec(child, segments, index + 1, child_path, edit, create)
    if deeper is None:
        return None
    out = dict(node)
    out[segment] = deeper[0]
    return out, deeper[1]


def set_path_create(value: Any, segments: tuple[str, ...], new: Any) -> Any:
    """``$set`` semantics as a plain function (used by upsert seeding)."""
    updated, _ = edit_at(value, segments, lambda old: new, create=True)
    return updated


# ---------------------------------------------------------------------------
# The update operations.
# ---------------------------------------------------------------------------


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _simple(segments: tuple[str, ...], edit: Edit, *, create: bool) -> Op:
    def op(value: Any, mutations: list) -> Any:
        value, mutation = edit_at(value, segments, edit, create=create)
        if mutation is not None:
            mutations.append(mutation)
        return value

    return op


def set_op(segments: tuple[str, ...], operand: Any) -> Op:
    """``$set``: replace (or create) the node with ``operand``."""

    def edit(old: Any) -> Any:
        if old is not MISSING and values_equal(old, operand):
            return NO_CHANGE
        return operand

    return _simple(segments, edit, create=True)


def unset_op(segments: tuple[str, ...]) -> Op:
    """``$unset``: delete the field (missing paths no-op)."""
    return _simple(segments, lambda old: MISSING, create=False)


def _arith_op(
    segments: tuple[str, ...], amount: int, apply: Callable[[int, int], int],
    operator: str,
) -> Op:
    def edit(old: Any) -> Any:
        if old is MISSING:
            return apply(0, amount)  # the field is created, as in MongoDB
        if not _is_int(old):
            raise UpdateError(
                f"{operator} needs a number at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        new = apply(old, amount)
        return NO_CHANGE if new == old else new

    return _simple(segments, edit, create=True)


def inc_op(segments: tuple[str, ...], amount: int) -> Op:
    """``$inc``: add to the number (a missing field starts at 0)."""
    return _arith_op(segments, amount, lambda old, n: old + n, "$inc")


def mul_op(segments: tuple[str, ...], factor: int) -> Op:
    """``$mul``: multiply the number (a missing field becomes 0)."""
    return _arith_op(segments, factor, lambda old, n: old * n, "$mul")


def rename_op(
    src_segments: tuple[str, ...], dst_segments: tuple[str, ...]
) -> Op:
    """``$rename``: move the value at one path to another."""

    def op(value: Any, mutations: list) -> Any:
        moved = resolve_path(value, src_segments)
        if moved is MISSING:
            return value
        value, removal = edit_at(
            value, src_segments, lambda old: MISSING, create=False
        )
        if removal is not None:
            mutations.append(removal)
        value, insertion = edit_at(
            value, dst_segments, lambda old: moved, create=True
        )
        if insertion is not None:
            mutations.append(insertion)
        return value

    return op


def push_op(segments: tuple[str, ...], items: tuple) -> Op:
    """``$push`` (with ``$each`` already expanded into ``items``)."""

    def edit(old: Any) -> Any:
        if old is MISSING:
            return list(items)
        if not isinstance(old, list):
            raise UpdateError(
                f"$push needs an array at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        if not items:
            return NO_CHANGE
        return old + list(items)

    return _simple(segments, edit, create=True)


def add_to_set_op(segments: tuple[str, ...], items: tuple) -> Op:
    """``$addToSet``: append the items not already present."""

    def fresh(existing: list, candidates: Iterable[Any]) -> list:
        added: list[Any] = []
        for item in candidates:
            if not any(values_equal(item, seen) for seen in existing):
                existing = existing + [item]
                added.append(item)
        return added

    def edit(old: Any) -> Any:
        if old is MISSING:
            return fresh([], items)
        if not isinstance(old, list):
            raise UpdateError(
                f"$addToSet needs an array at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        added = fresh(list(old), items)
        if not added:
            return NO_CHANGE
        return old + added

    return _simple(segments, edit, create=True)


def pull_op(segments: tuple[str, ...], keep: Callable[[Any], bool]) -> Op:
    """``$pull``: drop array elements *not* satisfying ``keep``.

    The condition compiler (dialect-specific) hands this the *keep*
    predicate -- the negation of the pull condition -- so the neutral
    op never sees filter syntax.
    """

    def edit(old: Any) -> Any:
        if old is MISSING:
            return NO_CHANGE
        if not isinstance(old, list):
            raise UpdateError(
                f"$pull needs an array at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        kept = [element for element in old if keep(element)]
        if len(kept) == len(old):
            return NO_CHANGE
        return kept

    return _simple(segments, edit, create=False)


def pop_op(segments: tuple[str, ...], from_front: bool) -> Op:
    """``$pop``: drop the first (``-1``) or last (``1``) element."""

    def edit(old: Any) -> Any:
        if old is MISSING:
            return NO_CHANGE
        if not isinstance(old, list):
            raise UpdateError(
                f"$pop needs an array at {'.'.join(segments)!r}, "
                f"found {old!r}"
            )
        if not old:
            return NO_CHANGE
        return old[1:] if from_front else old[:-1]

    return _simple(segments, edit, create=False)


def replace_op(replacement: Any) -> Op:
    """Whole-document replacement (``replace_one``)."""

    def op(value: Any, mutations: list) -> Any:
        if values_equal(value, replacement):
            return value
        mutations.append(Mutation((), None, value, replacement))
        return replacement

    return op


# ---------------------------------------------------------------------------
# The compiled program.
# ---------------------------------------------------------------------------


class CompiledUpdate:
    """An executable update program, reusable across documents.

    ``ops`` apply in order, each spine-copying, so the input value is
    never mutated -- callers keep the old value, the store keeps the
    new one, and the accumulated :class:`Mutation` list is the exact
    edit script delta index maintenance replays against the postings.
    No evaluation state lives on the compiled object: one program can
    be shared freely across documents, collections and threads.
    """

    __slots__ = ("source", "ops")

    def __init__(self, source: str, ops: tuple[Op, ...]) -> None:
        self.source = source
        self.ops = ops

    def apply(self, value: Any) -> tuple[Any, list[Mutation]]:
        """Run the program; returns the new value and the edit script."""
        mutations: list[Mutation] = []
        for op in self.ops:
            value = op(value, mutations)
        return value, mutations

    def __repr__(self) -> str:
        source = (
            self.source if len(self.source) <= 40 else self.source[:37] + "..."
        )
        return f"CompiledUpdate({source!r})"


def mutation_delta(
    mutations: Iterable[Mutation], *, extended: bool = False
) -> dict[Entry, int]:
    """The counted index-entry delta of one document's edit script.

    Subtracts every replaced subtree's entries and adds every
    replacement's; entries contributed identically by both sides cancel
    to zero, so the surviving dict names exactly the postings delta
    maintenance must touch.  Raises
    :class:`~repro.errors.UnsupportedValueError` when a replacement
    subtree falls outside the (possibly extended) model -- before any
    index state changes.
    """
    delta: dict[Entry, int] = {}
    for mutation in mutations:
        old, new = mutation.old, mutation.new
        if (
            old is not MISSING
            and new is not MISSING
            and not isinstance(old, (dict, list, tuple))
            and not isinstance(new, (dict, list, tuple))
        ):
            # Leaf-for-leaf replacement (the $inc/$set hot case): the
            # path/key entries cancel by construction, so only the
            # kind (when it changes) and leaf-value entries move.
            leaf_entry_delta(
                old, new, mutation.path, extended=extended, counts=delta
            )
            continue
        if mutation.old is not MISSING:
            value_entry_counts(
                mutation.old,
                mutation.path,
                mutation.edge_key,
                extended=extended,
                counts=delta,
                sign=-1,
            )
        if mutation.new is not MISSING:
            value_entry_counts(
                mutation.new,
                mutation.path,
                mutation.edge_key,
                extended=extended,
                counts=delta,
                sign=1,
            )
    return delta
