"""The database handle: one factory for every collection acquisition.

Before this module, every layer constructed collections its own way --
the CLI parsed JSON-lines into ad-hoc ``Collection(...)`` calls, the
Mongo front-end had its subclass constructor, benchmarks built theirs
inline.  :class:`Database` is the redesigned entry point: it owns named
collections, decides their storage engine (memory when ``path`` is
``None``, WAL + snapshot :class:`~repro.store.durable.DurableEngine`
under ``path`` otherwise), and hands out one cached handle per name.

Quickstart::

    import repro

    with repro.open_database("./mydb") as db:
        people = db.collection("people")
        people.insert_many([{"name": "Sue"}, {"name": "Bob"}])

    # ...process restarts...
    with repro.open_database("./mydb") as db:
        assert len(db.collection("people")) == 2
        db.compact("people")       # fold the WAL into a snapshot

``Database()`` (no path) is the volatile variant -- same API, memory
engines -- so code can be written against the factory once and flipped
to durable by configuration.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from repro.errors import StoreError
from repro.store.collection import Collection
from repro.store.durable import CompactionReport, DurableEngine
from repro.store.engine import EngineHealth, MemoryEngine
from repro.store.faults import IOAdapter

__all__ = ["Database", "open_database"]

_SNAPSHOT_SUFFIX = ".snapshot.json"
_WAL_SUFFIX = ".wal"


class Database:
    """A set of named collections behind one storage root.

    ``path=None`` serves memory-engine collections; a directory path
    serves durable ones (``<path>/<name>.wal`` +
    ``<path>/<name>.snapshot.json``).  ``sync``, ``compact_threshold``
    and the ``io`` adapter are passed through to every durable engine
    the database creates -- ``io`` is the fault-injection seam
    (:class:`~repro.store.faults.FaultyIO`) and defaults to the real
    filesystem.
    """

    def __init__(
        self,
        path: "str | os.PathLike | None" = None,
        *,
        sync: str = "fsync",
        compact_threshold: int | None = None,
        io: IOAdapter | None = None,
        optimize: str = "on",
    ) -> None:
        from repro.query.optimizer import check_optimize_mode

        self._path = None if path is None else os.fspath(path)
        self._sync = sync
        self._threshold = compact_threshold
        self._io = io
        self._optimize = check_optimize_mode(optimize)
        self._collections: dict[str, Collection] = {}
        if self._path is not None:
            os.makedirs(self._path, exist_ok=True)

    # ------------------------------------------------------------------
    # The factory.
    # ------------------------------------------------------------------

    def collection(
        self,
        name: str = "main",
        *,
        documents: Iterable[Any] = (),
        schema: Any | None = None,
        validator: Any | None = None,
        extended: bool = False,
        indexed: bool = True,
        optimize: str | None = None,
    ) -> Collection:
        """The named collection, opened (and recovered) on first use.

        Handles are cached per name: reopening returns the same
        :class:`~repro.store.Collection`, and configuration keywords
        are only honoured when the handle is first created (passing a
        schema to an already-open handle raises instead of silently
        ignoring it).  ``documents`` are inserted -- and, on a durable
        database, logged -- on every call that supplies them.
        """
        existing = self._collections.get(name)
        if existing is not None:
            if schema is not None or validator is not None:
                raise StoreError(
                    f"collection {name!r} is already open; schema/validator "
                    "can only be set when the handle is first created"
                )
            documents = list(documents)
            if documents:
                existing.insert_many(documents)
            return existing
        if self._path is None:
            engine: Any = MemoryEngine()
        else:
            engine = DurableEngine(
                self._path,
                name,
                sync=self._sync,
                compact_threshold=self._threshold,
                io=self._io,
            )
        collection = Collection(
            documents,
            schema=schema,
            validator=validator,
            extended=extended,
            indexed=indexed,
            engine=engine,
            optimize=self._optimize if optimize is None else optimize,
        )
        self._collections[name] = collection
        return collection

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def durable(self) -> bool:
        return self._path is not None

    def health(self) -> dict[str, EngineHealth]:
        """Per-collection write availability, for every *open* handle.

        A degraded entry means that collection's engine hit a storage
        failure and went read-only (see
        :class:`~repro.store.engine.EngineHealth`); reopening the
        database recovers the acknowledged prefix.  Collections on disk
        but not yet opened are not listed -- health is a property of a
        live engine, not of files (use :func:`repro.store.fsck.verify`
        for those).
        """
        return {
            name: collection.health
            for name, collection in sorted(self._collections.items())
        }

    def collection_names(self) -> list[str]:
        """Open handles plus any collections found on disk, sorted."""
        names = set(self._collections)
        if self._path is not None and os.path.isdir(self._path):
            for filename in os.listdir(self._path):
                for suffix in (_SNAPSHOT_SUFFIX, _WAL_SUFFIX):
                    if filename.endswith(suffix):
                        names.add(filename[: -len(suffix)])
        return sorted(names)

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def compact(self, name: str | None = None) -> dict[str, CompactionReport]:
        """Checkpoint one collection (or all of them) and reset WALs.

        Collections present on disk but not yet open are opened (which
        replays their log) so a ``db compact`` sweep covers everything.
        Returns per-collection reports; memory collections compact to
        nothing and are skipped.
        """
        if name is not None:
            targets = [name]
        elif self.durable:
            targets = self.collection_names()
        else:
            targets = list(self._collections)
        reports: dict[str, CompactionReport] = {}
        for target in targets:
            report = self.collection(target).compact()
            if report is not None:
                reports[target] = report
        return reports

    def close(self) -> None:
        """Close every open collection's engine (WAL handles)."""
        for collection in self._collections.values():
            collection.close()
        self._collections.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        where = "memory" if self._path is None else self._path
        return f"Database({where!r}, {len(self._collections)} open)"


def open_database(
    path: "str | os.PathLike | None",
    *,
    sync: str = "fsync",
    compact_threshold: int | None = None,
    io: IOAdapter | None = None,
) -> Database:
    """Deprecated spelling of :func:`repro.api.connect`.

    Kept as a working shim through the API consolidation; ``connect``
    covers this call exactly (and adds ``shards=``/remote addresses).
    """
    import warnings

    warnings.warn(
        "repro.open_database is deprecated; use repro.api.connect() "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Database(
        path, sync=sync, compact_threshold=compact_threshold, io=io
    )
