"""An indexed collection of JSON trees: the document-store layer.

A :class:`Collection` owns a set of documents (as
:class:`~repro.model.tree.JSONTree` arenas built through one shared
key/atom intern table), keeps the secondary indexes of
:mod:`repro.store.indexes` consistent under insert/remove, optionally
enforces a schema through the PR-2 compiled-validation pipeline
(reject-on-insert), and answers queries from any front-end through the
planner of :mod:`repro.query.planner`:

>>> from repro.store import memory_collection
>>> people = memory_collection([
...     {"name": "Sue", "age": 35},
...     {"name": "Bob", "age": 28},
... ])
>>> people.find({"name": "Sue"})
[{'name': 'Sue', 'age': 35}]
>>> [value for _, values in people.select("$.name") for value in values]
['Sue', 'Bob']

Documents get dense integer ids in insertion order; ids are never
reused, so removed slots stay tombstoned and every query answers in
id (= insertion) order.  Mutations bump :attr:`version` -- and because
cached plans are tree-independent while candidates are recomputed from
the live indexes per call, a mutated collection can never serve stale
answers.
"""

from __future__ import annotations

import json as _json
import warnings
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import DocumentRejectedError, StoreError
from repro.explain import Explain
from repro.model.tree import JSONTree, JSONValue
from repro.query import planner
from repro.query.compiled import (
    CompiledQuery,
    compile_mongo_find,
    compile_query,
)
from repro.query.optimizer import SemanticContext, check_optimize_mode
from repro.store.engine import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    MemoryEngine,
    RecoveredState,
    StorageEngine,
    decode_snapshot,
)
from repro.store.indexes import (
    DeltaOps,
    DocumentIndexes,
    IndexStats,
    encode_entry_counts,
)
from repro.store.summary import StructuralSummary
from repro.store.update import CompiledUpdate, mutation_delta
from repro.validate.bulk import validate_corpus
from repro.validate.compiled import CompiledValidator, compile_schema_validator

__all__ = ["Collection", "memory_collection"]


def _compile_schema(schema: Any):
    """``(validator, parsed document, canonical text)`` for a schema.

    The parsed document and its canonical rendering feed the semantic
    optimizer: the document translates to the JSL proof premise
    (Theorem 1), the text is the premise's cache fingerprint -- shared
    across collections enforcing an identical schema.
    """
    from repro.schema.parser import parse_schema

    document = parse_schema(schema)
    canonical = _json.dumps(
        _json.loads(schema) if isinstance(schema, str) else schema,
        sort_keys=True,
        separators=(",", ":"),
    )
    return compile_schema_validator(document), document, canonical


def _no_semantic(hint: "dict[str, Any] | None") -> bool:
    """Whether a per-query ``hint`` opts out of semantic optimization."""
    return bool(hint) and bool(hint.get("no_semantic"))


class Collection:
    """A queryable, indexed, optionally schema-enforced document set.

    ``documents`` may mix Python values and prebuilt trees.  ``schema``
    (a JSON Schema as dict/text) or ``validator`` (a prebuilt
    :class:`~repro.validate.compiled.CompiledValidator`) switches on
    ingestion-time validation: invalid documents raise
    :class:`~repro.errors.DocumentRejectedError` and nothing of the
    offending batch is inserted.  ``indexed=False`` keeps the same API
    but skips index maintenance -- every query falls back to the
    compiled full scan.

    Commits route through a :class:`~repro.store.engine.StorageEngine`
    (memory vs. durable WAL + snapshots); acquire collections through
    :class:`repro.store.Database` / :func:`repro.store.memory_collection`
    or pass ``engine=`` explicitly -- engine-less construction is a
    deprecated shim.
    """

    __slots__ = ("_trees", "_alive", "_interned", "_indexes", "_validator",
                 "_extended", "_version", "_dirty", "_engine", "_optimize",
                 "_schema_ast", "_schema_source", "_schema_formula",
                 "_summary")

    def __init__(
        self,
        documents: Iterable["JSONTree | JSONValue"] = (),
        *,
        schema: Any | None = None,
        validator: CompiledValidator | None = None,
        extended: bool = False,
        indexed: bool = True,
        optimize: str = "on",
        engine: StorageEngine | None = None,
    ) -> None:
        if schema is not None and validator is not None:
            raise StoreError("pass either schema or validator, not both")
        if engine is None:
            # The pre-engine construction path: kept working through an
            # implicit MemoryEngine shim, but deprecated -- acquire
            # collections through repro.open_database()/Database,
            # repro.store.memory_collection(), or pass an engine.
            warnings.warn(
                "constructing a Collection without a storage engine is "
                "deprecated; use repro.open_database()/Database."
                "collection(), repro.store.memory_collection(), or pass "
                "engine=MemoryEngine()",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = MemoryEngine()
        self._trees: list[JSONTree | None] = []
        self._alive = 0
        self._interned: dict[str, str] = {}
        self._indexes: DocumentIndexes | None = (
            DocumentIndexes() if indexed else None
        )
        self._schema_ast = None
        self._schema_source: str | None = None
        if schema is not None:
            self._validator, self._schema_ast, self._schema_source = (
                _compile_schema(schema)
            )
        else:
            self._validator = validator
        self._extended = extended
        self._optimize = check_optimize_mode(optimize)
        # Lazy semantic-optimizer state: the schema's JSL translation,
        # or (schemaless) the inferred structural summary.
        self._schema_formula = None
        self._summary: StructuralSummary | None = None
        self._version = 0
        # Updated documents live here as plain values until next read:
        # delta index maintenance keeps the postings exact immediately,
        # while the tree rebuild is paid lazily (and only once) however
        # many updates hit the document in between.
        self._dirty: dict[int, JSONValue] = {}
        self._engine = engine
        recovered = engine.bind(self)
        if recovered is not None:
            self._restore(recovered)
        self.insert_many(documents)

    # ------------------------------------------------------------------
    # Ingestion and removal.
    # ------------------------------------------------------------------

    def _materialise(
        self, documents: Iterable["JSONTree | JSONValue"]
    ) -> list[JSONTree]:
        """Values -> trees through the collection's shared intern table."""
        items = list(documents)
        built = iter(
            JSONTree.from_values(
                [doc for doc in items if not isinstance(doc, JSONTree)],
                extended=self._extended,
                interned=self._interned,
            )
        )
        return [doc if isinstance(doc, JSONTree) else next(built)
                for doc in items]

    def insert_many(
        self,
        documents: Iterable["JSONTree | JSONValue"],
        *,
        ids: Sequence[int] | None = None,
    ) -> list[int]:
        """Ingest a batch atomically; returns the new document ids.

        With schema enforcement on, the whole batch is validated
        through the bulk pipeline (early exit on the first offender)
        *before* anything is inserted, so a rejection leaves the
        collection and its indexes untouched.  On a durable engine the
        WAL append (and sync) happens after validation and before the
        in-memory apply, so a rejection leaves no trace on disk either.

        ``ids`` pre-assigns document ids: strictly increasing, each at
        least the next free id.  Gaps become tombstone slots, exactly
        as a removal would leave them.  A sharded collection uses this
        to give each shard the global ids of the documents it owns, so
        doc-ids stay meaningful across the whole fleet (and survive a
        durable shard's WAL replay unchanged).
        """
        items = list(documents)
        trees = self._materialise(items)
        if ids is not None:
            if len(ids) != len(trees):
                raise StoreError(
                    f"got {len(ids)} explicit ids for {len(trees)} documents"
                )
            floor = len(self._trees)
            for doc_id in ids:
                if doc_id < floor:
                    raise StoreError(
                        f"explicit id {doc_id} is not free (next free id "
                        f"is {floor})"
                    )
                floor = doc_id + 1
            ids = list(ids)
        if self._validator is not None and trees:
            report = validate_corpus(self._validator, trees, early_exit=True)
            if not report.all_valid:
                assert report.first_invalid is not None
                raise DocumentRejectedError(report.first_invalid)
        if ids is None:
            base = len(self._trees)
            ids = list(range(base, base + len(trees)))
        if trees and self._engine.durable:
            self._engine.commit_insert(
                ids,
                [
                    item.to_value() if isinstance(item, JSONTree) else item
                    for item in items
                ],
            )
        summary = self._summary
        for doc_id, tree in zip(ids, trees):
            if doc_id > len(self._trees):
                self._trees.extend([None] * (doc_id - len(self._trees)))
            self._trees.append(tree)
            self._alive += 1
            if self._indexes is not None:
                self._indexes.add(doc_id, tree)
            if summary is not None:
                summary.observe_tree(tree)
        if trees:
            self._version += 1
            if self._engine.durable:
                self._engine.commit_applied()
        return ids

    def insert(self, document: "JSONTree | JSONValue") -> int:
        """Ingest one document (validated when the collection has a
        schema); returns its id."""
        return self.insert_many([document])[0]

    def remove(self, doc_id: int) -> JSONTree:
        """Remove a document by id, unwinding its index postings."""
        tree = self.get(doc_id)
        if self._engine.durable:
            self._engine.commit_remove(doc_id)
        self._trees[doc_id] = None
        self._alive -= 1
        if self._indexes is not None:
            self._indexes.remove(doc_id, tree)
        self._version += 1
        if self._engine.durable:
            self._engine.commit_applied()
        return tree

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._alive

    def __contains__(self, doc_id: int) -> bool:
        return 0 <= doc_id < len(self._trees) and self._trees[doc_id] is not None

    def get(self, doc_id: int) -> JSONTree:
        if not isinstance(doc_id, int) or not 0 <= doc_id < len(self._trees):
            raise StoreError(f"unknown document id {doc_id}")
        tree = self._trees[doc_id]
        if tree is None:
            raise StoreError(f"document {doc_id} was removed")
        if doc_id in self._dirty:
            return self._rebuild(doc_id)
        return tree

    def doc_ids(self) -> list[int]:
        return [i for i, tree in enumerate(self._trees) if tree is not None]

    def documents(self) -> Iterator[tuple[int, JSONTree]]:
        """Live ``(doc_id, tree)`` pairs in id (= insertion) order.

        Documents with a pending update are rebuilt (once) on the way
        out, so readers always see post-update trees.
        """
        dirty = self._dirty
        for doc_id, tree in enumerate(self._trees):
            if tree is not None:
                if dirty and doc_id in dirty:
                    tree = self._rebuild(doc_id)
                yield doc_id, tree

    @property
    def trees(self) -> list[JSONTree]:
        """The live trees in id order (the PR-1 batch-API view)."""
        return [tree for _, tree in self.documents()]

    def flush_pending(self) -> None:
        """Materialise every pending updated value back into a tree.

        After this, the internal slot list is the complete truth --
        the precondition for pinning a snapshot view of it.
        """
        for doc_id in list(self._dirty):
            self._rebuild(doc_id)

    def all_slots(self) -> "list[JSONTree | None]":
        """The raw id->tree slot list (tombstones as ``None``).

        Read-only by convention; :class:`~repro.store.snapshot.
        CollectionSnapshot` shallow-copies it to pin a view.  Callers
        must :meth:`flush_pending` first if they need post-update trees.
        """
        return self._trees

    def snapshot_view(self):
        """Pin an immutable, queryable view at the current generation.

        Returns a :class:`~repro.store.snapshot.CollectionSnapshot`:
        structural sharing makes the pin O(slots) pointer copies, reads
        through it are isolated from every later write, and it stays
        index-accelerated while the collection remains at this
        generation (full-scan fallback once it moves on).  This is the
        read side of the server's multi-reader/single-writer model.
        """
        from repro.store.snapshot import CollectionSnapshot

        return CollectionSnapshot(self)

    @property
    def indexes(self) -> DocumentIndexes | None:
        return self._indexes

    @property
    def engine(self) -> StorageEngine:
        """The storage engine commits route through."""
        return self._engine

    @property
    def health(self):
        """The engine's write availability (see ``EngineHealth``).

        ``health.degraded`` means a storage failure put the engine in
        read-only mode: reads and queries keep answering from memory,
        writes raise :class:`~repro.errors.CollectionReadOnlyError`.
        """
        return self._engine.health

    @property
    def version(self) -> int:
        """Bumped on every mutation (insert batch / remove)."""
        return self._version

    @property
    def generation(self) -> int:
        """The mutation generation (alias of :attr:`version`).

        The serving tier's snapshot currency check: a
        :class:`~repro.store.snapshot.CollectionSnapshot` pins this
        value and keeps index-accelerated routing only while the
        collection is still at the pinned generation.
        """
        return self._version

    @property
    def optimize(self) -> str:
        """The semantic-optimizer knob (``on``/``off``/``proof-only``)."""
        return self._optimize

    @property
    def semantic_context(self) -> SemanticContext | None:
        """What the semantic optimizer may assume about every document.

        ``None`` -- and hence no optimization -- when the knob is
        ``"off"``, when the collection holds ``extended`` values (the
        solver's model class is the paper's 4-kind universe), or when
        no sound premise exists.  Schema-enforced collections return
        the schema's JSL translation (Theorem 1), fingerprinted by the
        canonical schema text so identical schemas share cached
        verdicts; schemaless collections return the inferred
        widen-only structural summary (:mod:`repro.store.summary`),
        fingerprinted by its revision.
        """
        if self._optimize == "off" or self._extended:
            return None
        if self._schema_ast is not None:
            formula = self._schema_formula
            if formula is None:
                from repro.errors import SchemaError
                from repro.schema.to_jsl import schema_to_jsl

                try:
                    formula = schema_to_jsl(self._schema_ast)
                except SchemaError:
                    formula = False  # untranslatable: remember, skip
                self._schema_formula = formula
            if formula is False:
                return None
            return SemanticContext(
                mode=self._optimize,
                source="schema",
                fingerprint=("schema", self._schema_source),
                formula=formula,
            )
        if self._validator is not None:
            # A prebuilt validator carries no schema AST to translate;
            # the summary's invariant (every live doc was observed)
            # would still hold, but enforcement may rely on exotic
            # validator features, so stay conservative.
            return None
        summary = self._summary
        if summary is None:
            summary = StructuralSummary()
            summary.observe_all(tree for _, tree in self.documents())
            self._summary = summary
        if summary.disabled:
            return None
        return SemanticContext(
            mode=self._optimize,
            source="summary",
            fingerprint=summary.fingerprint,
            formula=summary.formula(),
        )

    @property
    def schema_enforced(self) -> bool:
        return self._validator is not None

    @property
    def validator(self) -> CompiledValidator | None:
        """The compiled ingestion validator (``None`` when schemaless)."""
        return self._validator

    @property
    def extended(self) -> bool:
        """Whether ingestion coerces ``true``/``false``/``null``."""
        return self._extended

    @property
    def pending_updates(self) -> int:
        """Updated documents whose tree rebuild is still pending."""
        return len(self._dirty)

    def index_stats(self) -> IndexStats | None:
        return self._indexes.stats() if self._indexes is not None else None

    def interned_strings(self) -> int:
        """Distinct keys/atoms in the shared intern table."""
        return len(self._interned)

    # ------------------------------------------------------------------
    # Updating (the write path; Mongo syntax lives in repro.mongo.update).
    # ------------------------------------------------------------------

    def _rebuild(self, doc_id: int) -> JSONTree:
        """Materialise a pending updated value back into a tree."""
        value = self._dirty.pop(doc_id)
        tree = JSONTree.from_values(
            [value], extended=self._extended, interned=self._interned
        )[0]
        self._trees[doc_id] = tree
        return tree

    def _peek_value(self, doc_id: int) -> JSONValue:
        """The document as a plain value, without forcing a rebuild.

        Returns the live pending value for dirty documents (callers
        must treat it as read-only -- update application spine-copies,
        never mutates in place) and a fresh materialisation otherwise.
        """
        pending = self._dirty.get(doc_id)
        if pending is not None:
            return pending
        return self.get(doc_id).to_value()

    def apply_update(
        self,
        doc_ids: Iterable[int],
        compiled: CompiledUpdate,
        *,
        maintenance: str = "delta",
        values: "dict[int, JSONValue] | None" = None,
    ) -> tuple[list[int], DeltaOps]:
        """Apply a compiled update program to the given documents.

        The engine under ``update_one``/``update_many``: documents are
        staged first (value application, index-entry deltas, model
        checks), validated against the collection schema if one is
        enforced -- a rejection raises
        :class:`~repro.errors.DocumentRejectedError` and leaves *every*
        document and index untouched -- and only then committed.

        ``maintenance`` selects the index strategy: ``"delta"`` (the
        default) retires/re-adds only the postings whose entry refcount
        crosses zero and defers the tree rebuild to the next read;
        ``"rebuild"`` drops and re-inserts the document's full posting
        set eagerly (the reference strategy the benchmark and the
        differential tests compare against).

        ``values`` optionally supplies already-materialised current
        values per document id (target selection just computed them),
        so no document is walked to a value twice in one write call.

        Returns the modified document ids (documents whose value
        actually changed) and the aggregated index
        :class:`~repro.store.indexes.DeltaOps`.
        """
        if maintenance not in ("delta", "rebuild"):
            raise StoreError(
                f"unknown maintenance strategy {maintenance!r} "
                "(expected 'delta' or 'rebuild')"
            )
        delta_mode = maintenance == "delta"
        staged: list[tuple[int, JSONValue, dict, JSONTree | None]] = []
        for doc_id in doc_ids:
            old_value = (
                values.get(doc_id) if values is not None else None
            )
            if old_value is None:
                old_value = self._peek_value(doc_id)
            new_value, mutations = compiled.apply(old_value)
            if not mutations:
                continue
            # The delta doubles as model validation of the replacement
            # subtrees (floats, bad keys), so staging fails before any
            # commit; in rebuild mode the eager tree build does both.
            if delta_mode:
                delta = mutation_delta(mutations, extended=self._extended)
                new_tree = None
            else:
                delta = {}
                new_tree = JSONTree.from_values(
                    [new_value],
                    extended=self._extended,
                    interned=self._interned,
                )[0]
            staged.append((doc_id, new_value, delta, new_tree))
        if self._validator is not None:
            for doc_id, new_value, _, _ in staged:
                if not self._validator.validate_value(
                    new_value, extended=self._extended
                ):
                    raise DocumentRejectedError(
                        doc_id,
                        f"update rejected: document {doc_id} would no "
                        "longer validate against the collection schema",
                    )
        if staged and self._engine.durable:
            # The WAL frame lands between validate and the in-memory
            # apply: post-images only, already schema-approved.
            self._engine.commit_update(
                [(doc_id, new_value) for doc_id, new_value, _, _ in staged]
            )
        ops = DeltaOps()
        summary = self._summary
        if summary is not None:
            for _, new_value, _, _ in staged:
                summary.observe_value(new_value)
        for doc_id, new_value, delta, new_tree in staged:
            if delta_mode:
                if self._indexes is not None:
                    self._indexes.apply_entry_delta(doc_id, delta, into=ops)
                self._dirty[doc_id] = new_value
            else:
                old_tree = self.get(doc_id)  # flushes any pending value
                if self._indexes is not None:
                    self._indexes.remove(doc_id, old_tree)
                    self._indexes.add(doc_id, new_tree)
                    counts = self._indexes.entry_counts(doc_id)
                    ops.merge(
                        DeltaOps(
                            entries_added=len(counts),
                            entries_removed=len(counts),
                            postings={"full-reinsert": 2 * len(counts)},
                        )
                    )
                self._trees[doc_id] = new_tree
        if staged:
            self._version += 1
            if self._engine.durable:
                self._engine.commit_applied()
        return [doc_id for doc_id, _, _, _ in staged], ops

    def update_one(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ):
        """MongoDB's ``db.collection.updateOne(filter, update)``."""
        from repro.mongo.update import update_one

        return update_one(self, filter_doc, update_doc, upsert=upsert)

    def update_many(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
        maintenance: str = "delta",
    ):
        """MongoDB's ``db.collection.updateMany(filter, update)``."""
        from repro.mongo.update import update_many

        return update_many(
            self,
            filter_doc,
            update_doc,
            upsert=upsert,
            maintenance=maintenance,
        )

    def replace_one(
        self,
        filter_doc: dict[str, Any],
        replacement: dict[str, Any],
        *,
        upsert: bool = False,
    ):
        """MongoDB's ``db.collection.replaceOne(filter, replacement)``."""
        from repro.mongo.update import replace_one

        return replace_one(self, filter_doc, replacement, upsert=upsert)

    def explain_update(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        first_only: bool = False,
        hint: dict[str, Any] | None = None,
    ):
        """Dry-run report for :meth:`update_many` (or, with
        ``first_only``, :meth:`update_one`): pruned-vs-scanned targets
        and the index postings the delta would touch -- an
        :class:`~repro.explain.Explain` of ``kind="update"``.  Nothing
        is modified."""
        from repro.mongo.update import explain_update

        return explain_update(
            self,
            filter_doc,
            update_doc,
            first_only=first_only,
            no_semantic=_no_semantic(hint),
        )

    # ------------------------------------------------------------------
    # Querying (all routes go through the planner).
    # ------------------------------------------------------------------

    def find(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[JSONValue]:
        """MongoDB's ``db.collection.find(filter, projection)``.

        ``hint={"no_semantic": True}`` skips the semantic optimizer for
        this one query (every read method accepts it).
        """
        return planner.find_documents(
            self,
            compile_mongo_find(filter_doc, projection),
            no_semantic=_no_semantic(hint),
        )

    def find_trees(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[JSONTree]:
        return planner.find_trees(
            self, compile_mongo_find(filter_doc), no_semantic=_no_semantic(hint)
        )

    def count(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> int:
        return planner.count_matches(
            self, compile_mongo_find(filter_doc), no_semantic=_no_semantic(hint)
        )

    def match_ids(
        self,
        query: "CompiledQuery | str",
        dialect: str = "jnl",
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[int]:
        """Ids of documents matched by a compiled or textual query."""
        return planner.match_ids(
            self,
            self._as_query(query, dialect),
            no_semantic=_no_semantic(hint),
        )

    def select(
        self, query: "CompiledQuery | str", dialect: str = "jsonpath"
    ) -> list[tuple[int, list[JSONValue]]]:
        """Per-document selected values (one row per live document)."""
        return planner.select_values(self, self._as_query(query, dialect))

    def explain(
        self,
        query: "CompiledQuery | str | dict",
        dialect: str = "jsonpath",
        *,
        hint: dict[str, Any] | None = None,
    ) -> Explain:
        """Pruning report for a query (dicts compile as Mongo filters)."""
        if isinstance(query, dict):
            return planner.explain(
                self, compile_mongo_find(query), no_semantic=_no_semantic(hint)
            )
        return planner.explain(
            self,
            self._as_query(query, dialect),
            no_semantic=_no_semantic(hint),
        )

    def aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ) -> list[JSONValue]:
        """MongoDB's ``db.collection.aggregate(pipeline)``.

        The pipeline compiles once (cached process-wide); its leading
        ``$match`` run lowers into the logical-plan IR so the planner
        prunes candidates via the secondary indexes, and the downstream
        stages stream over the survivors.
        """
        # Lazy import: the Mongo front-end builds on the store.
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).execute(
            self, no_semantic=_no_semantic(hint)
        )

    def explain_aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ):
        """Stage-by-stage report (index-pruned vs streamed) for
        :meth:`aggregate` -- an :class:`~repro.explain.Explain` of
        ``kind="aggregate"``."""
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).explain(
            self, no_semantic=_no_semantic(hint)
        )

    @staticmethod
    def _as_query(query: "CompiledQuery | str", dialect: str) -> CompiledQuery:
        if isinstance(query, CompiledQuery):
            return query
        return compile_query(query, dialect)

    def __repr__(self) -> str:
        enforced = ", schema-enforced" if self.schema_enforced else ""
        indexed = "indexed" if self._indexes is not None else "unindexed"
        return (
            f"Collection({self._alive} documents, {indexed}{enforced}, "
            f"v{self._version})"
        )

    # ------------------------------------------------------------------
    # Persistence (snapshots and the engine's maintenance surface).
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The collection as a versioned, JSON-able snapshot payload.

        Serialises every live document (pending updates flushed) *and*
        the counted index-entry refcounts, preserving document ids and
        tombstones -- the durable engine's checkpoint format, and the
        natural wire form of the paper's interned-tree model.  The
        payload carries ``format`` and ``version`` fields;
        :meth:`from_snapshot` (and the durable loader) refuse payloads
        they do not understand instead of misreading them.
        """
        docs = [[doc_id, tree.to_value()] for doc_id, tree in self.documents()]
        entries = None
        if self._indexes is not None:
            entries = {
                str(doc_id): encode_entry_counts(
                    self._indexes.entry_counts(doc_id)
                )
                for doc_id, _ in docs
            }
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "extended": self._extended,
            "next_id": len(self._trees),
            "ops": self._version,
            "docs": docs,
            "index_entries": entries,
        }

    @classmethod
    def from_snapshot(
        cls,
        data: dict,
        *,
        engine: StorageEngine | None = None,
        validator: CompiledValidator | None = None,
        indexed: bool = True,
    ) -> "Collection":
        """Restore a collection from a :meth:`snapshot` payload.

        Validates the payload's format tag and version first (raising
        :class:`~repro.errors.StorageFormatError` on anything this
        build does not read), then materialises documents through a
        fresh intern table and loads index postings straight from the
        persisted refcounts.  ``engine`` must be fresh (defaults to a
        new :class:`~repro.store.engine.MemoryEngine`).
        """
        snapshot = decode_snapshot(data)
        entries = {}
        if snapshot.encoded_entries is not None:
            from repro.store.indexes import decode_entry_counts

            entries = {
                doc_id: decode_entry_counts(encoded)
                for doc_id, encoded in snapshot.encoded_entries.items()
            }
        collection = cls(
            engine=engine if engine is not None else MemoryEngine(),
            validator=validator,
            extended=snapshot.extended,
            indexed=indexed,
        )
        collection._restore(
            RecoveredState(
                next_id=snapshot.next_id,
                version=snapshot.ops,
                extended=snapshot.extended,
                docs=list(snapshot.docs),
                entries=entries,
            )
        )
        return collection

    def _restore(self, state: RecoveredState) -> None:
        """Load recovered state (engine bind / snapshot restore).

        Only valid on an empty collection; documents keep their ids
        (tombstoned slots stay ``None``), and documents whose counted
        index entries survived recovery load their postings without a
        tree walk.
        """
        if self._trees or self._dirty:
            raise StoreError(
                "cannot restore recovered state into a non-empty collection"
            )
        if state.extended != self._extended:
            raise StoreError(
                f"recovered state was written with extended="
                f"{state.extended}, collection opened with "
                f"extended={self._extended}"
            )
        values = [value for _, value in state.docs]
        trees = JSONTree.from_values(
            values, extended=self._extended, interned=self._interned
        )
        self._trees = [None] * state.next_id
        for (doc_id, _), tree in zip(state.docs, trees):
            self._trees[doc_id] = tree
            self._alive += 1
            if self._indexes is not None:
                counts = state.entries.get(doc_id)
                if counts:
                    self._indexes.load_counts(doc_id, counts)
                else:
                    self._indexes.add(doc_id, tree)
        self._version = state.version

    def compact(self):
        """Fold the engine's log into a fresh snapshot (checkpoint).

        Returns the engine's report (``None`` on a memory engine,
        a :class:`~repro.store.durable.CompactionReport` on a durable
        one).
        """
        return self._engine.checkpoint()

    def close(self) -> None:
        """Release the engine's resources; the collection stays
        readable (and writable, on a memory engine)."""
        self._engine.close()

    # ------------------------------------------------------------------
    # Serialisation helpers (the CLI's JSON-lines corpus format).
    # ------------------------------------------------------------------

    @classmethod
    def from_json_lines(
        cls, text: str, *, strict: bool = True, **kwargs: Any
    ) -> "Collection":
        """Build a collection from JSON-lines text (one doc per line).

        ``strict`` (the default) parses lines through
        :meth:`JSONTree.value_from_json` -- duplicate keys and floats
        rejected, like every other ingestion path; ``strict=False``
        falls back to plain ``json.loads``.  Either way the documents
        are materialised through the collection's shared intern table.
        """
        loads = JSONTree.value_from_json if strict else _json.loads
        documents = [
            loads(line)
            for line in text.splitlines()
            if line.strip()
        ]
        kwargs.setdefault("engine", MemoryEngine())
        return cls(documents, **kwargs)


def memory_collection(
    documents: Iterable["JSONTree | JSONValue"] = (), **kwargs: Any
) -> Collection:
    """Deprecated spelling of :func:`repro.api.collection`.

    Kept as a working shim so existing scripts survive the API
    consolidation; new code acquires volatile collections through
    ``repro.api.collection`` and durable ones through
    ``repro.api.connect``.
    """
    warnings.warn(
        "repro.store.memory_collection is deprecated; use "
        "repro.api.collection() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    kwargs.setdefault("engine", MemoryEngine())
    return Collection(documents, **kwargs)
