"""Immutable collection snapshots: the multi-reader half of serving.

A :class:`CollectionSnapshot` is a frozen read view over a
:class:`~repro.store.collection.Collection`, pinned at a **generation**
(the collection's mutation counter).  The paper's interned-tree data
model makes this nearly free: trees are immutable and structurally
shared, so pinning a snapshot is one shallow copy of the id->tree slot
list -- no document is copied, ever.  Writes that land after the pin
replace or append *slots* in the source collection's own list; the
snapshot keeps the trees it pinned.

Query routing is generation-aware:

* while the source collection is still at the snapshot's generation
  (the overwhelmingly common case under a single-writer server), reads
  go through the live secondary indexes -- full planner pruning;
* once the source has moved on, the snapshot answers by compiled full
  scan over its pinned trees.  The indexes reflect newer state and can
  no longer soundly prune *this* view, but results stay exactly the
  snapshot's -- isolation is never traded for speed.

Snapshots implement the read half of the uniform collection protocol
(``find``/``count``/``aggregate``/``select``/``explain``/``get``/
``documents``), so the planner and every compiled front-end run on
them unchanged.  They hold no engine and accept no writes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import StoreError
from repro.model.tree import JSONTree, JSONValue
from repro.query import planner
from repro.store.collection import _no_semantic
from repro.query.compiled import (
    CompiledQuery,
    compile_mongo_find,
    compile_query,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store.collection import Collection
    from repro.store.indexes import DocumentIndexes

__all__ = ["CollectionSnapshot"]


class CollectionSnapshot:
    """A frozen, queryable view of one collection at one generation.

    Acquire through :meth:`repro.store.Collection.snapshot_view`.  The
    view is internally consistent forever: every query over it answers
    from exactly the documents that were live at the pinned generation,
    regardless of how far the source collection has moved on since.
    """

    __slots__ = ("_source", "_generation", "_trees", "_alive", "_extended",
                 "_semantic")

    def __init__(self, source: "Collection") -> None:
        source.flush_pending()
        self._source = source
        self._generation = source.generation
        # Shallow slot copy: tree objects are immutable and shared with
        # the source; later writes touch the source's list, not ours.
        self._trees: list[JSONTree | None] = list(source.all_slots())
        self._alive = len(source)
        self._extended = source.extended
        # Captured eagerly: the premise must be built while the pinned
        # documents are exactly the live ones.  A widen-only summary
        # only ever weakens later, so this context stays sound for the
        # pinned view however far the source moves on.
        self._semantic = getattr(source, "semantic_context", None)

    # ------------------------------------------------------------------
    # Pin metadata.
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The source generation this view was pinned at."""
        return self._generation

    @property
    def version(self) -> int:
        """Alias of :attr:`generation` (the collection protocol name)."""
        return self._generation

    @property
    def current(self) -> bool:
        """Whether the source collection is still at this generation."""
        return self._source.generation == self._generation

    @property
    def extended(self) -> bool:
        return self._extended

    @property
    def semantic_context(self):
        """The source's semantic premise, captured at pin time.

        Remains valid when the source moves on: widening only weakens
        the summary, and a schema premise never changes, so every
        pinned document still satisfies the captured formula.
        """
        return self._semantic

    @property
    def indexes(self) -> "DocumentIndexes | None":
        """The live indexes while current; ``None`` once stale.

        The planner protocol's pruning seam: a current snapshot prunes
        through the source's secondary indexes (they describe exactly
        the pinned state), a stale one reports "unindexed" and every
        query falls back to the sound compiled full scan over the
        pinned trees.
        """
        if self.current:
            return self._source.indexes
        return None

    # ------------------------------------------------------------------
    # Documents (the read half of the collection protocol).
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._alive

    def __contains__(self, doc_id: int) -> bool:
        return (
            isinstance(doc_id, int)
            and 0 <= doc_id < len(self._trees)
            and self._trees[doc_id] is not None
        )

    def get(self, doc_id: int) -> JSONTree:
        if not isinstance(doc_id, int) or not 0 <= doc_id < len(self._trees):
            raise StoreError(f"unknown document id {doc_id}")
        tree = self._trees[doc_id]
        if tree is None:
            raise StoreError(f"document {doc_id} was removed")
        return tree

    def doc_ids(self) -> list[int]:
        return [i for i, tree in enumerate(self._trees) if tree is not None]

    def documents(self) -> Iterator[tuple[int, JSONTree]]:
        for doc_id, tree in enumerate(self._trees):
            if tree is not None:
                yield doc_id, tree

    @property
    def trees(self) -> list[JSONTree]:
        return [tree for _, tree in self.documents()]

    # ------------------------------------------------------------------
    # Queries (identical routing to Collection, minus every write).
    # ------------------------------------------------------------------

    def find(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[JSONValue]:
        return planner.find_documents(
            self,
            compile_mongo_find(filter_doc, projection),
            no_semantic=_no_semantic(hint),
        )

    def find_trees(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[JSONTree]:
        return planner.find_trees(
            self, compile_mongo_find(filter_doc), no_semantic=_no_semantic(hint)
        )

    def count(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> int:
        return planner.count_matches(
            self, compile_mongo_find(filter_doc), no_semantic=_no_semantic(hint)
        )

    def match_ids(
        self,
        query: "CompiledQuery | str",
        dialect: str = "jnl",
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[int]:
        return planner.match_ids(
            self,
            self._as_query(query, dialect),
            no_semantic=_no_semantic(hint),
        )

    def select(
        self, query: "CompiledQuery | str", dialect: str = "jsonpath"
    ) -> list[tuple[int, list[JSONValue]]]:
        return planner.select_values(self, self._as_query(query, dialect))

    def explain(
        self,
        query: "CompiledQuery | str | dict",
        dialect: str = "jsonpath",
        *,
        hint: dict[str, Any] | None = None,
    ):
        if isinstance(query, dict):
            return planner.explain(
                self, compile_mongo_find(query), no_semantic=_no_semantic(hint)
            )
        return planner.explain(
            self,
            self._as_query(query, dialect),
            no_semantic=_no_semantic(hint),
        )

    def aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ) -> list[JSONValue]:
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).execute(
            self, no_semantic=_no_semantic(hint)
        )

    def explain_aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ):
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).explain(
            self, no_semantic=_no_semantic(hint)
        )

    @staticmethod
    def _as_query(query: "CompiledQuery | str", dialect: str) -> CompiledQuery:
        if isinstance(query, CompiledQuery):
            return query
        return compile_query(query, dialect)

    def __repr__(self) -> str:
        state = "current" if self.current else "stale"
        return (
            f"CollectionSnapshot({self._alive} documents, "
            f"generation {self._generation}, {state})"
        )
