"""Secondary indexes over a collection of JSON trees.

The planner's pruning questions (:mod:`repro.query.ir`) are all phrased
over *stripped key paths* -- the object keys along a root-to-node walk
with array positions dropped -- so one walk per document feeds five
posting tables:

* ``paths``    -- stripped path        -> documents with a node there;
* ``eq``       -- stripped path        -> leaf value -> documents;
* ``kinds``    -- stripped path        -> node kind  -> documents;
* ``keys``     -- object key           -> documents using it anywhere
  (the key-presence index over the automata alphabet, what unanchored
  axes like ``$..author`` prune with);
* ``tails``    -- innermost key        -> leaf value -> documents
  (what floating equality tests like ``[?(@.age == 5)]`` prune with);
* ``values``   -- leaf value           -> documents containing it
  (the anywhere-equality fallback for wildcard/descendant contexts).

Maintenance is incremental: :meth:`DocumentIndexes.add` unions a
document's entry set into the postings, :meth:`DocumentIndexes.remove`
re-derives the same entry set from the stored tree and discards the
document id, deleting postings that empty out -- so after any
insert/remove sequence the tables equal a from-scratch rebuild over the
live documents (pinned by ``tests/test_store.py``).

Postings are sets of document ids.  All lookups return live sets;
callers (the planner) must treat them as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.model.tree import JSONTree, Kind
from repro.query.ir import KeyPath

__all__ = ["IndexEntries", "IndexStats", "DocumentIndexes", "index_entries"]

_EMPTY: frozenset[int] = frozenset()


@dataclass(frozen=True)
class IndexEntries:
    """The index-entry set one document contributes (deduplicated)."""

    paths: frozenset[KeyPath]
    leaves: frozenset[tuple[KeyPath, str | int]]
    kinds: frozenset[tuple[KeyPath, Kind]]
    keys: frozenset[str]
    tails: frozenset[tuple[str, str | int]]


def index_entries(tree: JSONTree) -> IndexEntries:
    """One top-down walk computing every posting the tree belongs in."""
    node_kinds = tree.node_kinds()
    labels = tree.node_labels()
    parents = tree.node_parents()
    values = tree.node_values()
    # Stripped path per node; parents precede children in id order.
    path_of: list[KeyPath] = [()] * len(node_kinds)
    paths: set[KeyPath] = set()
    leaves: set[tuple[KeyPath, str | int]] = set()
    kinds: set[tuple[KeyPath, Kind]] = set()
    keys: set[str] = set()
    tails: set[tuple[str, str | int]] = set()
    for node, kind in enumerate(node_kinds):
        if node:
            label = labels[node]
            path = path_of[parents[node]]
            if isinstance(label, str):
                path = path + (label,)
                keys.add(label)
            path_of[node] = path
        else:
            path = ()
        paths.add(path)
        kinds.add((path, kind))
        value = values[node]
        if value is not None:
            leaves.add((path, value))
            if path:
                tails.add((path[-1], value))
    return IndexEntries(
        frozenset(paths),
        frozenset(leaves),
        frozenset(kinds),
        frozenset(keys),
        frozenset(tails),
    )


@dataclass
class IndexStats:
    """Size counters for introspection, tests and benchmarks."""

    documents: int
    paths: int
    eq_entries: int
    kind_entries: int
    keys: int
    tail_entries: int
    values: int


class DocumentIndexes:
    """Incrementally maintained postings over a document collection."""

    __slots__ = ("_paths", "_eq", "_kinds", "_keys", "_tails", "_values",
                 "_documents")

    def __init__(self) -> None:
        self._paths: dict[KeyPath, set[int]] = {}
        self._eq: dict[KeyPath, dict[str | int, set[int]]] = {}
        self._kinds: dict[KeyPath, dict[Kind, set[int]]] = {}
        self._keys: dict[str, set[int]] = {}
        self._tails: dict[str, dict[str | int, set[int]]] = {}
        self._values: dict[str | int, set[int]] = {}
        self._documents = 0

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def add(self, doc_id: int, tree: JSONTree) -> None:
        entries = index_entries(tree)
        for path in entries.paths:
            self._paths.setdefault(path, set()).add(doc_id)
        for path, value in entries.leaves:
            self._eq.setdefault(path, {}).setdefault(value, set()).add(doc_id)
            self._values.setdefault(value, set()).add(doc_id)
        for path, kind in entries.kinds:
            self._kinds.setdefault(path, {}).setdefault(kind, set()).add(doc_id)
        for key in entries.keys:
            self._keys.setdefault(key, set()).add(doc_id)
        for key, value in entries.tails:
            self._tails.setdefault(key, {}).setdefault(value, set()).add(doc_id)
        self._documents += 1

    def remove(self, doc_id: int, tree: JSONTree) -> None:
        """Discard a document's postings (``tree`` as it was indexed)."""
        entries = index_entries(tree)
        for path in entries.paths:
            self._discard(self._paths, path, doc_id)
        for path, value in entries.leaves:
            self._discard_nested(self._eq, path, value, doc_id)
        for value in {value for _, value in entries.leaves}:
            self._discard(self._values, value, doc_id)
        for path, kind in entries.kinds:
            self._discard_nested(self._kinds, path, kind, doc_id)
        for key in entries.keys:
            self._discard(self._keys, key, doc_id)
        for key, value in entries.tails:
            self._discard_nested(self._tails, key, value, doc_id)
        self._documents -= 1

    @staticmethod
    def _discard(table: dict, key, doc_id: int) -> None:
        postings = table.get(key)
        if postings is not None:
            postings.discard(doc_id)
            if not postings:
                del table[key]

    @staticmethod
    def _discard_nested(table: dict, outer, inner, doc_id: int) -> None:
        nested = table.get(outer)
        if nested is None:
            return
        postings = nested.get(inner)
        if postings is not None:
            postings.discard(doc_id)
            if not postings:
                del nested[inner]
        if not nested:
            del table[outer]

    # ------------------------------------------------------------------
    # Lookups (read-only sets; callers must not mutate).
    # ------------------------------------------------------------------

    def docs_with_path(self, path: KeyPath) -> Iterable[int]:
        return self._paths.get(path, _EMPTY)

    def docs_with_value(self, path: KeyPath, value: str | int) -> Iterable[int]:
        return self._eq.get(path, {}).get(value, _EMPTY)

    def docs_with_kind(self, path: KeyPath, kind: Kind) -> Iterable[int]:
        return self._kinds.get(path, {}).get(kind, _EMPTY)

    def docs_with_key(self, key: str) -> Iterable[int]:
        return self._keys.get(key, _EMPTY)

    def docs_with_tail_value(self, key: str, value: str | int) -> Iterable[int]:
        return self._tails.get(key, {}).get(value, _EMPTY)

    def docs_with_any_value(self, value: str | int) -> Iterable[int]:
        return self._values.get(value, _EMPTY)

    def docs_in_range(
        self, path: KeyPath, low: int | None, high: int | None
    ) -> set[int]:
        """Documents with a number leaf at ``path`` in ``(low, high)``.

        Bounds are exclusive (the NodeTest ``Min``/``Max`` convention);
        ``None`` means unbounded.  Cost is linear in the number of
        distinct values recorded at the path.
        """
        result: set[int] = set()
        for value, postings in self._eq.get(path, {}).items():
            if not isinstance(value, int):
                continue
            if low is not None and value <= low:
                continue
            if high is not None and value >= high:
                continue
            result |= postings
        return result

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def stats(self) -> IndexStats:
        return IndexStats(
            documents=self._documents,
            paths=len(self._paths),
            eq_entries=sum(len(values) for values in self._eq.values()),
            kind_entries=sum(len(kinds) for kinds in self._kinds.values()),
            keys=len(self._keys),
            tail_entries=sum(len(values) for values in self._tails.values()),
            values=len(self._values),
        )

    def snapshot(self) -> dict:
        """A plain-dict copy of every table (test/debug equality aid)."""
        return {
            "paths": {path: set(docs) for path, docs in self._paths.items()},
            "eq": {
                path: {value: set(docs) for value, docs in values.items()}
                for path, values in self._eq.items()
            },
            "kinds": {
                path: {kind: set(docs) for kind, docs in kinds.items()}
                for path, kinds in self._kinds.items()
            },
            "keys": {key: set(docs) for key, docs in self._keys.items()},
            "tails": {
                key: {value: set(docs) for value, docs in values.items()}
                for key, values in self._tails.items()
            },
            "values": {
                value: set(docs) for value, docs in self._values.items()
            },
        }
