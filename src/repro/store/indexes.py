"""Secondary indexes over a collection of JSON trees.

The planner's pruning questions (:mod:`repro.query.ir`) are all phrased
over *stripped key paths* -- the object keys along a root-to-node walk
with array positions dropped -- so one walk per document feeds six
posting tables:

* ``paths``    -- stripped path        -> documents with a node there;
* ``eq``       -- stripped path        -> leaf value -> documents;
* ``kinds``    -- stripped path        -> node kind  -> documents;
* ``keys``     -- object key           -> documents using it anywhere
  (the key-presence index over the automata alphabet, what unanchored
  axes like ``$..author`` prune with);
* ``tails``    -- innermost key        -> leaf value -> documents
  (what floating equality tests like ``[?(@.age == 5)]`` prune with);
* ``values``   -- leaf value           -> documents containing it
  (the anywhere-equality fallback for wildcard/descendant contexts).

Maintenance is incremental and **counted**: every document's entry
multiset (how many nodes contribute each index entry) is retained in
:attr:`DocumentIndexes._doc_entries`, and a document belongs to a
posting exactly while its count for that entry is positive.  Counting
is what makes *delta* maintenance sound for in-place updates
(:mod:`repro.store.update`): replacing one subtree only touches the
entries whose counts cross zero, even when the same stripped path or
leaf value is also contributed by siblings outside the mutated subtree.
:meth:`DocumentIndexes.add` unions a document's entries into the
postings, :meth:`DocumentIndexes.remove` discards the stored entry set,
and :meth:`DocumentIndexes.apply_entry_delta` retires/re-adds only the
entries a mutation changed -- after any insert/update/remove sequence
the tables equal a from-scratch rebuild over the live documents (pinned
by ``tests/test_store.py`` and the ``tests/test_update.py`` oracle).

Postings are sets of document ids.  All lookups return live sets;
callers (the planner) must treat them as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import UnsupportedValueError
from repro.model.tree import JSONTree, Kind
from repro.query.ir import KeyPath

__all__ = [
    "IndexEntries",
    "IndexStats",
    "DeltaOps",
    "DocumentIndexes",
    "index_entries",
    "tree_entry_counts",
    "value_entry_counts",
    "leaf_entry_delta",
    "encode_entry_counts",
    "decode_entry_counts",
]

_EMPTY: frozenset[int] = frozenset()

# A counted index entry: a tagged tuple naming the posting table it
# lives in ("path" | "eq" | "kind" | "key" | "tail" | "val") plus the
# table's key material.  Tags keep the six entry spaces disjoint.
Entry = tuple


@dataclass(frozen=True)
class IndexEntries:
    """The index-entry set one document contributes (deduplicated)."""

    paths: frozenset[KeyPath]
    leaves: frozenset[tuple[KeyPath, str | int]]
    kinds: frozenset[tuple[KeyPath, Kind]]
    keys: frozenset[str]
    tails: frozenset[tuple[str, str | int]]


def index_entries(tree: JSONTree) -> IndexEntries:
    """One top-down walk computing every posting the tree belongs in."""
    counts = tree_entry_counts(tree)
    return IndexEntries(
        frozenset(entry[1] for entry in counts if entry[0] == "path"),
        frozenset(entry[1:] for entry in counts if entry[0] == "eq"),
        frozenset(entry[1:] for entry in counts if entry[0] == "kind"),
        frozenset(entry[1] for entry in counts if entry[0] == "key"),
        frozenset(entry[1:] for entry in counts if entry[0] == "tail"),
    )


def tree_entry_counts(tree: JSONTree) -> dict[Entry, int]:
    """A document's counted index entries, from one top-down walk.

    Multiplicity is the number of nodes (or edges, for ``"key"``
    entries) contributing the entry; posting membership is ``count >
    0``.  The counts are what delta maintenance refcounts against.
    """
    node_kinds = tree.node_kinds()
    labels = tree.node_labels()
    parents = tree.node_parents()
    values = tree.node_values()
    # Stripped path per node; parents precede children in id order.
    path_of: list[KeyPath] = [()] * len(node_kinds)
    counts: dict[Entry, int] = {}

    def bump(entry: Entry) -> None:
        counts[entry] = counts.get(entry, 0) + 1

    for node, kind in enumerate(node_kinds):
        if node:
            label = labels[node]
            path = path_of[parents[node]]
            if isinstance(label, str):
                path = path + (label,)
                bump(("key", label))
            path_of[node] = path
        else:
            path = ()
        bump(("path", path))
        bump(("kind", path, kind))
        value = values[node]
        if value is not None:
            bump(("eq", path, value))
            bump(("val", value))
            if path:
                bump(("tail", path[-1], value))
    return counts


def _value_kind(value: Any, extended: bool) -> Kind:
    """Kind of a raw value, mirroring ``JSONTree.from_value`` exactly."""
    if isinstance(value, dict):
        return Kind.OBJECT
    if isinstance(value, (list, tuple)):
        return Kind.ARRAY
    if isinstance(value, str):
        return Kind.STRING
    if isinstance(value, bool):
        if extended:
            return Kind.STRING
        raise UnsupportedValueError(
            "booleans are outside the paper's JSON abstraction "
            "(use extended=True to coerce them to strings)"
        )
    if isinstance(value, int):
        return Kind.NUMBER
    if value is None and extended:
        return Kind.STRING
    raise UnsupportedValueError(
        f"unsupported JSON value of type {type(value).__name__}: {value!r}"
    )


def _leaf_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if value is True:
        return "true"
    if value is False:
        return "false"
    return "null"


def _bump(counts: dict[Entry, int], entry: Entry, sign: int) -> None:
    """Signed accumulate with pop-on-zero (the delta-dict invariant:
    only non-zero counts are ever stored)."""
    updated = counts.get(entry, 0) + sign
    if updated:
        counts[entry] = updated
    else:
        counts.pop(entry, None)


def value_entry_counts(
    value: Any,
    path: KeyPath = (),
    edge_key: str | None = None,
    *,
    extended: bool = False,
    counts: dict[Entry, int] | None = None,
    sign: int = 1,
) -> dict[Entry, int]:
    """Counted entries a raw subtree contributes at a stripped path.

    The value-space twin of :func:`tree_entry_counts`, restricted to
    one subtree: ``path`` is the stripped key path of the subtree root
    and ``edge_key`` the object key of the edge leading into it
    (``None`` for the document root or an array element), whose
    ``"key"`` entry belongs to the subtree.  ``counts``/``sign`` let a
    caller accumulate a *delta* -- subtract the replaced subtree with
    ``sign=-1``, add its replacement with ``sign=1`` -- in one dict.

    Raises :class:`~repro.errors.UnsupportedValueError` on values
    outside the (possibly extended) model, exactly like
    ``JSONTree.from_value`` would on rebuild -- so a bad update operand
    fails before any index or document state changes.
    """
    if counts is None:
        counts = {}

    def bump(entry: Entry) -> None:
        _bump(counts, entry, sign)

    if edge_key is not None:
        bump(("key", edge_key))
    if not isinstance(value, (dict, list, tuple)):
        # Leaf fast path (the $set/$inc hot case): no walk machinery.
        kind = _value_kind(value, extended)
        bump(("path", path))
        bump(("kind", path, kind))
        leaf = _leaf_text(value) if kind is Kind.STRING else value
        bump(("eq", path, leaf))
        bump(("val", leaf))
        if path:
            bump(("tail", path[-1], leaf))
        return counts
    stack: list[tuple[Any, KeyPath]] = [(value, path)]
    while stack:
        sub, sub_path = stack.pop()
        kind = _value_kind(sub, extended)
        bump(("path", sub_path))
        bump(("kind", sub_path, kind))
        if kind is Kind.OBJECT:
            for key, child in sub.items():
                if not isinstance(key, str):
                    raise UnsupportedValueError(
                        f"object keys must be strings, got {type(key).__name__}"
                    )
                bump(("key", key))
                stack.append((child, sub_path + (key,)))
        elif kind is Kind.ARRAY:
            for child in sub:
                stack.append((child, sub_path))
        else:
            leaf = _leaf_text(sub) if kind is Kind.STRING else sub
            bump(("eq", sub_path, leaf))
            bump(("val", leaf))
            if sub_path:
                bump(("tail", sub_path[-1], leaf))
    return counts


def leaf_entry_delta(
    old: Any,
    new: Any,
    path: KeyPath,
    *,
    extended: bool,
    counts: dict[Entry, int],
) -> None:
    """Accumulate the delta of replacing one leaf by another in place.

    The specialised twin of two :func:`value_entry_counts` calls for
    the hot case (``$inc``/``$set`` of a scalar): the ``path`` and
    ``key`` entries of the node cancel by construction and are never
    touched; only the leaf-value entries (and the kind entry, when the
    replacement changes kind) move.
    """
    old_kind = _value_kind(old, extended)
    new_kind = _value_kind(new, extended)
    if old_kind is not new_kind:
        _bump(counts, ("kind", path, old_kind), -1)
        _bump(counts, ("kind", path, new_kind), 1)
    old_leaf = _leaf_text(old) if old_kind is Kind.STRING else old
    new_leaf = _leaf_text(new) if new_kind is Kind.STRING else new
    _bump(counts, ("eq", path, old_leaf), -1)
    _bump(counts, ("eq", path, new_leaf), 1)
    _bump(counts, ("val", old_leaf), -1)
    _bump(counts, ("val", new_leaf), 1)
    if path:
        tail = path[-1]
        _bump(counts, ("tail", tail, old_leaf), -1)
        _bump(counts, ("tail", tail, new_leaf), 1)


# ---------------------------------------------------------------------------
# JSON wire form of counted entries (the snapshot format's refcounts).
# ---------------------------------------------------------------------------

_PATH_TAGS = ("path", "eq", "kind")  # entries whose first arg is a KeyPath


def encode_entry_counts(counts: dict[Entry, int]) -> list:
    """Counted entries as JSON-able ``[[tag, ...args], count]`` rows.

    Key paths become lists, :class:`~repro.model.tree.Kind` becomes its
    integer value; leaf values (``str | int``) survive JSON verbatim.
    The inverse is :func:`decode_entry_counts`.
    """
    rows = []
    for entry, count in counts.items():
        tag = entry[0]
        if tag in _PATH_TAGS:
            encoded = [tag, list(entry[1]), *entry[2:]]
            if tag == "kind":
                encoded[2] = int(encoded[2])
        else:
            encoded = list(entry)
        rows.append([encoded, count])
    return rows


def decode_entry_counts(rows: Iterable) -> dict[Entry, int]:
    """Rebuild a counted entry dict from its JSON wire form."""
    counts: dict[Entry, int] = {}
    for encoded, count in rows:
        tag = encoded[0]
        if tag in _PATH_TAGS:
            entry: Entry = (tag, tuple(encoded[1]), *encoded[2:])
            if tag == "kind":
                entry = (tag, entry[1], Kind(entry[2]))
        else:
            entry = tuple(encoded)
        counts[entry] = count
    return counts


@dataclass
class IndexStats:
    """Size counters for introspection, tests and benchmarks."""

    documents: int
    paths: int
    eq_entries: int
    kind_entries: int
    keys: int
    tail_entries: int
    values: int


@dataclass
class DeltaOps:
    """What one entry delta did to the posting tables.

    ``entries_added``/``entries_removed`` count entries whose per-doc
    count crossed zero (each costs one posting-set mutation);
    ``adjusted`` counts entries whose count changed but stayed positive
    (refcount-only, no posting touched).  ``postings`` breaks the set
    mutations down per table -- the "touched indexes" of an update
    explain report.
    """

    entries_added: int = 0
    entries_removed: int = 0
    adjusted: int = 0
    postings: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "DeltaOps") -> None:
        self.entries_added += other.entries_added
        self.entries_removed += other.entries_removed
        self.adjusted += other.adjusted
        for table, ops in other.postings.items():
            self.postings[table] = self.postings.get(table, 0) + ops


_TABLE_OF_TAG = {
    "path": "paths",
    "eq": "eq",
    "kind": "kinds",
    "key": "keys",
    "tail": "tails",
    "val": "values",
}


class DocumentIndexes:
    """Incrementally maintained postings over a document collection."""

    __slots__ = ("_paths", "_eq", "_kinds", "_keys", "_tails", "_values",
                 "_doc_entries", "_documents")

    def __init__(self) -> None:
        self._paths: dict[KeyPath, set[int]] = {}
        self._eq: dict[KeyPath, dict[str | int, set[int]]] = {}
        self._kinds: dict[KeyPath, dict[Kind, set[int]]] = {}
        self._keys: dict[str, set[int]] = {}
        self._tails: dict[str, dict[str | int, set[int]]] = {}
        self._values: dict[str | int, set[int]] = {}
        # doc id -> counted entries (the refcounts delta maintenance
        # transitions against; also makes remove() walk-free).
        self._doc_entries: dict[int, dict[Entry, int]] = {}
        self._documents = 0

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def add(self, doc_id: int, tree: JSONTree) -> None:
        counts = tree_entry_counts(tree)
        self._doc_entries[doc_id] = counts
        for entry in counts:
            self._add_entry(entry, doc_id)
        self._documents += 1

    def load_counts(self, doc_id: int, counts: dict[Entry, int]) -> None:
        """Register a document from stored entry refcounts (no walk).

        The snapshot-restore fast path: equivalent to :meth:`add` with
        the tree the counts were computed from, but skips the top-down
        walk entirely -- recovery trusts the refcounts it persisted
        (the crash-recovery suite pins them against a from-scratch
        rebuild).
        """
        self._doc_entries[doc_id] = dict(counts)
        for entry in counts:
            self._add_entry(entry, doc_id)
        self._documents += 1

    def remove(self, doc_id: int, tree: JSONTree) -> None:
        """Discard a document's postings (``tree`` as it was indexed).

        Uses the stored entry counts when available (no tree walk);
        the ``tree`` parameter is the fallback for indexes populated
        before the counts existed.
        """
        counts = self._doc_entries.pop(doc_id, None)
        if counts is None:
            counts = tree_entry_counts(tree)
        for entry in counts:
            self._discard_entry(entry, doc_id)
        self._documents -= 1

    def apply_entry_delta(
        self,
        doc_id: int,
        delta: dict[Entry, int],
        *,
        commit: bool = True,
        into: DeltaOps | None = None,
    ) -> DeltaOps:
        """Delta index maintenance for one mutated document.

        ``delta`` maps entries to count changes (new minus old, as
        accumulated by :func:`value_entry_counts` over the replaced and
        replacement subtrees).  Only entries whose refcount crosses
        zero touch a posting set -- never the document's unchanged
        postings.  With ``commit=False`` nothing is mutated and the
        returned :class:`DeltaOps` reports what *would* happen (the
        explain dry run).  ``into`` accumulates the report into an
        existing :class:`DeltaOps` (the batch-update hot path) instead
        of allocating one per document.
        """
        counts = self._doc_entries.setdefault(doc_id, {})
        ops = DeltaOps() if into is None else into
        for entry, change in delta.items():
            if not change:
                continue
            before = counts.get(entry, 0)
            after = before + change
            if after < 0:
                raise ValueError(
                    f"entry delta drives {entry!r} below zero for "
                    f"document {doc_id}"
                )
            if commit:
                if after:
                    counts[entry] = after
                else:
                    counts.pop(entry, None)
            if before == 0 and after > 0:
                ops.entries_added += 1
                table = _TABLE_OF_TAG[entry[0]]
                ops.postings[table] = ops.postings.get(table, 0) + 1
                if commit:
                    self._add_entry(entry, doc_id)
            elif before > 0 and after == 0:
                ops.entries_removed += 1
                table = _TABLE_OF_TAG[entry[0]]
                ops.postings[table] = ops.postings.get(table, 0) + 1
                if commit:
                    self._discard_entry(entry, doc_id)
            else:
                ops.adjusted += 1
        return ops

    def entry_counts(self, doc_id: int) -> dict[Entry, int]:
        """The stored counted entries of a document (read-only view)."""
        return self._doc_entries.get(doc_id, {})

    def _add_entry(self, entry: Entry, doc_id: int) -> None:
        tag = entry[0]
        if tag == "path":
            self._paths.setdefault(entry[1], set()).add(doc_id)
        elif tag == "eq":
            self._eq.setdefault(entry[1], {}).setdefault(
                entry[2], set()
            ).add(doc_id)
        elif tag == "kind":
            self._kinds.setdefault(entry[1], {}).setdefault(
                entry[2], set()
            ).add(doc_id)
        elif tag == "key":
            self._keys.setdefault(entry[1], set()).add(doc_id)
        elif tag == "tail":
            self._tails.setdefault(entry[1], {}).setdefault(
                entry[2], set()
            ).add(doc_id)
        else:  # "val"
            self._values.setdefault(entry[1], set()).add(doc_id)

    def _discard_entry(self, entry: Entry, doc_id: int) -> None:
        tag = entry[0]
        if tag == "path":
            self._discard(self._paths, entry[1], doc_id)
        elif tag == "eq":
            self._discard_nested(self._eq, entry[1], entry[2], doc_id)
        elif tag == "kind":
            self._discard_nested(self._kinds, entry[1], entry[2], doc_id)
        elif tag == "key":
            self._discard(self._keys, entry[1], doc_id)
        elif tag == "tail":
            self._discard_nested(self._tails, entry[1], entry[2], doc_id)
        else:  # "val"
            self._discard(self._values, entry[1], doc_id)

    @staticmethod
    def _discard(table: dict, key, doc_id: int) -> None:
        postings = table.get(key)
        if postings is not None:
            postings.discard(doc_id)
            if not postings:
                del table[key]

    @staticmethod
    def _discard_nested(table: dict, outer, inner, doc_id: int) -> None:
        nested = table.get(outer)
        if nested is None:
            return
        postings = nested.get(inner)
        if postings is not None:
            postings.discard(doc_id)
            if not postings:
                del nested[inner]
        if not nested:
            del table[outer]

    # ------------------------------------------------------------------
    # Lookups (read-only sets; callers must not mutate).
    # ------------------------------------------------------------------

    def docs_with_path(self, path: KeyPath) -> Iterable[int]:
        return self._paths.get(path, _EMPTY)

    def docs_with_value(self, path: KeyPath, value: str | int) -> Iterable[int]:
        return self._eq.get(path, {}).get(value, _EMPTY)

    def docs_with_kind(self, path: KeyPath, kind: Kind) -> Iterable[int]:
        return self._kinds.get(path, {}).get(kind, _EMPTY)

    def docs_with_key(self, key: str) -> Iterable[int]:
        return self._keys.get(key, _EMPTY)

    def docs_with_tail_value(self, key: str, value: str | int) -> Iterable[int]:
        return self._tails.get(key, {}).get(value, _EMPTY)

    def docs_with_any_value(self, value: str | int) -> Iterable[int]:
        return self._values.get(value, _EMPTY)

    def docs_in_range(
        self, path: KeyPath, low: int | None, high: int | None
    ) -> set[int]:
        """Documents with a number leaf at ``path`` in ``(low, high)``.

        Bounds are exclusive (the NodeTest ``Min``/``Max`` convention);
        ``None`` means unbounded.  Cost is linear in the number of
        distinct values recorded at the path.
        """
        result: set[int] = set()
        for value, postings in self._eq.get(path, {}).items():
            if not isinstance(value, int):
                continue
            if low is not None and value <= low:
                continue
            if high is not None and value >= high:
                continue
            result |= postings
        return result

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def stats(self) -> IndexStats:
        return IndexStats(
            documents=self._documents,
            paths=len(self._paths),
            eq_entries=sum(len(values) for values in self._eq.values()),
            kind_entries=sum(len(kinds) for kinds in self._kinds.values()),
            keys=len(self._keys),
            tail_entries=sum(len(values) for values in self._tails.values()),
            values=len(self._values),
        )

    def snapshot(self) -> dict:
        """A plain-dict copy of every table (test/debug equality aid).

        Includes the per-document entry refcounts, so snapshot equality
        between incrementally maintained and rebuilt-from-scratch
        indexes also pins the counts delta maintenance relies on.
        """
        return {
            "paths": {path: set(docs) for path, docs in self._paths.items()},
            "eq": {
                path: {value: set(docs) for value, docs in values.items()}
                for path, values in self._eq.items()
            },
            "kinds": {
                path: {kind: set(docs) for kind, docs in kinds.items()}
                for path, kinds in self._kinds.items()
            },
            "keys": {key: set(docs) for key, docs in self._keys.items()},
            "tails": {
                key: {value: set(docs) for value, docs in values.items()}
                for key, values in self._tails.items()
            },
            "values": {
                value: set(docs) for value, docs in self._values.items()
            },
            "doc_entries": {
                doc_id: dict(counts)
                for doc_id, counts in self._doc_entries.items()
            },
        }
