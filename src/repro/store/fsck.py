"""Offline integrity verification and repair for durable databases.

``fsck`` for the WAL + snapshot format: :func:`verify` walks every
collection's files in a database directory *read-only* and produces a
structured :class:`IntegrityReport`; :func:`repair` fixes what can be
fixed mechanically and *quarantines* (renames aside -- never deletes)
what cannot.

:func:`verify` checks, per collection:

* the snapshot file -- readable, valid JSON, a recognised
  format/version envelope, the CRC32 self-check over the collection
  payload, and a decodable payload;
* the WAL -- magic, per-frame CRCs, a torn tail (a *warning*: it is
  the normal artifact of a crash and recovery truncates it), LSN
  monotonicity and contiguity above the snapshot's covering LSN
  (stale pre-snapshot records from an interrupted compaction are
  noted, not flagged);
* replayability -- the committed records are folded into a shadow
  state through the same :class:`~repro.store.durable.ReplayFolder`
  the live engine uses, so "fsck says clean" and "the engine can open
  it" are the same statement;
* leftover ``.tmp`` files from an interrupted checkpoint or reset.

:func:`repair` then: truncates torn tails back to the committed
prefix; truncates the WAL at the first record that breaks LSN
contiguity or fails to replay (the committed prefix before it is
kept); quarantines unreadable/corrupt snapshots and foreign or
unreadable WALs; quarantines a WAL that cannot replay without its
(quarantined) snapshot because its records start above LSN 1; and
quarantines leftover temp files.  Every action is reported, and the
directory is re-verified afterwards -- ``repair(path).verified.ok``
is the "clean after repair" acceptance check.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

from repro.errors import StorageFormatError, StoreError
from repro.store.durable import (
    ReplayFolder,
    verify_snapshot_wrapper,
)
from repro.store.engine import SnapshotData, decode_snapshot
from repro.store.faults import IOAdapter, RealIO
from repro.store.wal import WAL_MAGIC, scan_wal

__all__ = [
    "Finding",
    "CollectionCheck",
    "IntegrityReport",
    "RepairAction",
    "RepairReport",
    "verify",
    "repair",
]

SNAPSHOT_SUFFIX = ".snapshot.json"
WAL_SUFFIX = ".wal"

#: Finding severities, in increasing order of concern.  ``info`` is
#: context (a stale pre-snapshot prefix), ``warning`` is a normal
#: crash artifact recovery handles silently (a torn tail, a
#: pre-checksum snapshot), ``error`` blocks or corrupts recovery.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One verification finding, anchored to a file."""

    severity: str
    code: str
    file: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.file}: {self.message}"


@dataclass
class CollectionCheck:
    """Everything :func:`verify` learned about one collection."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    snapshot_lsn: int | None = None
    wal_frames: int = 0
    wal_stale_frames: int = 0
    wal_last_lsn: int | None = None
    #: Documents in the shadow-replayed state; ``None`` when replay
    #: could not run (missing/corrupt inputs).
    documents: int | None = None

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings are recoverable)."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def clean(self) -> bool:
        """Nothing to report beyond informational context."""
        return not any(f.severity != "info" for f in self.findings)

    def _add(self, severity: str, code: str, file: str, message: str) -> None:
        self.findings.append(Finding(severity, code, file, message))


@dataclass
class IntegrityReport:
    """The structured result of :func:`verify` over a database dir."""

    path: str
    collections: list[CollectionCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.collections)

    @property
    def clean(self) -> bool:
        return all(check.clean for check in self.collections)

    def findings(self) -> list[Finding]:
        return [f for check in self.collections for f in check.findings]


@dataclass(frozen=True)
class RepairAction:
    """One mutation :func:`repair` performed, for the audit trail."""

    code: str
    file: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code}: {self.file}: {self.detail}"


@dataclass
class RepairReport:
    """What :func:`repair` did, plus the post-repair verification."""

    path: str
    actions: list[RepairAction]
    verified: IntegrityReport

    @property
    def ok(self) -> bool:
        return self.verified.ok


# ---------------------------------------------------------------------------
# Discovery.
# ---------------------------------------------------------------------------


def _collection_names(path: str) -> list[str]:
    """Collections present on disk, discovered from their file names."""
    names = set()
    for filename in os.listdir(path):
        for suffix in (
            SNAPSHOT_SUFFIX,
            WAL_SUFFIX,
            SNAPSHOT_SUFFIX + ".tmp",
            WAL_SUFFIX + ".tmp",
        ):
            if filename.endswith(suffix):
                names.add(filename[: -len(suffix)])
                break
    return sorted(names)


def _paths(path: str, name: str) -> tuple[str, str]:
    return (
        os.path.join(path, f"{name}{SNAPSHOT_SUFFIX}"),
        os.path.join(path, f"{name}{WAL_SUFFIX}"),
    )


# ---------------------------------------------------------------------------
# Verification.
# ---------------------------------------------------------------------------


def _check_snapshot(
    check: CollectionCheck, snapshot_path: str, io: IOAdapter
) -> tuple[SnapshotData | None, int]:
    """Snapshot findings; returns ``(decoded, covering_lsn)`` on success
    and ``(None, 0)`` when the snapshot is absent or unusable."""
    if not os.path.exists(snapshot_path):
        return None, 0
    try:
        with io.open(snapshot_path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        check._add(
            "error", "snapshot-unreadable", snapshot_path, f"cannot read: {exc}"
        )
        return None, 0
    try:
        wrapper = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        check._add(
            "error", "snapshot-not-json", snapshot_path, f"not valid JSON: {exc}"
        )
        return None, 0
    try:
        lsn, checksum_ok = verify_snapshot_wrapper(wrapper, snapshot_path)
    except StorageFormatError as exc:
        check._add("error", "snapshot-bad-envelope", snapshot_path, str(exc))
        return None, 0
    if not checksum_ok:
        check._add(
            "error",
            "snapshot-checksum-mismatch",
            snapshot_path,
            f"CRC32 of the collection payload does not match the recorded "
            f"{wrapper.get('crc32')} (bit rot or tampering)",
        )
        return None, 0
    if wrapper.get("crc32") is None:
        check._add(
            "warning",
            "snapshot-unchecksummed",
            snapshot_path,
            "pre-checksum snapshot wrapper: bit rot in the payload is "
            "undetectable; recompact to upgrade",
        )
    try:
        snapshot = decode_snapshot(wrapper.get("collection"))
    except StorageFormatError as exc:
        check._add("error", "snapshot-malformed", snapshot_path, str(exc))
        return None, 0
    check.snapshot_lsn = lsn
    return snapshot, lsn


def _check_wal(
    check: CollectionCheck, wal_path: str, io: IOAdapter
) -> list[tuple[dict, int]] | None:
    """WAL file/frame findings; returns the committed ``(record,
    end_offset)`` frames, or ``None`` when the file is unusable."""
    if not os.path.exists(wal_path):
        check._add(
            "warning",
            "wal-absent",
            wal_path,
            "no write-ahead log (the engine will create an empty one)",
        )
        return []
    try:
        frames, good, size, reason = scan_wal(wal_path, io=io)
    except StorageFormatError as exc:
        check._add("error", "wal-bad-magic", wal_path, str(exc))
        return None
    except OSError as exc:
        check._add("error", "wal-unreadable", wal_path, f"cannot read: {exc}")
        return None
    check.wal_frames = len(frames)
    if frames:
        check.wal_last_lsn = frames[-1][0]["lsn"]
    if good < size:
        check._add(
            "warning",
            "wal-torn-tail",
            wal_path,
            f"{size - good} trailing byte(s) past the committed prefix "
            f"({reason}); recovery truncates this silently, repair does it "
            "offline",
        )
    return frames


def _shadow_replay(
    check: CollectionCheck,
    snapshot: SnapshotData | None,
    snapshot_lsn: int,
    frames: list[tuple[dict, int]],
    wal_path: str,
) -> int | None:
    """Fold the committed frames into a shadow state.

    Returns the byte offset at which replay failed (for repair to
    truncate at), or ``None`` when every record folded cleanly --
    in which case ``check.documents`` is filled in.
    """
    folder = ReplayFolder(snapshot, snapshot_lsn, wal_path=wal_path)
    start = len(WAL_MAGIC)
    for record, end in frames:
        try:
            applied = folder.apply(record)
        except StorageFormatError as exc:
            check._add("error", "wal-replay-failed", wal_path, str(exc))
            return start
        if not applied:
            check.wal_stale_frames += 1
        start = end
    if check.wal_stale_frames:
        check._add(
            "info",
            "wal-stale-prefix",
            wal_path,
            f"{check.wal_stale_frames} record(s) at or below the snapshot's "
            f"covering LSN {snapshot_lsn} (an interrupted compaction; "
            "replay skips them)",
        )
    check.documents = len(folder.state().docs)
    return None


def _check_temp_files(check: CollectionCheck, path: str, name: str) -> None:
    for suffix in (SNAPSHOT_SUFFIX, WAL_SUFFIX):
        temp = os.path.join(path, f"{name}{suffix}.tmp")
        if os.path.exists(temp):
            check._add(
                "warning",
                "leftover-temp",
                temp,
                "interrupted checkpoint/reset left a temp file; it was "
                "never part of the committed state",
            )


def _verify_collection(
    path: str, name: str, io: IOAdapter
) -> CollectionCheck:
    check = CollectionCheck(name=name)
    snapshot_path, wal_path = _paths(path, name)
    snapshot, snapshot_lsn = _check_snapshot(check, snapshot_path, io)
    frames = _check_wal(check, wal_path, io)
    if frames is not None:
        snapshot_damaged = snapshot is None and os.path.exists(snapshot_path)
        if snapshot_damaged and not (frames and frames[0][0]["lsn"] == 1):
            start = frames[0][0]["lsn"] if frames else "nothing"
            check._add(
                "error",
                "wal-unreachable",
                wal_path,
                f"the snapshot is unusable and the WAL does not reach "
                f"back to LSN 1 (it holds {start}): full replay cannot "
                "reconstruct the state",
            )
        else:
            _shadow_replay(check, snapshot, snapshot_lsn, frames, wal_path)
    _check_temp_files(check, path, name)
    return check


def verify(
    path: str, name: str | None = None, *, io: IOAdapter | None = None
) -> IntegrityReport:
    """Read-only integrity check of a database directory.

    Walks every collection found on disk (or just ``name``), checking
    snapshot envelope + checksum, WAL frames, LSN discipline and
    replayability into a shadow state.  Mutates nothing.
    """
    path = os.fspath(path)
    if not os.path.isdir(path):
        raise StoreError(f"{path}: not a database directory")
    io = io if io is not None else RealIO()
    names = [name] if name is not None else _collection_names(path)
    return IntegrityReport(
        path=path,
        collections=[_verify_collection(path, n, io) for n in names],
    )


# ---------------------------------------------------------------------------
# Repair.
# ---------------------------------------------------------------------------


def _quarantine(file_path: str) -> str:
    """Rename a corrupt file aside (never delete); returns the new path."""
    base = file_path + ".quarantined"
    candidate = base
    counter = 0
    while os.path.exists(candidate):
        counter += 1
        candidate = f"{base}.{counter}"
    os.replace(file_path, candidate)
    return candidate


def _truncate_file(file_path: str, size: int, io: IOAdapter) -> None:
    handle = io.open(file_path, "r+b")
    try:
        io.truncate(handle, size)
        io.flush(handle)
        io.fsync(handle)
    finally:
        handle.close()


def _repair_collection(
    path: str, check: CollectionCheck, io: IOAdapter
) -> list[RepairAction]:
    snapshot_path, wal_path = _paths(path, check.name)
    actions: list[RepairAction] = []
    codes = {finding.code for finding in check.findings}

    # Leftover temp files: never part of the committed state.
    for finding in check.findings:
        if finding.code == "leftover-temp":
            moved = _quarantine(finding.file)
            actions.append(
                RepairAction("quarantine-temp", finding.file, f"-> {moved}")
            )

    # An unusable snapshot is set aside whole; repair never guesses at
    # partially-trusted payloads.
    snapshot_bad = codes & {
        "snapshot-unreadable",
        "snapshot-not-json",
        "snapshot-bad-envelope",
        "snapshot-checksum-mismatch",
        "snapshot-malformed",
    }
    if snapshot_bad:
        moved = _quarantine(snapshot_path)
        actions.append(
            RepairAction(
                "quarantine-snapshot",
                snapshot_path,
                f"-> {moved} ({', '.join(sorted(snapshot_bad))})",
            )
        )

    # A foreign or unreadable WAL likewise.
    if codes & {"wal-bad-magic", "wal-unreadable"}:
        moved = _quarantine(wal_path)
        actions.append(
            RepairAction("quarantine-wal", wal_path, f"-> {moved}")
        )
        return actions

    if not os.path.exists(wal_path):
        return actions

    # Torn tail: truncate back to the committed prefix (what live
    # recovery would do, done offline with an audit trail).
    frames, good, size, reason = scan_wal(wal_path, io=io)
    if good < size:
        _truncate_file(wal_path, good, io)
        actions.append(
            RepairAction(
                "truncate-torn-tail",
                wal_path,
                f"{size - good} byte(s) removed ({reason})",
            )
        )

    # Records that break LSN contiguity or fail to replay: keep the
    # committed prefix before the first offender, truncate the rest.
    snapshot_lsn = 0 if snapshot_bad else (check.snapshot_lsn or 0)
    snapshot = None
    if not snapshot_bad and os.path.exists(snapshot_path):
        shadow = CollectionCheck(name=check.name)
        snapshot, snapshot_lsn = _check_snapshot(shadow, snapshot_path, io)
    if frames and snapshot is None and frames[0][0]["lsn"] > 1:
        # Without a usable snapshot the WAL must reach back to LSN 1;
        # these records describe deltas over a state that no longer
        # exists, so they are preserved aside, not replayed wrongly.
        moved = _quarantine(wal_path)
        actions.append(
            RepairAction(
                "quarantine-wal",
                wal_path,
                f"-> {moved} (records start at LSN {frames[0][0]['lsn']} "
                "with no usable snapshot)",
            )
        )
        return actions
    shadow = CollectionCheck(name=check.name)
    fail_offset = _shadow_replay(
        shadow, snapshot, snapshot_lsn, frames, wal_path
    )
    if fail_offset is not None:
        _truncate_file(wal_path, fail_offset, io)
        detail = next(
            (
                finding.message
                for finding in shadow.findings
                if finding.code == "wal-replay-failed"
            ),
            "replay failure",
        )
        actions.append(
            RepairAction(
                "truncate-at-corrupt-record",
                wal_path,
                f"kept {fail_offset} committed byte(s); {detail}",
            )
        )
    return actions


def repair(
    path: str, name: str | None = None, *, io: IOAdapter | None = None
) -> RepairReport:
    """Fix what is mechanical, quarantine what is not, re-verify.

    Corrupt files are renamed to ``<file>.quarantined`` (numbered on
    collision) -- never deleted -- so no repair is ever destructive
    beyond truncating bytes that could not have been part of the
    committed state.  Returns the actions taken and a fresh
    :func:`verify` report; ``RepairReport.ok`` is the "clean after
    repair" criterion.
    """
    path = os.fspath(path)
    io = io if io is not None else RealIO()
    before = verify(path, name, io=io)
    actions: list[RepairAction] = []
    for check in before.collections:
        actions.extend(_repair_collection(path, check, io))
    return RepairReport(
        path=path, actions=actions, verified=verify(path, name, io=io)
    )
