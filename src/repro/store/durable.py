"""The durable storage engine: WAL + snapshots behind ``StorageEngine``.

A :class:`DurableEngine` persists one collection as two files in a
database directory::

    <dir>/<name>.snapshot.json   last checkpoint (versioned snapshot
                                 payload wrapped with its covering LSN
                                 and a CRC32 self-check)
    <dir>/<name>.wal             every commit since that checkpoint

**Commit path.**  The collection calls the engine's commit hook after
staging and schema validation but before the in-memory apply; the hook
appends one frame (insert / remove / update post-images) and syncs per
the engine's policy.  A schema rejection therefore leaves no trace on
disk, and a crash after the append replays to exactly the state the
caller was acknowledged.

**Failure semantics.**  All file I/O routes through an
:class:`~repro.store.faults.IOAdapter` (``io=``), so every fsync,
write and rename is injectable.  A failed or partial append rolls the
log back to the pre-append offset and raises
:class:`~repro.errors.StorageIOError`; after *any* append or
checkpoint failure the engine enters **degraded read-only mode** --
reads, queries and explains keep answering from memory, further writes
raise :class:`~repro.errors.CollectionReadOnlyError` with the root
cause chained -- rather than silently diverging memory from disk.
Reopening the database recovers the acknowledged prefix and restores a
healthy engine.

**Recovery.**  ``bind`` loads the snapshot (format-, version- and
checksum-checked), replays WAL records with ``lsn`` greater than the
snapshot's covering LSN in sequence, and hands the collection a
:class:`~repro.store.engine.RecoveredState`.  Torn or corrupt WAL
tails were already truncated by :class:`~repro.store.wal.WriteAheadLog`;
a *well-formed* record that is malformed at the content level (unknown
op, missing fields) or breaks LSN contiguity is a writer bug or
targeted corruption and raises
:class:`~repro.errors.StorageFormatError` instead of being guessed at.
A snapshot whose checksum no longer matches its payload (bit rot) is
set aside with a warning when the WAL still reaches back to LSN 1 --
full replay reconstructs the state -- and refused loudly (pointing at
``repro db repair``) when it does not.  Snapshot documents no WAL
record touched keep their persisted counted index refcounts, so their
postings load without re-walking the tree.

**Compaction.**  ``checkpoint()`` folds the log into a fresh snapshot:
write-temp + fsync + ``replace`` + parent-directory fsync for the
snapshot, then an atomic WAL reset (same dance).  A crash between the
two leaves stale WAL records whose LSNs the new snapshot already
covers -- replay skips them.  A checkpoint that fails partway leaves
the old snapshot and WAL fully intact (the rename is the commit
point) and degrades the engine.  Passing ``compact_threshold=N``
checkpoints automatically every N commits.
"""

from __future__ import annotations

import json
import os
import re
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import (
    CollectionReadOnlyError,
    StorageFormatError,
    StorageIOError,
    StoreError,
)
from repro.store.engine import (
    EngineHealth,
    RecoveredState,
    SnapshotData,
    StorageEngine,
    decode_snapshot,
)
from repro.store.faults import IOAdapter, RealIO
from repro.store.indexes import decode_entry_counts
from repro.store.wal import WriteAheadLog

__all__ = [
    "DurableEngine",
    "CompactionReport",
    "ReplayFolder",
    "encode_snapshot_wrapper",
    "verify_snapshot_wrapper",
    "replay_records",
]

#: The ``format`` tag of the snapshot *file* (which wraps the
#: collection snapshot payload with the LSN it covers).
SNAPSHOT_FILE_FORMAT = "repro-durable-snapshot"
SNAPSHOT_FILE_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class CompactionReport:
    """What one checkpoint did: WAL bytes folded into the snapshot."""

    wal_records: int
    wal_bytes: int
    snapshot_bytes: int
    lsn: int


def _canonical(payload: Any) -> bytes:
    return json.dumps(
        payload, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def encode_snapshot_wrapper(collection_payload: dict, lsn: int) -> bytes:
    """Serialise a snapshot-file wrapper with its CRC32 self-check.

    The checksum covers the canonical serialisation of the collection
    payload, so any bit flipped inside the payload -- not just a torn
    file -- is detected by :func:`verify_snapshot_wrapper`, the loader
    and ``repro db verify``.
    """
    encoded = _canonical(collection_payload)
    head = _canonical(
        {
            "format": SNAPSHOT_FILE_FORMAT,
            "version": SNAPSHOT_FILE_VERSION,
            "lsn": lsn,
            "crc32": zlib.crc32(encoded),
        }
    )
    # Graft the already-serialised payload in, so the bytes the
    # checksum covers are exactly the bytes written (one serialisation,
    # no double dump).
    return head[:-1] + b',"collection":' + encoded + b"}"


def verify_snapshot_wrapper(wrapper: dict, path: str) -> tuple[int, bool]:
    """Validate a parsed snapshot wrapper's envelope and checksum.

    Returns ``(covering_lsn, checksum_ok)``.  Envelope problems --
    wrong format tag, unknown version, missing LSN -- raise
    :class:`~repro.errors.StorageFormatError`; a checksum mismatch (or
    a pre-checksum wrapper, reported as intact) is the caller's policy
    decision, so it is returned, not raised.
    """
    if (
        not isinstance(wrapper, dict)
        or wrapper.get("format") != SNAPSHOT_FILE_FORMAT
    ):
        raise StorageFormatError(f"{path}: not a durable-collection snapshot")
    if wrapper.get("version") != SNAPSHOT_FILE_VERSION:
        raise StorageFormatError(
            f"{path}: unsupported snapshot file version "
            f"{wrapper.get('version')!r} (this build reads "
            f"{SNAPSHOT_FILE_VERSION})"
        )
    lsn = wrapper.get("lsn")
    if not isinstance(lsn, int) or lsn < 0:
        raise StorageFormatError(f"{path}: missing or invalid covering LSN")
    expected = wrapper.get("crc32")
    if expected is None:
        # A wrapper from before the self-check field: nothing to verify
        # against (fsck reports this as a warning).
        return lsn, True
    actual = zlib.crc32(_canonical(wrapper.get("collection")))
    return lsn, expected == actual


class ReplayFolder:
    """Incremental WAL replay onto a snapshot, in value space.

    The single definition of replay semantics, shared by live recovery
    (:func:`replay_records` / :meth:`DurableEngine._recover`) and the
    offline verifier's shadow state (:mod:`repro.store.fsck`, which
    feeds records one at a time so it can pinpoint the offending
    frame).  Strict LSN discipline: records at or below the snapshot's
    covering LSN are stale leftovers of an interrupted compaction and
    are skipped; anything else must be contiguous, with a known op and
    well-formed fields, or :meth:`apply` raises
    :class:`~repro.errors.StorageFormatError`.
    """

    def __init__(
        self,
        snapshot: SnapshotData | None,
        snapshot_lsn: int,
        *,
        wal_path: str = "<wal>",
    ) -> None:
        self._snapshot = snapshot
        self._wal_path = wal_path
        self.slots: dict[int, Any] = {}
        self.untouched: set[int] = set()
        self.next_id = 0
        self.ops = 0
        self.extended = False
        if snapshot is not None:
            self.slots.update(snapshot.docs)
            self.untouched.update(self.slots)
            self.next_id = snapshot.next_id
            self.ops = snapshot.ops
            self.extended = snapshot.extended
        self.expected = snapshot_lsn

    def apply(self, record: dict) -> bool:
        """Fold one record; ``False`` when skipped as pre-snapshot stale."""
        lsn = record["lsn"]
        if lsn <= self.expected:
            return False  # pre-snapshot record from an interrupted compaction
        if lsn != self.expected + 1:
            raise StorageFormatError(
                f"{self._wal_path}: LSN gap in committed records "
                f"(expected {self.expected + 1}, found {lsn})"
            )
        try:
            op = record["op"]
            if op == "insert":
                for doc_id, value in zip(
                    record["ids"], record["docs"], strict=True
                ):
                    self.slots[doc_id] = value
                    self.untouched.discard(doc_id)
                    self.next_id = max(self.next_id, doc_id + 1)
            elif op == "remove":
                del self.slots[record["id"]]
                self.untouched.discard(record["id"])
            elif op == "update":
                for doc_id, value in record["changes"]:
                    self.slots[doc_id] = value
                    self.untouched.discard(doc_id)
            else:
                raise StorageFormatError(
                    f"{self._wal_path}: unknown WAL op {op!r} at LSN {lsn}"
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageFormatError(
                f"{self._wal_path}: malformed committed record at LSN "
                f"{lsn}: {exc}"
            ) from exc
        self.expected = lsn
        self.ops += 1
        return True

    def state(self) -> RecoveredState:
        """The folded state as the engine's recovery payload."""
        entries = {}
        snapshot = self._snapshot
        if snapshot is not None and snapshot.encoded_entries is not None:
            for doc_id in self.untouched:
                encoded = snapshot.encoded_entries.get(doc_id)
                if encoded is not None:
                    entries[doc_id] = decode_entry_counts(encoded)
        return RecoveredState(
            next_id=self.next_id,
            version=self.ops,
            extended=self.extended,
            docs=sorted(self.slots.items()),
            entries=entries,
        )


def replay_records(
    snapshot: SnapshotData | None,
    snapshot_lsn: int,
    records: Iterable[dict],
    *,
    wal_path: str = "<wal>",
) -> RecoveredState:
    """Fold WAL records onto a snapshot (see :class:`ReplayFolder`)."""
    folder = ReplayFolder(snapshot, snapshot_lsn, wal_path=wal_path)
    for record in records:
        folder.apply(record)
    return folder.state()


class DurableEngine(StorageEngine):
    """WAL + snapshot persistence for one named collection."""

    durable = True

    def __init__(
        self,
        directory: str,
        name: str = "main",
        *,
        sync: str = "fsync",
        compact_threshold: int | None = None,
        io: IOAdapter | None = None,
    ) -> None:
        super().__init__()
        if not _NAME_RE.match(name):
            raise StoreError(
                f"invalid collection name {name!r} (letters, digits, "
                "'._-' only, must not start with a separator)"
            )
        if compact_threshold is not None and compact_threshold < 1:
            raise StoreError("compact_threshold must be a positive integer")
        self._directory = os.fspath(directory)
        self._name = name
        self._sync = sync
        self._threshold = compact_threshold
        self._io = io if io is not None else RealIO()
        self._failed: StorageIOError | None = None
        os.makedirs(self._directory, exist_ok=True)
        self._snapshot_path = os.path.join(
            self._directory, f"{name}.snapshot.json"
        )
        self._wal_path = os.path.join(self._directory, f"{name}.wal")
        self._wal: WriteAheadLog | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def io(self) -> IOAdapter:
        return self._io

    @property
    def wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise StoreError("engine is not bound to a collection yet")
        return self._wal

    @property
    def health(self) -> EngineHealth:
        if self._failed is None:
            return EngineHealth(ok=True)
        return EngineHealth(
            ok=False,
            degraded=True,
            reason=str(self._failed),
            error=self._failed,
        )

    # ------------------------------------------------------------------
    # Degraded mode.
    # ------------------------------------------------------------------

    def _fail(self, error: StorageIOError) -> StorageIOError:
        """Record the first I/O failure; the engine goes read-only."""
        if self._failed is None:
            self._failed = error
        return error

    def _check_writable(self) -> None:
        if self._failed is not None:
            raise CollectionReadOnlyError(
                f"collection {self._name!r} is in degraded read-only mode "
                f"after a storage failure: {self._failed} -- reads still "
                "answer from memory; reopen the database to recover the "
                "acknowledged prefix"
            ) from self._failed

    # ------------------------------------------------------------------
    # Recovery (bind-time).
    # ------------------------------------------------------------------

    def _recover(self) -> RecoveredState | None:
        snapshot, snapshot_lsn, damaged = self._load_snapshot_file()
        self._wal = WriteAheadLog(
            self._wal_path, sync=self._sync, base_lsn=snapshot_lsn, io=self._io
        )
        records = self._wal.replayed
        self._wal.drop_replayed()
        if damaged and not (records and records[0]["lsn"] == 1):
            # Fallback is only sound when the WAL reaches back to the
            # very first record; an empty or snapshot-anchored log would
            # silently replay to a truncated state.
            start = records[0]["lsn"] if records else "nothing"
            raise StorageFormatError(
                f"{self._snapshot_path}: snapshot checksum mismatch and the "
                f"WAL does not reach back to LSN 1 (it holds {start}), so "
                "full replay cannot reconstruct the state; run `repro db "
                "repair` to quarantine the damaged files"
            )
        if snapshot is None and not records:
            return None  # a genuinely fresh collection
        return replay_records(
            snapshot, snapshot_lsn, records, wal_path=self._wal_path
        )

    def _load_snapshot_file(self) -> tuple[SnapshotData | None, int, bool]:
        """Load the snapshot; ``(data, covering_lsn, damaged)``.

        ``damaged=True`` means the file exists but its checksum no
        longer matches -- it is set aside (``data=None``, LSN 0) so the
        caller can fall back to full WAL replay with a warning, or
        refuse if the WAL does not reach back far enough.
        """
        if not os.path.exists(self._snapshot_path):
            return None, 0, False
        try:
            with self._io.open(self._snapshot_path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise self._fail(
                StorageIOError(
                    f"{self._snapshot_path}: cannot read snapshot: {exc}"
                )
            ) from exc
        try:
            wrapper = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageFormatError(
                f"{self._snapshot_path}: not valid JSON ({exc})"
            ) from exc
        lsn, checksum_ok = verify_snapshot_wrapper(
            wrapper, self._snapshot_path
        )
        if not checksum_ok:
            warnings.warn(
                f"{self._snapshot_path}: snapshot checksum mismatch (bit "
                "rot?); falling back to full WAL replay -- run `repro db "
                "verify` for a report and `repro db repair` to quarantine "
                "the damaged snapshot",
                RuntimeWarning,
                stacklevel=4,
            )
            return None, 0, True
        return decode_snapshot(wrapper.get("collection")), lsn, False

    # ------------------------------------------------------------------
    # Commit hooks.
    # ------------------------------------------------------------------

    def commit_insert(
        self, doc_ids: Sequence[int], values: Sequence[Any]
    ) -> None:
        self._append({"op": "insert", "ids": list(doc_ids), "docs": list(values)})

    def commit_remove(self, doc_id: int) -> None:
        self._append({"op": "remove", "id": doc_id})

    def commit_update(self, changes: Iterable[tuple[int, Any]]) -> None:
        self._append(
            {"op": "update", "changes": [[doc_id, value] for doc_id, value in changes]}
        )

    def _append(self, payload: dict) -> None:
        self._check_writable()
        try:
            self.wal.append(payload)
        except StorageIOError as exc:
            raise self._fail(exc)

    def commit_applied(self) -> None:
        # Inside a group commit the threshold check defers to the end
        # of the batch: a checkpoint mid-group would snapshot memory
        # ahead of the un-synced WAL suffix and then reset the log
        # under an open batch.
        if self._wal is not None and self._wal.in_batch:
            return
        # Auto-compaction must wait for the post-apply hook: a
        # checkpoint from inside a commit hook would snapshot memory
        # *without* the record just logged, then reset the WAL past it
        # -- silently dropping the acknowledged mutation.
        if (
            self._failed is None
            and self._threshold is not None
            and self.wal.records_since_reset >= self._threshold
        ):
            try:
                self.checkpoint()
            except StorageIOError:
                # The commit itself is already durable in the WAL; a
                # failed *auto*-checkpoint must not turn an acknowledged
                # write into an error.  The engine is degraded now, so
                # the next write raises CollectionReadOnlyError.
                pass

    # ------------------------------------------------------------------
    # Group commit.
    # ------------------------------------------------------------------

    @contextmanager
    def group(self) -> Iterator[None]:
        """One WAL sync for every commit made inside the block.

        The durable half of the serving tier's group commit: commits
        inside the block append their frames with the per-record sync
        deferred, and the block exit issues a single policy sync
        (``commit_batch``) covering all of them.  Failure semantics
        stay all-or-nothing *per batch*: an append failure inside the
        block rolls the whole batch off the log and degrades the
        engine (later commits in the block raise
        :class:`~repro.errors.CollectionReadOnlyError`); a failed final
        sync does the same.  Callers must not acknowledge any write in
        the group until the block has exited cleanly.

        The deferred auto-checkpoint check runs once per batch, after
        the sync -- matching the one-``commit_applied``-per-batch
        amortisation the server relies on.
        """
        self._check_writable()
        wal = self.wal
        if wal.in_batch:
            raise StoreError("group commits do not nest")
        wal.begin_batch()
        try:
            yield
        finally:
            # An append failure inside the block already rolled the
            # batch back (in_batch is False) -- nothing left to sync.
            if wal.in_batch:
                try:
                    wal.commit_batch()
                except StorageIOError as exc:
                    raise self._fail(exc) from exc
                self.commit_applied()

    # ------------------------------------------------------------------
    # Compaction.
    # ------------------------------------------------------------------

    def checkpoint(self) -> CompactionReport:
        """Fold the WAL into a fresh snapshot and reset the log.

        Failure-atomic: the old snapshot and WAL stay fully intact
        unless the snapshot rename commits, and any I/O failure
        degrades the engine and raises
        :class:`~repro.errors.StorageIOError`.
        """
        if self._collection is None:
            raise StoreError("engine is not bound to a collection yet")
        self._check_writable()
        wal = self.wal
        temp = self._snapshot_path + ".tmp"
        try:
            wal_records = wal.records_since_reset
            wal_bytes = wal.size_bytes()
            lsn = wal.lsn
            encoded = encode_snapshot_wrapper(
                self._collection.snapshot(), lsn
            )
            handle = self._io.open(temp, "wb")
            try:
                self._io.write(handle, encoded)
                self._io.flush(handle)
                self._io.fsync(handle)
            finally:
                handle.close()
            self._io.replace(temp, self._snapshot_path)
            # Make the rename durable before the WAL reset discards the
            # records the new snapshot covers.
            self._io.fsync_dir(self._directory)
        except OSError as exc:
            try:  # pragma: no cover - best-effort temp cleanup
                if os.path.exists(temp):
                    os.remove(temp)
            except OSError:
                pass
            raise self._fail(
                StorageIOError(
                    f"{self._snapshot_path}: checkpoint failed ({exc}); the "
                    "previous snapshot and WAL remain intact"
                )
            ) from exc
        try:
            wal.reset(base_lsn=lsn)
        except StorageIOError as exc:
            # The new snapshot is durable and covers the old log, whose
            # records replay will skip by LSN -- consistent, but the
            # engine cannot promise further progress on this disk.
            raise self._fail(exc)
        return CompactionReport(
            wal_records=wal_records,
            wal_bytes=wal_bytes,
            snapshot_bytes=os.path.getsize(self._snapshot_path),
            lsn=lsn,
        )

    def close(self) -> None:
        if self._wal is not None:
            try:
                self._wal.close()
            except StorageIOError as exc:
                # Closing a degraded engine must not mask the original
                # failure with a new raise; the handle is released
                # regardless.
                self._fail(exc)

    def __repr__(self) -> str:
        health = "" if self._failed is None else ", degraded"
        return (
            f"DurableEngine({self._directory!r}, {self._name!r}, "
            f"sync={self._sync!r}{health})"
        )
