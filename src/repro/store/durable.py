"""The durable storage engine: WAL + snapshots behind ``StorageEngine``.

A :class:`DurableEngine` persists one collection as two files in a
database directory::

    <dir>/<name>.snapshot.json   last checkpoint (versioned snapshot
                                 payload wrapped with its covering LSN)
    <dir>/<name>.wal             every commit since that checkpoint

**Commit path.**  The collection calls the engine's commit hook after
staging and schema validation but before the in-memory apply; the hook
appends one frame (insert / remove / update post-images) and syncs per
the engine's policy.  A schema rejection therefore leaves no trace on
disk, and a crash after the append replays to exactly the state the
caller was acknowledged.

**Recovery.**  ``bind`` loads the snapshot (format- and
version-checked), replays WAL records with ``lsn`` greater than the
snapshot's covering LSN in sequence, and hands the collection a
:class:`~repro.store.engine.RecoveredState`.  Torn or corrupt WAL
tails were already truncated by :class:`~repro.store.wal.WriteAheadLog`;
a *well-formed* record that is malformed at the content level (unknown
op, missing fields) or breaks LSN contiguity is a writer bug or
targeted corruption and raises
:class:`~repro.errors.StorageFormatError` instead of being guessed at.
Snapshot documents no WAL record touched keep their persisted counted
index refcounts, so their postings load without re-walking the tree.

**Compaction.**  ``checkpoint()`` folds the log into a fresh snapshot:
write-temp + fsync + ``os.replace`` for the snapshot, then an atomic
WAL reset.  A crash between the two leaves stale WAL records whose
LSNs the new snapshot already covers -- replay skips them.  Passing
``compact_threshold=N`` checkpoints automatically every N commits.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import StorageFormatError, StoreError
from repro.store.engine import (
    RecoveredState,
    SnapshotData,
    StorageEngine,
    decode_snapshot,
)
from repro.store.indexes import decode_entry_counts
from repro.store.wal import WriteAheadLog

__all__ = ["DurableEngine", "CompactionReport"]

#: The ``format`` tag of the snapshot *file* (which wraps the
#: collection snapshot payload with the LSN it covers).
SNAPSHOT_FILE_FORMAT = "repro-durable-snapshot"
SNAPSHOT_FILE_VERSION = 1

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class CompactionReport:
    """What one checkpoint did: WAL bytes folded into the snapshot."""

    wal_records: int
    wal_bytes: int
    snapshot_bytes: int
    lsn: int


class DurableEngine(StorageEngine):
    """WAL + snapshot persistence for one named collection."""

    durable = True

    def __init__(
        self,
        directory: str,
        name: str = "main",
        *,
        sync: str = "fsync",
        compact_threshold: int | None = None,
    ) -> None:
        super().__init__()
        if not _NAME_RE.match(name):
            raise StoreError(
                f"invalid collection name {name!r} (letters, digits, "
                "'._-' only, must not start with a separator)"
            )
        if compact_threshold is not None and compact_threshold < 1:
            raise StoreError("compact_threshold must be a positive integer")
        self._directory = os.fspath(directory)
        self._name = name
        self._sync = sync
        self._threshold = compact_threshold
        os.makedirs(self._directory, exist_ok=True)
        self._snapshot_path = os.path.join(
            self._directory, f"{name}.snapshot.json"
        )
        self._wal_path = os.path.join(self._directory, f"{name}.wal")
        self._wal: WriteAheadLog | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise StoreError("engine is not bound to a collection yet")
        return self._wal

    # ------------------------------------------------------------------
    # Recovery (bind-time).
    # ------------------------------------------------------------------

    def _recover(self) -> RecoveredState | None:
        snapshot, snapshot_lsn = self._load_snapshot_file()
        self._wal = WriteAheadLog(
            self._wal_path, sync=self._sync, base_lsn=snapshot_lsn
        )
        records = self._wal.replayed
        self._wal.drop_replayed()
        if snapshot is None and not records:
            return None  # a genuinely fresh collection
        return self._replay(snapshot, snapshot_lsn, records)

    def _load_snapshot_file(self) -> tuple[SnapshotData | None, int]:
        if not os.path.exists(self._snapshot_path):
            return None, 0
        with open(self._snapshot_path, encoding="utf-8") as handle:
            try:
                wrapper = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StorageFormatError(
                    f"{self._snapshot_path}: not valid JSON ({exc})"
                ) from exc
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("format") != SNAPSHOT_FILE_FORMAT
        ):
            raise StorageFormatError(
                f"{self._snapshot_path}: not a durable-collection snapshot"
            )
        if wrapper.get("version") != SNAPSHOT_FILE_VERSION:
            raise StorageFormatError(
                f"{self._snapshot_path}: unsupported snapshot file version "
                f"{wrapper.get('version')!r} (this build reads "
                f"{SNAPSHOT_FILE_VERSION})"
            )
        lsn = wrapper.get("lsn")
        if not isinstance(lsn, int) or lsn < 0:
            raise StorageFormatError(
                f"{self._snapshot_path}: missing or invalid covering LSN"
            )
        return decode_snapshot(wrapper.get("collection")), lsn

    def _replay(
        self,
        snapshot: SnapshotData | None,
        snapshot_lsn: int,
        records: list[dict],
    ) -> RecoveredState:
        """Fold WAL records onto the snapshot in value space."""
        slots: dict[int, Any] = {}
        untouched: set[int] = set()
        next_id = 0
        ops = 0
        extended = False
        if snapshot is not None:
            slots.update(snapshot.docs)
            untouched.update(slots)
            next_id = snapshot.next_id
            ops = snapshot.ops
            extended = snapshot.extended
        expected = snapshot_lsn
        for record in records:
            lsn = record["lsn"]
            if lsn <= expected:
                continue  # pre-snapshot record from an interrupted compaction
            if lsn != expected + 1:
                raise StorageFormatError(
                    f"{self._wal_path}: LSN gap in committed records "
                    f"(expected {expected + 1}, found {lsn})"
                )
            try:
                op = record["op"]
                if op == "insert":
                    for doc_id, value in zip(
                        record["ids"], record["docs"], strict=True
                    ):
                        slots[doc_id] = value
                        untouched.discard(doc_id)
                        next_id = max(next_id, doc_id + 1)
                elif op == "remove":
                    del slots[record["id"]]
                    untouched.discard(record["id"])
                elif op == "update":
                    for doc_id, value in record["changes"]:
                        slots[doc_id] = value
                        untouched.discard(doc_id)
                else:
                    raise StorageFormatError(
                        f"{self._wal_path}: unknown WAL op {op!r} at LSN {lsn}"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                raise StorageFormatError(
                    f"{self._wal_path}: malformed committed record at "
                    f"LSN {lsn}: {exc}"
                ) from exc
            expected = lsn
            ops += 1
        entries = {}
        if snapshot is not None and snapshot.encoded_entries is not None:
            for doc_id in untouched:
                encoded = snapshot.encoded_entries.get(doc_id)
                if encoded is not None:
                    entries[doc_id] = decode_entry_counts(encoded)
        return RecoveredState(
            next_id=next_id,
            version=ops,
            extended=extended,
            docs=sorted(slots.items()),
            entries=entries,
        )

    # ------------------------------------------------------------------
    # Commit hooks.
    # ------------------------------------------------------------------

    def commit_insert(
        self, doc_ids: Sequence[int], values: Sequence[Any]
    ) -> None:
        self._append({"op": "insert", "ids": list(doc_ids), "docs": list(values)})

    def commit_remove(self, doc_id: int) -> None:
        self._append({"op": "remove", "id": doc_id})

    def commit_update(self, changes: Iterable[tuple[int, Any]]) -> None:
        self._append(
            {"op": "update", "changes": [[doc_id, value] for doc_id, value in changes]}
        )

    def _append(self, payload: dict) -> None:
        self.wal.append(payload)

    def commit_applied(self) -> None:
        # Auto-compaction must wait for the post-apply hook: a
        # checkpoint from inside a commit hook would snapshot memory
        # *without* the record just logged, then reset the WAL past it
        # -- silently dropping the acknowledged mutation.
        if (
            self._threshold is not None
            and self.wal.records_since_reset >= self._threshold
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # Compaction.
    # ------------------------------------------------------------------

    def checkpoint(self) -> CompactionReport:
        """Fold the WAL into a fresh snapshot and reset the log."""
        if self._collection is None:
            raise StoreError("engine is not bound to a collection yet")
        wal = self.wal
        wal_records = wal.records_since_reset
        wal_bytes = wal.size_bytes()
        lsn = wal.lsn
        wrapper = {
            "format": SNAPSHOT_FILE_FORMAT,
            "version": SNAPSHOT_FILE_VERSION,
            "lsn": lsn,
            "collection": self._collection.snapshot(),
        }
        temp = self._snapshot_path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(wrapper, handle, separators=(",", ":"), ensure_ascii=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._snapshot_path)
        wal.reset(base_lsn=lsn)
        return CompactionReport(
            wal_records=wal_records,
            wal_bytes=wal_bytes,
            snapshot_bytes=os.path.getsize(self._snapshot_path),
            lsn=lsn,
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __repr__(self) -> str:
        return (
            f"DurableEngine({self._directory!r}, {self._name!r}, "
            f"sync={self._sync!r})"
        )
