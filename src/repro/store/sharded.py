"""Sharded collections: hash partitioning + scatter-gather execution.

The third storage flavour behind the :class:`~repro.store.engine.
StorageEngine` seam (memory | durable | **sharded**): a
:class:`ShardedCollection` hash-partitions documents by doc-id across N
ordinary :class:`~repro.store.collection.Collection` shards -- each
with its own secondary indexes and (under a ``path``) its own durable
WAL + snapshot files -- and a :class:`ShardedEngine` coordinates them,
either **serially** in-process or **in parallel** through a persistent
``multiprocessing`` worker pool (one process per shard, spawn-safe,
with the serial path as the fallback for N=1 and for platforms whose
pool cannot start).

Document ids are *global*: the coordinator assigns monotonically
increasing ids and routes each to ``shard_of(doc_id)``; a shard stores
its documents under their global ids (sparse slots -- the WAL replay
and snapshot formats already support gaps), so query results merge by
doc-id into exactly the single-collection answer order.

Execution is scatter-gather throughout.  ``find``/``count``/
``match_ids`` fan the planner out per shard and k-way merge the rows;
``aggregate`` fans out the map-side share of a compiled pipeline (the
leading index-pruned ``$match`` plus every per-row stage, with
``$group`` folded into mergeable partial accumulator states and
``$sort`` into locally sorted runs) and merges at the coordinator --
see :meth:`repro.mongo.aggregate.CompiledPipeline.execute_partial`.
Writes route too: ``update_many`` broadcasts (each shard maintains its
own index deltas), single-document writes scatter a first-match probe
and send the write to the owning shard, and upserts seed at the
coordinator and route through the normal insert path.

Both execution modes run the *same* shard-operation functions (the
``_WORKER_OPS`` table); the parallel mode merely moves them into the
worker processes, with plain picklable payloads -- filter/pipeline
JSON, never compiled objects -- crossing the pipe, and each worker
compiling through its own process-wide artifact cache.

On disk a sharded collection owns a directory::

    <path>/sharding.json      # shard count + format tag
    <path>/shard-00.wal       # one ordinary durable collection
    <path>/shard-00.snapshot.json
    <path>/shard-01.wal
    ...

so each shard recovers independently through the ordinary
:class:`~repro.store.durable.DurableEngine` replay, and
``fsck.verify``/``repair`` cover every shard via their normal
per-collection file discovery.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
from dataclasses import replace
from typing import Any, Callable, Iterable, Iterator

from repro.errors import StorageFormatError, StoreError
from repro.model.tree import JSONTree, JSONValue
from repro.query import optimizer, planner
from repro.query.compiled import compile_mongo_find
from repro.query.optimizer import SemanticContext, check_optimize_mode
from repro.store.collection import Collection, _compile_schema, _no_semantic
from repro.store.durable import DurableEngine
from repro.store.engine import EngineHealth, MemoryEngine

__all__ = [
    "SHARDING_META",
    "SHARDING_FORMAT",
    "SHARDING_VERSION",
    "shard_of",
    "shard_name",
    "ShardedEngine",
    "ShardedCollection",
    "sharded_collection",
]

SHARDING_META = "sharding.json"
SHARDING_FORMAT = "repro-sharded-v1"
SHARDING_VERSION = 1


def shard_of(doc_id: int, shard_count: int) -> int:
    """The shard owning a document id (hash partitioning by id)."""
    return doc_id % shard_count


def shard_name(index: int) -> str:
    """The collection name of one shard (``shard-00``, ``shard-01``...)."""
    return f"shard-{index:02d}"


# ---------------------------------------------------------------------------
# Shard operations: one function per RPC op, shared by both modes.
# ---------------------------------------------------------------------------


def _op_insert(collection: Collection, payload: Any) -> None:
    collection.insert_many(payload["docs"], ids=payload["ids"])


def _op_remove(collection: Collection, payload: Any) -> JSONValue:
    return collection.remove(payload).to_value()


def _op_get(collection: Collection, payload: Any) -> JSONValue:
    return collection.get(payload).to_value()


def _op_contains(collection: Collection, payload: Any) -> bool:
    return payload in collection


def _op_meta(collection: Collection, payload: Any) -> dict[str, int]:
    ids = collection.doc_ids()
    return {
        "alive": len(collection),
        "next_id": ids[-1] + 1 if ids else 0,
    }


def _op_doc_ids(collection: Collection, payload: Any) -> list[int]:
    return collection.doc_ids()


def _op_values(collection: Collection, payload: Any) -> list:
    return [
        (doc_id, tree.to_value()) for doc_id, tree in collection.documents()
    ]


def _op_find(collection: Collection, payload: Any) -> list:
    query = compile_mongo_find(payload["filter"], payload["projection"])
    return planner.find_rows(
        collection, query, no_semantic=payload.get("no_semantic", False)
    )


def _op_count(collection: Collection, payload: Any) -> int:
    return planner.count_matches(
        collection,
        compile_mongo_find(payload["filter"]),
        no_semantic=payload.get("no_semantic", False),
    )


def _op_match_ids(collection: Collection, payload: Any) -> list[int]:
    return planner.match_ids(
        collection,
        compile_mongo_find(payload["filter"]),
        no_semantic=payload.get("no_semantic", False),
    )


def _op_explain(collection: Collection, payload: Any):
    hint = (
        {"no_semantic": True} if payload.get("no_semantic") else None
    )
    return collection.explain(payload["filter"], hint=hint)


def _op_agg_partial(collection: Collection, payload: Any) -> dict[str, Any]:
    from repro.mongo.aggregate import partial_aggregate

    return partial_aggregate(collection, payload)


def _op_first_match(collection: Collection, payload: Any) -> int | None:
    from repro.mongo.update import first_match_id

    return first_match_id(collection, payload)


def _op_update_many(collection: Collection, payload: Any) -> tuple[int, int]:
    result = collection.update_many(
        payload["filter"],
        payload["update"],
        maintenance=payload["maintenance"],
    )
    return result.matched_count, result.modified_count


def _op_update_one(collection: Collection, payload: Any) -> tuple[int, int]:
    result = collection.update_one(payload["filter"], payload["update"])
    return result.matched_count, result.modified_count


def _op_replace_one(collection: Collection, payload: Any) -> tuple[int, int]:
    result = collection.replace_one(payload["filter"], payload["replacement"])
    return result.matched_count, result.modified_count


def _op_explain_update(collection: Collection, payload: Any):
    hint = (
        {"no_semantic": True} if payload.get("no_semantic") else None
    )
    return collection.explain_update(
        payload["filter"],
        payload["update"],
        first_only=payload["first_only"],
        hint=hint,
    )


def _op_checkpoint(collection: Collection, payload: Any):
    return collection.compact()


def _op_health(collection: Collection, payload: Any) -> EngineHealth:
    return collection.health


_WORKER_OPS: dict[str, Callable[[Collection, Any], Any]] = {
    "insert": _op_insert,
    "remove": _op_remove,
    "get": _op_get,
    "contains": _op_contains,
    "meta": _op_meta,
    "doc_ids": _op_doc_ids,
    "values": _op_values,
    "find": _op_find,
    "count": _op_count,
    "match_ids": _op_match_ids,
    "explain": _op_explain,
    "agg_partial": _op_agg_partial,
    "first_match": _op_first_match,
    "update_many": _op_update_many,
    "update_one": _op_update_one,
    "replace_one": _op_replace_one,
    "explain_update": _op_explain_update,
    "checkpoint": _op_checkpoint,
    "health": _op_health,
}


def _build_shard(config: dict[str, Any]) -> Collection:
    """One shard's ordinary Collection, from a picklable config."""
    if config["path"] is None:
        engine: Any = MemoryEngine()
    else:
        engine = DurableEngine(
            config["path"], config["name"], sync=config["sync"]
        )
    return Collection(
        engine=engine,
        schema=config["schema"],
        extended=config["extended"],
        indexed=config["indexed"],
        optimize=config.get("optimize", "on"),
    )


def _safe_error(exc: BaseException) -> Exception:
    """An exception that survives pickling (fall back to a summary)."""
    if not isinstance(exc, Exception):
        return StoreError(f"{type(exc).__name__}: {exc}")
    try:
        import pickle

        pickle.loads(pickle.dumps(exc))
    except Exception:
        return StoreError(f"{type(exc).__name__}: {exc}")
    return exc


def _worker_main(conn: Any, config: dict[str, Any]) -> None:
    """A shard worker: recover the shard, then serve ops until 'stop'.

    Module-level (not a closure) so the ``spawn`` start method can
    import it; the ready handshake surfaces recovery errors eagerly.
    """
    try:
        collection = _build_shard(config)
    except BaseException as exc:
        conn.send(("err", _safe_error(exc)))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        if op == "stop":
            try:
                collection.close()
            except Exception:
                pass
            conn.send(("ok", None))
            break
        handler = _WORKER_OPS.get(op)
        try:
            if handler is None:
                raise StoreError(f"unknown shard op {op!r}")
            result = handler(collection, payload)
        except BaseException as exc:
            conn.send(("err", _safe_error(exc)))
        else:
            try:
                conn.send(("ok", result))
            except Exception as exc:  # unpicklable result
                conn.send(("err", _safe_error(exc)))
    conn.close()


class _WorkerHandle:
    """Coordinator-side handle on one shard worker process."""

    __slots__ = ("process", "conn")

    def __init__(self, context: Any, config: dict[str, Any]) -> None:
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child_conn, config), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.receive()  # the ready handshake (raises on recovery failure)

    def send(self, op: str, payload: Any) -> None:
        self.conn.send((op, payload))

    def receive(self) -> Any:
        try:
            kind, data = self.conn.recv()
        except (EOFError, OSError):
            raise StoreError(
                "shard worker died (connection closed mid-request)"
            ) from None
        if kind == "err":
            raise data
        return data

    def stop(self) -> None:
        try:
            self.send("stop", None)
            self.receive()
        except Exception:
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()


def _resolve_context(start_method: str | None) -> Any:
    """A multiprocessing context, preferring ``fork`` where available
    (cheap worker start, inherited imports); ``spawn`` elsewhere."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardedEngine:
    """The coordinator: one engine/worker per shard plus the routing.

    Owns the shard layout (the ``sharding.json`` meta under a durable
    ``path``), builds the per-shard collections -- in-process for the
    serial mode, inside persistent worker processes for the parallel
    mode -- and exposes the request/scatter primitives every
    :class:`ShardedCollection` operation is built from.  ``scatter``
    sends to all workers before receiving from any, so shard work
    genuinely overlaps in parallel mode.
    """

    def __init__(
        self,
        shard_count: int | None = None,
        *,
        path: str | None = None,
        schema: Any = None,
        extended: bool = False,
        indexed: bool = True,
        sync: str = "fsync",
        parallel: bool | str = "auto",
        start_method: str | None = None,
        optimize: str = "on",
    ) -> None:
        self._path = os.fspath(path) if path is not None else None
        self._closed = False
        resolved = self._resolve_layout(shard_count, extended)
        if resolved < 1:
            raise StoreError(f"shard count must be >= 1, got {resolved}")
        self._shard_count = resolved
        self._configs = [
            {
                "path": self._path,
                "name": shard_name(index),
                "schema": schema,
                "extended": extended,
                "indexed": indexed,
                "sync": sync,
                "optimize": check_optimize_mode(optimize),
            }
            for index in range(resolved)
        ]
        if parallel == "auto":
            parallel = resolved > 1
        self._workers: list[_WorkerHandle] | None = None
        self._shards: list[Collection] | None = None
        if parallel:
            try:
                context = _resolve_context(start_method)
                workers: list[_WorkerHandle] = []
                try:
                    for config in self._configs:
                        workers.append(_WorkerHandle(context, config))
                except Exception:
                    for worker in workers:
                        worker.stop()
                    raise
                self._workers = workers
            except Exception:
                # No usable multiprocessing here (missing fork/spawn
                # support, an unimportable __main__, a sandboxed
                # platform): the serial in-process mode is the
                # documented fallback.  A genuine per-shard recovery
                # error reproduces on the serial build below and
                # surfaces from there.
                self._workers = None
        if self._workers is None:
            self._shards = [_build_shard(config) for config in self._configs]

    # ------------------------------------------------------------------

    def _resolve_layout(
        self, shard_count: int | None, extended: bool
    ) -> int:
        """Adopt or create the on-disk ``sharding.json`` meta."""
        if self._path is None:
            return 4 if shard_count is None else shard_count
        os.makedirs(self._path, exist_ok=True)
        meta_path = os.path.join(self._path, SHARDING_META)
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError) as exc:
                raise StorageFormatError(
                    f"unreadable sharding meta {meta_path}: {exc}"
                ) from exc
            if (
                not isinstance(meta, dict)
                or meta.get("format") != SHARDING_FORMAT
                or meta.get("version") != SHARDING_VERSION
                or not isinstance(meta.get("shards"), int)
            ):
                raise StorageFormatError(
                    f"unrecognised sharding meta in {meta_path}"
                )
            on_disk = meta["shards"]
            if shard_count is not None and shard_count != on_disk:
                raise StorageFormatError(
                    f"database at {self._path} has {on_disk} shards; "
                    f"rebalancing to {shard_count} is not supported"
                )
            return on_disk
        resolved = 4 if shard_count is None else shard_count
        if resolved >= 1:
            meta = {
                "format": SHARDING_FORMAT,
                "version": SHARDING_VERSION,
                "shards": resolved,
                "extended": extended,
            }
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return resolved

    # ------------------------------------------------------------------
    # The RPC primitives.
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def parallel(self) -> bool:
        return self._workers is not None

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def shards(self) -> list[Collection] | None:
        """The in-process shard collections (serial mode only)."""
        return self._shards

    def request(self, index: int, op: str, payload: Any) -> Any:
        """Run one op on one shard, returning its result."""
        if self._workers is not None:
            worker = self._workers[index]
            worker.send(op, payload)
            return worker.receive()
        return _WORKER_OPS[op](self._shards[index], payload)

    def scatter(self, op: str, payloads: list[Any]) -> list[Any]:
        """Run one op on every shard (payloads aligned by index).

        Parallel mode sends every request before receiving any reply,
        so the shards execute concurrently; errors re-raise after all
        replies drain, keeping the pipes in lock-step.
        """
        if len(payloads) != self._shard_count:
            raise StoreError(
                f"scatter got {len(payloads)} payloads for "
                f"{self._shard_count} shards"
            )
        if self._workers is None:
            return [
                _WORKER_OPS[op](shard, payload)
                for shard, payload in zip(self._shards, payloads)
            ]
        for worker, payload in zip(self._workers, payloads):
            worker.send(op, payload)
        results: list[Any] = []
        first_error: BaseException | None = None
        for worker in self._workers:
            try:
                results.append(worker.receive())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def broadcast(self, op: str, payload: Any = None) -> list[Any]:
        """Run one op with the same payload on every shard."""
        return self.scatter(op, [payload] * self._shard_count)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def health(self) -> list[EngineHealth]:
        return self.broadcast("health")

    def checkpoint(self) -> list[Any]:
        """Checkpoint every shard (per-shard CompactionReports)."""
        return self.broadcast("checkpoint")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._workers is not None:
            for worker in self._workers:
                worker.stop()
            return
        for shard in self._shards:
            shard.close()

    def __repr__(self) -> str:
        mode = "parallel" if self.parallel else "serial"
        where = f"path={self._path!r}" if self._path else "memory"
        return (
            f"ShardedEngine(shards={self._shard_count}, {mode}, {where})"
        )


class ShardedCollection:
    """A hash-partitioned collection with scatter-gather execution.

    The public surface mirrors :class:`~repro.store.collection.
    Collection` -- ``insert_many``/``find``/``count``/``aggregate``/
    ``update_many``/``update_one``/``replace_one``/``explain_aggregate``
    -- with identical results (the randomised differential suite pits
    the two against each other), executed across the shards of a
    :class:`ShardedEngine`.  Global doc-ids are assigned here and
    routed by :func:`shard_of`; with schema enforcement on, batches
    validate at the coordinator *before* scattering, so a rejection
    leaves every shard untouched (shards re-validate defensively on
    their own write paths).
    """

    def __init__(
        self,
        documents: Iterable["JSONTree | JSONValue"] = (),
        *,
        shards: int | None = None,
        path: str | None = None,
        schema: Any = None,
        extended: bool = False,
        indexed: bool = True,
        sync: str = "fsync",
        parallel: bool | str = "auto",
        start_method: str | None = None,
        engine: ShardedEngine | None = None,
        optimize: str = "on",
    ) -> None:
        self._optimize = check_optimize_mode(optimize)
        if engine is None:
            engine = ShardedEngine(
                shards,
                path=path,
                schema=schema,
                extended=extended,
                indexed=indexed,
                sync=sync,
                parallel=parallel,
                start_method=start_method,
                optimize=self._optimize,
            )
        self._engine = engine
        self._extended = extended
        if schema is not None:
            self._validator, self._schema_ast, self._schema_source = (
                _compile_schema(schema)
            )
        else:
            self._validator = None
            self._schema_ast = None
            self._schema_source = None
        self._schema_formula: Any = None
        metas = engine.broadcast("meta")
        self._next_id = max(meta["next_id"] for meta in metas)
        documents = list(documents)
        if documents:
            self.insert_many(documents)

    # ------------------------------------------------------------------
    # Ingestion and removal.
    # ------------------------------------------------------------------

    def insert_many(
        self, documents: Iterable["JSONTree | JSONValue"]
    ) -> list[int]:
        """Ingest a batch: assign global ids, validate once at the
        coordinator, scatter each shard its slice."""
        values = [
            doc.to_value() if isinstance(doc, JSONTree) else doc
            for doc in documents
        ]
        if self._validator is not None and values:
            # Coordinator-side validation keeps the batch atomic
            # across shards: a rejection happens before any scatter.
            from repro.errors import DocumentRejectedError
            from repro.validate.bulk import validate_corpus

            trees = JSONTree.from_values(values, extended=self._extended)
            report = validate_corpus(self._validator, trees, early_exit=True)
            if not report.all_valid:
                assert report.first_invalid is not None
                raise DocumentRejectedError(report.first_invalid)
        ids = list(range(self._next_id, self._next_id + len(values)))
        count = self._engine.shard_count
        payloads = [{"ids": [], "docs": []} for _ in range(count)]
        for doc_id, value in zip(ids, values):
            payload = payloads[shard_of(doc_id, count)]
            payload["ids"].append(doc_id)
            payload["docs"].append(value)
        self._engine.scatter("insert", payloads)
        self._next_id += len(values)
        return ids

    def insert(self, document: "JSONTree | JSONValue") -> int:
        return self.insert_many([document])[0]

    def remove(self, doc_id: int) -> JSONValue:
        """Remove a document by id on its owning shard; returns its
        value (a sharded collection never materialises trees here)."""
        owner = shard_of(doc_id, self._engine.shard_count)
        return self._engine.request(owner, "remove", doc_id)

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            meta["alive"] for meta in self._engine.broadcast("meta")
        )

    def __contains__(self, doc_id: int) -> bool:
        if not isinstance(doc_id, int) or doc_id < 0:
            return False
        owner = shard_of(doc_id, self._engine.shard_count)
        return self._engine.request(owner, "contains", doc_id)

    def get_value(self, doc_id: int) -> JSONValue:
        """The document under a global id, as a plain value."""
        owner = shard_of(doc_id, self._engine.shard_count)
        return self._engine.request(owner, "get", doc_id)

    def doc_ids(self) -> list[int]:
        return list(heapq.merge(*self._engine.broadcast("doc_ids")))

    def values(self) -> Iterator[tuple[int, JSONValue]]:
        """Live ``(doc_id, value)`` pairs in global id order."""
        return heapq.merge(*self._engine.broadcast("values"))

    @property
    def engine(self) -> ShardedEngine:
        return self._engine

    @property
    def shard_count(self) -> int:
        return self._engine.shard_count

    @property
    def parallel(self) -> bool:
        return self._engine.parallel

    @property
    def path(self) -> str | None:
        return self._engine.path

    @property
    def extended(self) -> bool:
        return self._extended

    @property
    def schema_enforced(self) -> bool:
        return self._validator is not None

    @property
    def optimize(self) -> str:
        """The semantic-optimizer knob (``on``/``off``/``proof-only``)."""
        return self._optimize

    @property
    def semantic_context(self) -> SemanticContext | None:
        """The coordinator-side semantic premise: the enforced schema.

        The coordinator proves a verdict once per query and the shards
        inherit it through the scatter payloads; only schema premises
        apply here (a coordinator holds no documents, so there is no
        structural summary to infer -- shards keep their own).  The
        fingerprint is the canonical schema text, so coordinator and
        shard verdicts share one cache entry per schema.
        """
        if self._optimize == "off" or self._extended:
            return None
        if self._schema_ast is None:
            return None
        formula = self._schema_formula
        if formula is None:
            from repro.errors import SchemaError
            from repro.schema.to_jsl import schema_to_jsl

            try:
                formula = schema_to_jsl(self._schema_ast)
            except SchemaError:
                formula = False  # untranslatable: remember, skip
            self._schema_formula = formula
        if formula is False:
            return None
        return SemanticContext(
            mode=self._optimize,
            source="schema",
            fingerprint=("schema", self._schema_source),
            formula=formula,
        )

    @property
    def health(self) -> list[EngineHealth]:
        """Per-shard engine health (a degraded shard rejects writes)."""
        return self._engine.health()

    # ------------------------------------------------------------------
    # Querying (scatter the planner, merge by global doc-id).
    # ------------------------------------------------------------------

    def _read_decision(
        self, filter_doc: dict[str, Any], no_semantic: bool
    ) -> "optimizer.SemanticDecision | None":
        """The coordinator's one-proof verdict for a scatter read."""
        try:
            query = compile_mongo_find(filter_doc)
        except Exception:
            return None
        return optimizer.semantic_plan(self, query, no_semantic=no_semantic)

    def find_rows(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[tuple[int, JSONValue]]:
        """``(doc_id, projected value)`` pairs across all shards, in
        global id order (ids are unique, so the merge is total)."""
        no_semantic = _no_semantic(hint)
        decision = self._read_decision(filter_doc, no_semantic)
        if optimizer.effective_kind(decision) == "empty":
            return []  # the schema refutes the filter: no scatter at all
        runs = self._engine.broadcast(
            "find",
            {
                "filter": filter_doc,
                "projection": projection,
                "no_semantic": no_semantic,
            },
        )
        return list(heapq.merge(*runs))

    def find(
        self,
        filter_doc: dict[str, Any],
        projection: dict[str, Any] | None = None,
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[JSONValue]:
        """MongoDB's ``find``, scatter-gathered: identical rows and
        order to the single-collection planner path."""
        return [
            value
            for _, value in self.find_rows(filter_doc, projection, hint=hint)
        ]

    def count(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> int:
        no_semantic = _no_semantic(hint)
        decision = self._read_decision(filter_doc, no_semantic)
        kind = optimizer.effective_kind(decision)
        if kind == "empty":
            return 0
        if kind == "all":
            return len(self)  # one cheap meta scatter, no query work
        return sum(
            self._engine.broadcast(
                "count", {"filter": filter_doc, "no_semantic": no_semantic}
            )
        )

    def match_ids(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> list[int]:
        """Ids matching a Mongo find filter, in global id order."""
        no_semantic = _no_semantic(hint)
        decision = self._read_decision(filter_doc, no_semantic)
        if optimizer.effective_kind(decision) == "empty":
            return []
        return list(
            heapq.merge(
                *self._engine.broadcast(
                    "match_ids",
                    {"filter": filter_doc, "no_semantic": no_semantic},
                )
            )
        )

    def explain(
        self,
        filter_doc: dict[str, Any],
        *,
        hint: dict[str, Any] | None = None,
    ) -> list:
        """Per-shard find explains (one ``Explain`` each, tagged with
        its shard index)."""
        reports = self._engine.broadcast(
            "explain",
            {"filter": filter_doc, "no_semantic": _no_semantic(hint)},
        )
        return [
            replace(report, shard=index)
            for index, report in enumerate(reports)
        ]

    def aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ) -> list[JSONValue]:
        """MongoDB's ``aggregate``, scatter-gathered: map-side partial
        stages per shard, merge-finalize at the coordinator."""
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).execute(
            self, no_semantic=_no_semantic(hint)
        )

    def explain_aggregate(
        self, pipeline: list, *, hint: dict[str, Any] | None = None
    ):
        """The fleet-wide aggregation :class:`~repro.explain.Explain`,
        including per-shard pruning stats and the coordinator's
        semantic verdict."""
        from repro.mongo.aggregate import compile_pipeline

        return compile_pipeline(pipeline).explain(
            self, no_semantic=_no_semantic(hint)
        )

    def scatter_partial_aggregate(self, payload: "list | dict") -> list[dict]:
        """Fan a pipeline's map-side share out to every shard.

        The hook :meth:`CompiledPipeline.execute`/``explain`` detect:
        ships the pipeline *source* (workers compile through their own
        artifact caches) plus the coordinator's semantic verdict for
        the shards to inherit, and returns one picklable partial per
        shard.  A bare pipeline list means "decide locally".
        """
        return self._engine.broadcast("agg_partial", payload)

    # ------------------------------------------------------------------
    # Writes (shard-routed, per-shard delta index maintenance).
    # ------------------------------------------------------------------

    def update_many(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
        maintenance: str = "delta",
    ):
        """Update every matching document, shard-local everywhere:
        each shard selects its own targets through its own indexes and
        maintains its own postings delta."""
        from repro.mongo.update import (
            UpdateResult,
            compile_update,
            upsert_into,
        )

        counts = self._engine.broadcast(
            "update_many",
            {
                "filter": filter_doc,
                "update": update_doc,
                "maintenance": maintenance,
            },
        )
        matched = sum(pair[0] for pair in counts)
        modified = sum(pair[1] for pair in counts)
        if matched == 0 and upsert:
            return upsert_into(self, filter_doc, compile_update(update_doc))
        return UpdateResult(matched, modified)

    def update_one(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        upsert: bool = False,
    ):
        """Update the first match in *global* id order: scatter a
        first-match probe, route the write to the owning shard."""
        from repro.mongo.update import (
            UpdateResult,
            compile_update,
            upsert_into,
        )

        owner = self._first_match_owner(filter_doc)
        if owner is None:
            if upsert:
                return upsert_into(
                    self, filter_doc, compile_update(update_doc)
                )
            return UpdateResult(0, 0)
        matched, modified = self._engine.request(
            owner, "update_one", {"filter": filter_doc, "update": update_doc}
        )
        return UpdateResult(matched, modified)

    def replace_one(
        self,
        filter_doc: dict[str, Any],
        replacement: dict[str, Any],
        *,
        upsert: bool = False,
    ):
        """Replace the first match in global id order wholesale."""
        from repro.mongo.update import (
            UpdateResult,
            compile_replacement,
            upsert_into,
        )

        compiled = compile_replacement(replacement)  # validate eagerly
        owner = self._first_match_owner(filter_doc)
        if owner is None:
            if upsert:
                return upsert_into(self, filter_doc, compiled)
            return UpdateResult(0, 0)
        matched, modified = self._engine.request(
            owner,
            "replace_one",
            {"filter": filter_doc, "replacement": replacement},
        )
        return UpdateResult(matched, modified)

    def _first_match_owner(self, filter_doc: dict[str, Any]) -> int | None:
        """The shard holding the globally first matching document.

        The global minimum over per-shard first matches is that shard's
        local first match too, so the routed single-document write hits
        exactly the document the unsharded path would have.
        """
        firsts = self._engine.broadcast("first_match", filter_doc)
        best: tuple[int, int] | None = None
        for index, doc_id in enumerate(firsts):
            if doc_id is not None and (best is None or doc_id < best[0]):
                best = (doc_id, index)
        return None if best is None else best[1]

    def explain_update(
        self,
        filter_doc: dict[str, Any],
        update_doc: dict[str, Any],
        *,
        first_only: bool = False,
        hint: dict[str, Any] | None = None,
    ) -> list:
        """Per-shard dry-run reports (one update ``Explain`` each,
        tagged with its shard index)."""
        reports = self._engine.broadcast(
            "explain_update",
            {
                "filter": filter_doc,
                "update": update_doc,
                "first_only": first_only,
                "no_semantic": _no_semantic(hint),
            },
        )
        return [
            replace(report, shard=index)
            for index, report in enumerate(reports)
        ]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def compact(self) -> list[Any]:
        """Checkpoint every shard; per-shard reports (None in memory)."""
        return self._engine.checkpoint()

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "ShardedCollection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedCollection(shards={self.shard_count}, "
            f"{'parallel' if self.parallel else 'serial'}, "
            f"next_id={self._next_id})"
        )


def sharded_collection(
    documents: Iterable["JSONTree | JSONValue"] = (),
    *,
    shards: int = 4,
    parallel: bool | str = "auto",
    **kwargs: Any,
) -> ShardedCollection:
    """Deprecated spelling of ``repro.api.collection(..., shards=N)``
    (or ``repro.api.connect(path, shards=N)`` for durable ones)."""
    import warnings

    warnings.warn(
        "repro.store.sharded_collection is deprecated; use "
        "repro.api.collection(..., shards=N) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return ShardedCollection(
        documents, shards=shards, parallel=parallel, **kwargs
    )
