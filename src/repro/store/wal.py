"""Append-only write-ahead log: length-prefixed, CRC-checked frames.

The on-disk format is deliberately boring::

    file  = magic frame*
    magic = b"RPROWAL1"                 (8 bytes)
    frame = length:u32be crc:u32be payload
            where length = len(payload), crc = crc32(payload)
            and payload is one UTF-8 JSON object

Every payload carries a monotonically increasing ``lsn`` (log sequence
number, assigned by :meth:`WriteAheadLog.append`); the record body is
the engine's business (:mod:`repro.store.durable` logs insert/remove/
update records).

Recovery is prefix-truncation: :class:`WriteAheadLog` re-reads the file
on open and stops at the first frame that is short (torn write), fails
its CRC, or is not valid JSON -- everything before it is the committed
prefix, everything from it on is truncated away.  A torn or corrupt
tail is therefore *never* fatal: the log reopens to the longest
committed prefix.  A file that does not start with the magic is
refused loudly (:class:`~repro.errors.StorageFormatError`) -- that is
not a torn tail but a foreign or incompatibly-versioned file, and
truncating it would destroy data this code does not understand.

Durability is a per-log policy (``sync=``):

* ``"fsync"`` (default) -- flush + ``os.fsync`` after every append;
  a commit acknowledged is a commit on the platter.
* ``"flush"`` -- flush to the OS page cache; survives process crash,
  not power loss.
* ``"none"`` -- buffered; flushed on :meth:`sync`/:meth:`close`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

from repro.errors import StorageFormatError, StoreError

__all__ = ["WAL_MAGIC", "SYNC_MODES", "WriteAheadLog"]

WAL_MAGIC = b"RPROWAL1"

_FRAME_HEADER = struct.Struct(">II")  # payload length, payload crc32

#: Sanity ceiling on one frame (a length field beyond this is treated
#: as tail corruption, not an allocation request).
_MAX_FRAME_BYTES = 1 << 30

SYNC_MODES = ("fsync", "flush", "none")


def _dump(payload: dict) -> bytes:
    return json.dumps(
        payload, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


class WriteAheadLog:
    """One append-only log file with replay-on-open.

    Opening scans the existing file: well-formed frames become
    :attr:`replayed` (for the engine to apply), and the first torn or
    corrupt frame truncates the file back to the committed prefix.
    ``append`` then continues from the recovered tail LSN.
    """

    def __init__(
        self, path: str, *, sync: str = "fsync", base_lsn: int = 0
    ) -> None:
        if sync not in SYNC_MODES:
            raise StoreError(
                f"unknown WAL sync mode {sync!r} (expected one of {SYNC_MODES})"
            )
        self.path = os.fspath(path)
        self._sync_mode = sync
        self.replayed: list[dict] = []
        self.truncated_bytes = 0
        self._lsn = 0
        self._recover_file()
        # The log file does not persist its base LSN (a post-compaction
        # reset leaves just the magic): the owner passes the covering
        # LSN of its snapshot so fresh appends continue *above* it --
        # otherwise a reopened, freshly-reset log would reissue LSNs
        # the snapshot already covers and replay would skip the new
        # records as stale.
        self._lsn = max(self._lsn, base_lsn)
        # Replayed records count against the compaction threshold too:
        # a reopened log keeps its backlog.
        self._records_since_reset = len(self.replayed)
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def _recover_file(self) -> None:
        """Scan (or create) the log; truncate any torn/corrupt tail."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = -1
        if size < len(WAL_MAGIC):
            # Absent, or torn during creation before the magic landed:
            # either way there is no committed frame to preserve.
            with open(self.path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            return
        with open(self.path, "rb") as handle:
            magic = handle.read(len(WAL_MAGIC))
            if magic != WAL_MAGIC:
                raise StorageFormatError(
                    f"{self.path}: not a repro WAL file "
                    f"(bad magic {magic!r})"
                )
            good = handle.tell()
            while True:
                header = handle.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size:
                    break  # clean EOF or torn header
                length, crc = _FRAME_HEADER.unpack(header)
                if length > _MAX_FRAME_BYTES:
                    break  # corrupt length field
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn payload
                if zlib.crc32(payload) != crc:
                    break  # bit rot / torn overwrite
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                if not isinstance(record, dict) or not isinstance(
                    record.get("lsn"), int
                ):
                    break
                self.replayed.append(record)
                good = handle.tell()
        if good < size:
            self.truncated_bytes = size - good
            with open(self.path, "r+b") as handle:
                handle.truncate(good)
                handle.flush()
                os.fsync(handle.fileno())
        if self.replayed:
            self._lsn = self.replayed[-1]["lsn"]

    def drop_replayed(self) -> None:
        """Free the replay buffer once the engine has consumed it."""
        self.replayed = []

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Frame, write and (per policy) sync one record; returns its LSN.

        The ``lsn`` field is injected here -- callers supply only the
        record body.  When this method returns under ``sync="fsync"``,
        the record is durable.
        """
        lsn = self._lsn + 1
        body = _dump({"lsn": lsn, **payload})
        frame = _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body
        self._handle.write(frame)
        if self._sync_mode == "fsync":
            self._handle.flush()
            os.fsync(self._handle.fileno())
        elif self._sync_mode == "flush":
            self._handle.flush()
        self._lsn = lsn
        self._records_since_reset += 1
        return lsn

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Introspection and maintenance.
    # ------------------------------------------------------------------

    @property
    def lsn(self) -> int:
        """The LSN of the last record written (or recovered)."""
        return self._lsn

    @property
    def records_since_reset(self) -> int:
        """Appends since open/reset (the auto-compaction trigger)."""
        return self._records_since_reset

    def size_bytes(self) -> int:
        self._handle.flush()
        return os.path.getsize(self.path)

    def reset(self, *, base_lsn: int) -> None:
        """Replace the log with an empty one (post-compaction).

        Atomic via write-temp + :func:`os.replace`: a crash leaves
        either the old log (whose records the snapshot already covers
        and replay will skip by LSN) or the new empty one.
        """
        self._handle.close()
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        self._handle = open(self.path, "ab")
        self._lsn = base_lsn
        self._records_since_reset = 0

    def close(self) -> None:
        if not self._handle.closed:
            if self._sync_mode != "none":
                self.sync()
            self._handle.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, lsn={self._lsn}, "
            f"sync={self._sync_mode!r})"
        )
