"""Append-only write-ahead log: length-prefixed, CRC-checked frames.

The on-disk format is deliberately boring::

    file  = magic frame*
    magic = b"RPROWAL1"                 (8 bytes)
    frame = length:u32be crc:u32be payload
            where length = len(payload), crc = crc32(payload)
            and payload is one UTF-8 JSON object

Every payload carries a monotonically increasing ``lsn`` (log sequence
number, assigned by :meth:`WriteAheadLog.append`); the record body is
the engine's business (:mod:`repro.store.durable` logs insert/remove/
update records).

Recovery is prefix-truncation: :class:`WriteAheadLog` re-reads the file
on open and stops at the first frame that is short (torn write), fails
its CRC, or is not valid JSON -- everything before it is the committed
prefix, everything from it on is truncated away.  A torn or corrupt
tail is therefore *never* fatal: the log reopens to the longest
committed prefix.  A file that does not start with the magic is
refused loudly (:class:`~repro.errors.StorageFormatError`) -- that is
not a torn tail but a foreign or incompatibly-versioned file, and
truncating it would destroy data this code does not understand.

Durability is a per-log policy (``sync=``):

* ``"fsync"`` (default) -- flush + ``os.fsync`` after every append;
  a commit acknowledged is a commit on the platter.
* ``"flush"`` -- flush to the OS page cache; survives process crash,
  not power loss.
* ``"none"`` -- buffered; flushed on :meth:`sync`/:meth:`close`.

All file I/O goes through an :class:`~repro.store.faults.IOAdapter`
(``io=``), so :class:`~repro.store.faults.FaultyIO` can fail any
write, fsync or rename deterministically.  An I/O failure inside
:meth:`append` rolls the file back to the pre-append offset and raises
:class:`~repro.errors.StorageIOError` -- the caller was *not*
acknowledged, so nothing of the frame may survive to replay.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import IO, Any

from repro.errors import StorageFormatError, StorageIOError, StoreError
from repro.store.faults import IOAdapter, RealIO

__all__ = ["WAL_MAGIC", "SYNC_MODES", "WriteAheadLog", "scan_wal"]

WAL_MAGIC = b"RPROWAL1"

_FRAME_HEADER = struct.Struct(">II")  # payload length, payload crc32

#: Sanity ceiling on one frame (a length field beyond this is treated
#: as tail corruption, not an allocation request).
_MAX_FRAME_BYTES = 1 << 30

SYNC_MODES = ("fsync", "flush", "none")


def _dump(payload: dict) -> bytes:
    return json.dumps(
        payload, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def scan_wal(
    path: str, *, io: IOAdapter | None = None
) -> tuple[list[tuple[dict, int]], int, int, str | None]:
    """Read-only scan of a WAL file's committed prefix.

    Returns ``(frames, good_offset, file_size, tail_reason)`` where
    ``frames`` is ``(record, end_offset)`` per well-formed frame in
    order, ``good_offset`` is where the committed prefix ends, and
    ``tail_reason`` describes why scanning stopped before EOF (``None``
    on a clean end).  Shared by live recovery
    (:meth:`WriteAheadLog._recover_file`) and the offline verifier
    (:mod:`repro.store.fsck`) so both agree on what "committed" means.

    Raises :class:`~repro.errors.StorageFormatError` on a bad magic --
    a foreign file, never silently truncated -- and lets ``OSError``
    propagate for the caller to classify.
    """
    io = io if io is not None else RealIO()
    size = os.path.getsize(path)
    frames: list[tuple[dict, int]] = []
    with io.open(path, "rb") as handle:
        magic = handle.read(len(WAL_MAGIC))
        if magic != WAL_MAGIC:
            raise StorageFormatError(
                f"{path}: not a repro WAL file (bad magic {magic!r})"
            )
        good = handle.tell()
        reason: str | None = None
        while True:
            header = handle.read(_FRAME_HEADER.size)
            if not header and good == size:
                break  # clean EOF on a frame boundary
            if len(header) < _FRAME_HEADER.size:
                reason = "torn frame header"
                break
            length, crc = _FRAME_HEADER.unpack(header)
            if length > _MAX_FRAME_BYTES:
                reason = f"implausible frame length {length}"
                break
            payload = handle.read(length)
            if len(payload) < length:
                reason = "torn frame payload"
                break
            if zlib.crc32(payload) != crc:
                reason = "frame CRC mismatch"
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                reason = "frame payload is not valid JSON"
                break
            if not isinstance(record, dict) or not isinstance(
                record.get("lsn"), int
            ):
                reason = "frame record has no integer lsn"
                break
            good = handle.tell()
            frames.append((record, good))
    return frames, good, size, reason


class WriteAheadLog:
    """One append-only log file with replay-on-open.

    Opening scans the existing file: well-formed frames become
    :attr:`replayed` (for the engine to apply), and the first torn or
    corrupt frame truncates the file back to the committed prefix.
    ``append`` then continues from the recovered tail LSN.
    """

    def __init__(
        self,
        path: str,
        *,
        sync: str = "fsync",
        base_lsn: int = 0,
        io: IOAdapter | None = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise StoreError(
                f"unknown WAL sync mode {sync!r} (expected one of {SYNC_MODES})"
            )
        self.path = os.fspath(path)
        self._sync_mode = sync
        self._io = io if io is not None else RealIO()
        self.replayed: list[dict] = []
        self.truncated_bytes = 0
        self._lsn = 0
        self._sync_count = 0
        # Group-commit state: while a batch is open, appends defer
        # their per-record flush/fsync to commit_batch() -- one sync
        # covers the whole batch (see begin_batch).
        self._batch_start: int | None = None
        self._batch_start_lsn = 0
        self._batch_start_records = 0
        try:
            self._recover_file()
            # The log file does not persist its base LSN (a
            # post-compaction reset leaves just the magic): the owner
            # passes the covering LSN of its snapshot so fresh appends
            # continue *above* it -- otherwise a reopened, freshly-reset
            # log would reissue LSNs the snapshot already covers and
            # replay would skip the new records as stale.
            self._lsn = max(self._lsn, base_lsn)
            # Replayed records count against the compaction threshold
            # too: a reopened log keeps its backlog.
            self._records_since_reset = len(self.replayed)
            self._handle: IO[bytes] = self._io.open(self.path, "ab")
        except OSError as exc:
            raise StorageIOError(
                f"{self.path}: cannot open write-ahead log: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def _recover_file(self) -> None:
        """Scan (or create) the log; truncate any torn/corrupt tail."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = -1
        if size < len(WAL_MAGIC):
            # Absent, or torn during creation before the magic landed:
            # either way there is no committed frame to preserve.
            handle = self._io.open(self.path, "wb")
            try:
                self._io.write(handle, WAL_MAGIC)
                self._io.flush(handle)
                self._io.fsync(handle)
            finally:
                handle.close()
            return
        frames, good, size, _reason = scan_wal(self.path, io=self._io)
        self.replayed = [record for record, _ in frames]
        if good < size:
            self.truncated_bytes = size - good
            handle = self._io.open(self.path, "r+b")
            try:
                self._io.truncate(handle, good)
                self._io.flush(handle)
                self._io.fsync(handle)
            finally:
                handle.close()
        if self.replayed:
            self._lsn = self.replayed[-1]["lsn"]

    def drop_replayed(self) -> None:
        """Free the replay buffer once the engine has consumed it."""
        self.replayed = []

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Frame, write and (per policy) sync one record; returns its LSN.

        The ``lsn`` field is injected here -- callers supply only the
        record body.  When this method returns under ``sync="fsync"``,
        the record is durable.  When it raises
        :class:`~repro.errors.StorageIOError`, the file has been rolled
        back to the pre-append offset (or, if even the rollback failed,
        the error says so via ``rolled_back=False``) and the in-memory
        LSN counter is untouched -- the failed record never existed.
        """
        lsn = self._lsn + 1
        body = _dump({"lsn": lsn, **payload})
        frame = _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body
        batching = self._batch_start is not None
        start = self._batch_start if batching else self._handle.tell()
        try:
            self._io.write(self._handle, frame)
            if not batching:
                if self._sync_mode == "fsync":
                    self._io.flush(self._handle)
                    self._io.fsync(self._handle)
                    self._sync_count += 1
                elif self._sync_mode == "flush":
                    self._io.flush(self._handle)
        except OSError as exc:
            # In a batch, none of the batch's frames were acknowledged
            # yet, so the rollback removes the *whole* batch, not just
            # this frame (LSN and record counters rewind with it).
            if batching:
                self._abort_batch()
            self._rollback_append(start, exc)
        self._lsn = lsn
        self._records_since_reset += 1
        return lsn

    def _rollback_append(self, offset: int, cause: OSError) -> None:
        """Undo a failed append: truncate back to the pre-append offset.

        A failed write may still have landed a prefix -- or, worse, the
        *whole frame* with only the sync failing -- so the frame must
        be physically removed: the caller was not acknowledged, and a
        record that replays without an acknowledgement is a ghost
        write.  If the disk is too far gone even to truncate, the
        raised error carries ``rolled_back=False`` and recovery's
        prefix-truncation handles a torn tail on the next open (a fully
        written frame may then reappear as a ghost -- never a lost
        acknowledged write).
        """
        rolled_back = False
        try:
            try:
                self._handle.close()  # drop buffered garbage refs
            except OSError:
                pass
            handle = self._io.open(self.path, "r+b")
            try:
                self._io.truncate(handle, offset)
                self._io.flush(handle)
                self._io.fsync(handle)
            finally:
                handle.close()
            self._handle = self._io.open(self.path, "ab")
            rolled_back = True
        except OSError:
            pass
        raise StorageIOError(
            f"{self.path}: WAL append failed ({cause}); "
            + (
                "file rolled back to the pre-append offset"
                if rolled_back
                else "rollback also failed -- tail left for recovery "
                "truncation"
            ),
            rolled_back=rolled_back,
        ) from cause

    def sync(self) -> None:
        try:
            self._io.flush(self._handle)
            self._io.fsync(self._handle)
            self._sync_count += 1
        except OSError as exc:
            raise StorageIOError(
                f"{self.path}: WAL sync failed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Group commit (batched appends, one sync).
    # ------------------------------------------------------------------

    def begin_batch(self) -> None:
        """Open a group-commit batch: subsequent appends write frames
        but defer the per-record flush/fsync to :meth:`commit_batch`.

        The amortisation behind the serving tier's group commit: N
        writes batched by the single writer task cost one ``fsync``
        instead of N.  No record of an open batch is durable (or
        acknowledged) until the commit; a failure anywhere rolls the
        file back to the batch start, so the batch is all-or-nothing on
        disk exactly like a single append.
        """
        if self._batch_start is not None:
            raise StoreError("a WAL batch is already open")
        self._batch_start = self._handle.tell()
        self._batch_start_lsn = self._lsn
        self._batch_start_records = self._records_since_reset

    def commit_batch(self) -> None:
        """Make the open batch durable with one policy sync.

        On failure the whole batch is rolled back -- the file truncates
        to the pre-batch offset and the LSN counter rewinds -- and
        :class:`~repro.errors.StorageIOError` is raised: none of the
        batch's records were acknowledged, so none may survive.
        """
        if self._batch_start is None:
            raise StoreError("no WAL batch is open")
        start = self._batch_start
        self._batch_start = None
        try:
            if self._sync_mode == "fsync":
                self._io.flush(self._handle)
                self._io.fsync(self._handle)
                self._sync_count += 1
            elif self._sync_mode == "flush":
                self._io.flush(self._handle)
        except OSError as exc:
            self._lsn = self._batch_start_lsn
            self._records_since_reset = self._batch_start_records
            self._rollback_append(start, exc)

    def abort_batch(self) -> None:
        """Discard an open batch (nothing was acknowledged): truncate
        back to the pre-batch offset and rewind the LSN counter."""
        if self._batch_start is None:
            return
        start = self._batch_start
        self._abort_batch()
        try:
            self._rollback_append(start, OSError("batch aborted"))
        except StorageIOError:
            pass

    def _abort_batch(self) -> None:
        """Rewind the in-memory batch state (file handled by caller)."""
        self._batch_start = None
        self._lsn = self._batch_start_lsn
        self._records_since_reset = self._batch_start_records

    @property
    def in_batch(self) -> bool:
        return self._batch_start is not None

    # ------------------------------------------------------------------
    # Introspection and maintenance.
    # ------------------------------------------------------------------

    @property
    def lsn(self) -> int:
        """The LSN of the last record written (or recovered)."""
        return self._lsn

    @property
    def records_since_reset(self) -> int:
        """Appends since open/reset (the auto-compaction trigger)."""
        return self._records_since_reset

    @property
    def sync_count(self) -> int:
        """Physical ``fsync`` calls issued by this log since open.

        The group-commit bench reads this to assert the amortisation:
        N batched writes must cost ~1 sync, not N.
        """
        return self._sync_count

    @property
    def io(self) -> IOAdapter:
        return self._io

    def size_bytes(self) -> int:
        self._handle.flush()
        return os.path.getsize(self.path)

    def reset(self, *, base_lsn: int) -> None:
        """Replace the log with an empty one (post-compaction).

        Atomic via write-temp + ``replace`` + parent-directory fsync: a
        crash leaves either the old log (whose records the snapshot
        already covers and replay will skip by LSN) or the new empty
        one -- and the directory sync makes the rename itself durable,
        not merely staged in the directory's page cache.  On failure
        the old log is still intact (the replace is the commit point)
        and :class:`~repro.errors.StorageIOError` is raised.
        """
        temp = self.path + ".tmp"
        try:
            self._handle.close()
            handle = self._io.open(temp, "wb")
            try:
                self._io.write(handle, WAL_MAGIC)
                self._io.flush(handle)
                self._io.fsync(handle)
            finally:
                handle.close()
            self._io.replace(temp, self.path)
            # A rename is not durable until the directory entry is
            # synced; without this, a power cut after reset() could
            # resurrect the old (already-covered) log file.
            self._io.fsync_dir(os.path.dirname(self.path))
            self._handle = self._io.open(self.path, "ab")
        except OSError as exc:
            # Best effort: keep the log object usable for reads and
            # leave the old file authoritative.
            try:
                if self._handle.closed:
                    self._handle = self._io.open(self.path, "ab")
            except OSError:
                pass
            raise StorageIOError(
                f"{self.path}: WAL reset failed ({exc}); "
                "the previous log remains authoritative"
            ) from exc
        self._lsn = base_lsn
        self._records_since_reset = 0

    def close(self) -> None:
        if not self._handle.closed:
            try:
                if self._sync_mode != "none":
                    self.sync()
            finally:
                # The handle is released even when the final sync
                # fails: a degraded close must not leak it.
                self._handle.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, lsn={self._lsn}, "
            f"sync={self._sync_mode!r})"
        )
