"""The storage I/O seam: injectable adapters for fault testing.

Every byte the durable engine puts on disk travels through an
:class:`IOAdapter` -- ``open``/``write``/``flush``/``fsync``/
``truncate``/``replace``/``fsync_dir`` -- so tests can swap the real
filesystem (:class:`RealIO`) for a deterministic failure simulator
(:class:`FaultyIO`) and enumerate every crash point instead of
sampling them.

:class:`FaultyIO` executes a *fault plan*: a list of :class:`Fault`
specs built with the :class:`FaultPlan` constructors.  A fault arms on
one operation kind (or any), triggers on its Nth occurrence after
arming (or when a cumulative written-bytes budget is exhausted), and
then either

* raises an :class:`OSError` (``FaultPlan.fail`` -- EIO by default,
  ``FaultPlan.enospc`` for the disk-full budget),
* performs a *short write* of the first K bytes and then raises
  (``FaultPlan.short_write``),
* raises :class:`SimulatedCrash` (``FaultPlan.crash``), optionally
  after a torn prefix of the write -- crashes derive from
  ``BaseException`` so the engine's OSError rollback handling cannot
  intercept them, exactly as a real crash runs no cleanup code, or
* silently skips the operation (``FaultPlan.drop_dir_sync`` -- the
  rename-without-directory-sync simulation).

Error-return faults model a live process seeing a failed syscall: the
engine rolls back and enters degraded read-only mode
(:class:`~repro.errors.CollectionReadOnlyError`).  Crash faults model
the process dying mid-operation: the test reopens the directory and
checks recovery against the acknowledged-write oracle.

The adapter also keeps a full operation log (``ops``) and per-kind
counters (``counts``), so tests can both *count* the I/O of a workload
(to drive an exhaustive crash-point sweep) and *prove* ordering
properties such as "``fsync_dir`` follows every ``replace``".
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass, field
from typing import IO, Any

from repro.errors import StoreError

__all__ = [
    "OPS",
    "SimulatedCrash",
    "Fault",
    "FaultPlan",
    "IOAdapter",
    "RealIO",
    "FaultyIO",
]

#: Every operation kind an adapter mediates.
OPS = ("open", "write", "flush", "fsync", "truncate", "replace", "fsync_dir")

_MODES = ("error", "short", "crash", "skip")


class SimulatedCrash(BaseException):
    """A programmed crash point fired inside :class:`FaultyIO`.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    engine-level ``except OSError`` rollback handling cannot catch it:
    a crash is the process dying mid-operation, and nothing after the
    crash point -- no rollback, no bookkeeping -- gets to run.  Tests
    catch it at the harness level and reopen the directory from disk.
    """


@dataclass
class Fault:
    """One armed fault: trigger condition plus failure behaviour.

    ``op`` restricts the fault to one operation kind (``None`` = any);
    ``nth`` is the 1-based occurrence *after arming* that triggers it;
    ``after_bytes`` instead triggers on the write that would exceed a
    cumulative byte budget (counted from arming).  ``mode`` selects the
    behaviour; ``keep_bytes`` is how much of a write lands before a
    ``short``/``crash`` fault fires.  Each fault fires at most once,
    except ``skip`` faults with ``nth=0``, which swallow every matching
    operation.
    """

    op: str | None = None
    nth: int = 1
    mode: str = "error"
    errno: int = _errno.EIO
    keep_bytes: int = 0
    after_bytes: int | None = None
    seen: int = field(default=0, init=False)
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.op is not None and self.op not in OPS:
            raise StoreError(
                f"unknown I/O operation {self.op!r} (expected one of {OPS})"
            )
        if self.mode not in _MODES:
            raise StoreError(
                f"unknown fault mode {self.mode!r} (expected one of {_MODES})"
            )

    def matches(self, op: str, nbytes: int, written: int) -> bool:
        """Whether this fault triggers on the given operation."""
        if self.fired or (self.op is not None and op != self.op):
            return False
        if self.after_bytes is not None:
            return op == "write" and written + nbytes > self.after_bytes
        self.seen += 1
        if self.nth == 0:  # every occurrence (persistent skip faults)
            return True
        return self.seen == self.nth


class FaultPlan:
    """Constructors for the :class:`Fault` specs ``FaultyIO`` executes."""

    @staticmethod
    def fail(op: str, nth: int = 1, *, error: int = _errno.EIO) -> Fault:
        """The Nth ``op`` raises ``OSError(error)`` without executing."""
        return Fault(op=op, nth=nth, mode="error", errno=error)

    @staticmethod
    def short_write(nth: int = 1, *, keep: int = 0) -> Fault:
        """The Nth write lands only its first ``keep`` bytes, then
        raises ``OSError(EIO)`` -- a torn write the caller hears about."""
        return Fault(op="write", nth=nth, mode="short", keep_bytes=keep)

    @staticmethod
    def enospc(after_bytes: int) -> Fault:
        """The write that would exceed a cumulative budget of
        ``after_bytes`` lands the bytes that fit, then raises
        ``OSError(ENOSPC)`` -- the disk filling up mid-append."""
        return Fault(mode="short", errno=_errno.ENOSPC, after_bytes=after_bytes)

    @staticmethod
    def crash(op: str | None = None, nth: int = 1, *, keep: int = 0) -> Fault:
        """The Nth ``op`` (any op when ``None``) raises
        :class:`SimulatedCrash` instead of executing; a crashing write
        first lands ``keep`` bytes (the torn-prefix variant)."""
        return Fault(op=op, nth=nth, mode="crash", keep_bytes=keep)

    @staticmethod
    def drop_dir_sync() -> Fault:
        """Every ``fsync_dir`` silently does nothing: the
        rename-without-directory-sync window, held open forever."""
        return Fault(op="fsync_dir", nth=0, mode="skip")


class IOAdapter:
    """The operations the storage layer routes its file I/O through.

    The base class *is* the real implementation; :class:`RealIO` is its
    blessed alias and :class:`FaultyIO` the failure simulator.  Handles
    are ordinary binary file objects -- the adapter mediates calls, it
    does not wrap objects.
    """

    def open(self, path: str, mode: str) -> IO[bytes]:
        return open(path, mode)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        handle.write(data)

    def flush(self, handle: IO[bytes]) -> None:
        handle.flush()

    def fsync(self, handle: IO[bytes]) -> None:
        os.fsync(handle.fileno())

    def truncate(self, handle: IO[bytes], size: int) -> None:
        handle.truncate(size)

    def replace(self, source: str, destination: str) -> None:
        os.replace(source, destination)

    def fsync_dir(self, directory: str) -> None:
        """Sync a directory so a just-renamed entry survives power loss.

        Platforms without ``O_DIRECTORY`` semantics for fsync (notably
        Windows) silently skip -- there is no portable equivalent.
        """
        try:
            fd = os.open(directory or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class RealIO(IOAdapter):
    """The pass-through adapter: every call goes straight to the OS."""


class FaultyIO(IOAdapter):
    """An adapter that executes a deterministic fault plan.

    Construct with :class:`Fault` specs (see :class:`FaultPlan`) or arm
    more later with :meth:`arm` -- occurrence counting is relative to
    arming time, so a test can run its setup and then say "the *next*
    fsync fails".  Operations that no fault intercepts run for real.
    """

    def __init__(self, *faults: Fault) -> None:
        self.faults: list[Fault] = list(faults)
        self.ops: list[tuple[str, Any]] = []
        self.counts: dict[str, int] = dict.fromkeys(OPS, 0)
        self.bytes_written = 0

    def arm(self, *faults: Fault) -> "FaultyIO":
        self.faults.extend(faults)
        return self

    @property
    def fired(self) -> list[Fault]:
        return [fault for fault in self.faults if fault.fired]

    # -- the trigger ---------------------------------------------------

    def _intercept(self, op: str, detail: Any, nbytes: int = 0) -> Fault | None:
        """Log the op; return the triggering fault (marked fired), if any."""
        self.ops.append((op, detail))
        self.counts[op] += 1
        for fault in self.faults:
            if fault.matches(op, nbytes, self.bytes_written):
                if fault.nth != 0:
                    fault.fired = True
                return fault
        return None

    def _raise(self, fault: Fault, op: str, detail: Any) -> None:
        if fault.mode == "crash":
            raise SimulatedCrash(f"simulated crash at {op} ({detail})")
        raise OSError(
            fault.errno, f"injected {os.strerror(fault.errno)}", str(detail)
        )

    # -- mediated operations -------------------------------------------

    def open(self, path: str, mode: str) -> IO[bytes]:
        fault = self._intercept("open", path)
        if fault is not None and fault.mode != "skip":
            self._raise(fault, "open", path)
        return super().open(path, mode)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        fault = self._intercept("write", len(data), nbytes=len(data))
        if fault is None:
            super().write(handle, data)
            self.bytes_written += len(data)
            return
        if fault.mode == "skip":
            return
        keep = fault.keep_bytes
        if fault.after_bytes is not None:
            keep = max(0, fault.after_bytes - self.bytes_written)
        keep = min(keep, len(data))
        if keep and fault.mode in ("short", "crash"):
            super().write(handle, data[:keep])
            self.bytes_written += keep
            # A torn prefix only reaches the disk if it leaves the
            # process buffer; flush so the tear is observable.
            super().flush(handle)
        self._raise(fault, "write", f"{keep}/{len(data)} bytes")

    def flush(self, handle: IO[bytes]) -> None:
        fault = self._intercept("flush", getattr(handle, "name", "?"))
        if fault is not None and fault.mode != "skip":
            self._raise(fault, "flush", getattr(handle, "name", "?"))
        super().flush(handle)

    def fsync(self, handle: IO[bytes]) -> None:
        fault = self._intercept("fsync", getattr(handle, "name", "?"))
        if fault is not None:
            if fault.mode == "skip":
                return
            self._raise(fault, "fsync", getattr(handle, "name", "?"))
        super().fsync(handle)

    def truncate(self, handle: IO[bytes], size: int) -> None:
        fault = self._intercept("truncate", size)
        if fault is not None:
            if fault.mode == "skip":
                return
            self._raise(fault, "truncate", size)
        super().truncate(handle, size)

    def replace(self, source: str, destination: str) -> None:
        fault = self._intercept("replace", (source, destination))
        if fault is not None:
            if fault.mode == "skip":
                return
            self._raise(fault, "replace", destination)
        super().replace(source, destination)

    def fsync_dir(self, directory: str) -> None:
        fault = self._intercept("fsync_dir", directory)
        if fault is not None:
            if fault.mode == "skip":
                return
            self._raise(fault, "fsync_dir", directory)
        super().fsync_dir(directory)

    def __repr__(self) -> str:
        armed = sum(1 for fault in self.faults if not fault.fired)
        total = sum(self.counts.values())
        return f"FaultyIO({armed} armed, {len(self.fired)} fired, {total} ops)"
