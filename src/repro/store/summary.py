"""Inferred structural summaries: a schema for schemaless collections.

For collections with an enforced schema the semantic optimizer
(:mod:`repro.query.optimizer`) gets its proof premise from Theorem 1.
This module closes the gap for schemaless collections -- "let the
datastore manage the schema": a :class:`StructuralSummary` observes
every document at ingest and maintains, per stripped key path,

* the set of **kinds** seen at that path,
* the set of **object keys** seen directly below it, and
* the **numeric envelope** ``[low, high]`` of number leaves,

then renders those facts as a recursive JSL premise every observed
document satisfies.

The summary is **widen-only**: facts only ever grow (removal is a
no-op), so the invariant "every live document satisfies the formula"
holds under any interleaving of inserts, updates and removals -- and
also for any snapshot pinned *after* the summary started observing,
because a pinned document was live (hence observed) at pin time.  The
price is precision, not soundness: a summary can only become weaker
than the live data, never wrong about it.

Rendering makes only **conditional** claims (``BOX`` modalities, kind
disjunctions) -- never an existential one -- because observing a
document with key ``k`` must not assert that *every* document has
``k``.  For a path ``p`` with facts ``F``::

    phi_p =  (Int ^ Min(low-1) ^ Max(high+1))   [if NUMBER seen]
          v  Str                                 [if STRING seen]
          v  (Obj ^ BOX_{~seen-keys} ~T
                  ^ BOX_k phi_{p.k} ...)         [if OBJECT seen]
          v  (Arr ^ BOX_{0:inf} phi_p)           [if ARRAY seen]

(array positions are stripped from key paths, so an array's elements
recurse through the path's own definition -- guarded, hence
well-formed recursive JSL).  A fresh summary with nothing observed
renders falsity: the collection is empty, so "no admissible document"
is exact.

``revision`` bumps only on actual widening; the fingerprint
``("summary", uid, revision)`` keys the optimizer's verdict cache, so
a widened summary invalidates exactly the verdicts it could change.
Tracking is capped at ``max_paths`` distinct paths: heterogeneous
collections past the cap disable themselves permanently (the optimizer
then treats the collection as schemaless-and-summaryless, which is
always sound).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.automata.keylang import KeyLang
from repro.jsl import ast as jsl
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree, Kind

__all__ = ["StructuralSummary", "DEFAULT_MAX_PATHS"]

DEFAULT_MAX_PATHS = 512

_uid_counter = itertools.count(1)


class _PathFacts:
    """Widen-only facts about one stripped key path."""

    __slots__ = ("kinds", "keys", "low", "high")

    def __init__(self) -> None:
        self.kinds: set[Kind] = set()
        self.keys: set[str] = set()
        self.low: int | None = None
        self.high: int | None = None


class StructuralSummary:
    """Per-path structural facts plus their JSL rendering (see module
    docstring).  Build one per schemaless collection and feed it every
    inserted/updated document; query through ``formula()``/
    ``fingerprint``."""

    __slots__ = (
        "_facts",
        "_revision",
        "_uid",
        "_disabled",
        "_max_paths",
        "_formula",
        "_formula_revision",
    )

    def __init__(self, *, max_paths: int = DEFAULT_MAX_PATHS) -> None:
        self._facts: dict[tuple[str, ...], _PathFacts] = {}
        self._revision = 0
        self._uid = next(_uid_counter)
        self._disabled = False
        self._max_paths = max_paths
        self._formula: "jsl.Formula | jsl.RecursiveJSL | None" = None
        self._formula_revision = -1

    # ------------------------------------------------------------------
    # Observation (widen-only).
    # ------------------------------------------------------------------

    @property
    def disabled(self) -> bool:
        return self._disabled

    @property
    def revision(self) -> int:
        return self._revision

    @property
    def fingerprint(self) -> tuple:
        return ("summary", self._uid, self._revision)

    def _at(self, path: tuple[str, ...]) -> "_PathFacts | None":
        facts = self._facts.get(path)
        if facts is None:
            if len(self._facts) >= self._max_paths:
                self._disabled = True
                return None
            facts = self._facts[path] = _PathFacts()
            self._revision += 1  # a new path is itself a widening
        return facts

    def _widen(
        self,
        path: tuple[str, ...],
        kind: Kind,
        value: Any = None,
        keys: "Iterable[str] | None" = None,
    ) -> "_PathFacts | None":
        facts = self._at(path)
        if facts is None:
            return None
        widened = False
        if kind not in facts.kinds:
            facts.kinds.add(kind)
            widened = True
        if kind is Kind.NUMBER:
            if facts.low is None or value < facts.low:
                facts.low = value
                widened = True
            if facts.high is None or value > facts.high:
                facts.high = value
                widened = True
        if keys is not None:
            for key in keys:
                if key not in facts.keys:
                    facts.keys.add(key)
                    widened = True
        if widened:
            self._revision += 1
        return facts

    def observe_tree(self, tree: JSONTree) -> None:
        """Fold one document (as a tree) into the summary."""
        if self._disabled:
            return
        stack: list[tuple[tuple[str, ...], int]] = [((), tree.root)]
        while stack and not self._disabled:
            path, node = stack.pop()
            kind = tree.kind(node)
            if kind is Kind.OBJECT:
                edges = list(tree.edges(node))
                self._widen(
                    path, kind, keys=[label for label, _child in edges]
                )
                stack.extend(
                    (path + (label,), child) for label, child in edges
                )
            elif kind is Kind.ARRAY:
                self._widen(path, kind)
                stack.extend(
                    (path, child) for _label, child in tree.edges(node)
                )
            else:
                self._widen(
                    path,
                    kind,
                    tree.value(node) if kind is Kind.NUMBER else None,
                )

    def observe_value(self, value: Any) -> None:
        """Fold one document (as a plain value) into the summary."""
        if self._disabled:
            return
        stack: list[tuple[tuple[str, ...], Any]] = [((), value)]
        while stack and not self._disabled:
            path, node = stack.pop()
            if isinstance(node, dict):
                self._widen(path, Kind.OBJECT, keys=node.keys())
                stack.extend(
                    (path + (key,), child) for key, child in node.items()
                )
            elif isinstance(node, list):
                self._widen(path, Kind.ARRAY)
                stack.extend((path, child) for child in node)
            elif isinstance(node, str):
                self._widen(path, Kind.STRING)
            else:
                self._widen(path, Kind.NUMBER, node)

    def observe_all(self, trees: Iterable[JSONTree]) -> None:
        for tree in trees:
            if self._disabled:
                return
            self.observe_tree(tree)

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def formula(self) -> "jsl.Formula | jsl.RecursiveJSL | None":
        """The JSL premise (``None`` once disabled), cached per revision."""
        if self._disabled:
            return None
        if self._formula_revision != self._revision:
            self._formula = self._render()
            self._formula_revision = self._revision
        return self._formula

    def _render(self) -> "jsl.Formula | jsl.RecursiveJSL":
        if not self._facts:
            # Nothing observed: the collection is empty, and falsity is
            # the exact premise for "no admissible document exists".
            return jsl.bottom()
        names = {
            path: f"n{position}"
            for position, path in enumerate(sorted(self._facts))
        }
        definitions = tuple(
            (names[path], self._render_path(path, facts, names))
            for path, facts in sorted(self._facts.items())
        )
        return jsl.RecursiveJSL(definitions, jsl.Ref(names[()]))

    def _render_path(
        self,
        path: tuple[str, ...],
        facts: _PathFacts,
        names: dict[tuple[str, ...], str],
    ) -> jsl.Formula:
        branches: list[jsl.Formula] = []
        if Kind.NUMBER in facts.kinds:
            parts: list[jsl.Formula] = [jsl.TestAtom(nt.IsNumber())]
            if facts.low is not None:
                parts.append(jsl.TestAtom(nt.MinVal(facts.low - 1)))
            if facts.high is not None:
                parts.append(jsl.TestAtom(nt.MaxVal(facts.high + 1)))
            branches.append(jsl.conj(parts))
        if Kind.STRING in facts.kinds:
            branches.append(jsl.TestAtom(nt.IsString()))
        if Kind.OBJECT in facts.kinds:
            parts = [jsl.TestAtom(nt.IsObject())]
            seen = [KeyLang.word(key) for key in sorted(facts.keys)]
            complement = KeyLang.union(seen).complement()
            parts.append(jsl.BoxKey(complement, jsl.bottom()))
            for key in sorted(facts.keys):
                child = path + (key,)
                if child in names:
                    parts.append(
                        jsl.BoxKey(KeyLang.word(key), jsl.Ref(names[child]))
                    )
            branches.append(jsl.conj(parts))
        if Kind.ARRAY in facts.kinds:
            # Array positions are stripped from key paths: elements
            # recurse through this path's own (guarded) definition.
            branches.append(
                jsl.And(
                    jsl.TestAtom(nt.IsArray()),
                    jsl.BoxIdx(0, None, jsl.Ref(names[path])),
                )
            )
        return jsl.disj(branches)
