"""The storage-engine seam: how a :class:`~repro.store.Collection`
persists (or doesn't).

ROADMAP names this refactor explicitly: "a storage-engine interface
behind ``store.Collection`` (memory vs. durable vs. sharded)".  A
:class:`StorageEngine` owns everything below the in-memory document
set -- recovery on open, the commit hook on every mutation, and
compaction -- while the collection keeps owning trees, indexes, schema
enforcement and the planner.  The contract:

* ``bind(collection)`` is called exactly once, from the collection's
  constructor, *before* any documents are ingested.  A durable engine
  replays its snapshot + write-ahead log here and returns a
  :class:`RecoveredState` for the collection to restore; a memory
  engine returns ``None``.
* ``commit_insert`` / ``commit_remove`` / ``commit_update`` are called
  after staging and schema validation but *before* the in-memory
  apply.  A durable engine appends (and syncs) the WAL frame here, so
  the ordering invariant is: **nothing reaches memory that is not on
  disk, and nothing reaches disk that did not validate**.  A raise
  from the hook aborts the whole operation with the collection
  untouched.
* ``checkpoint()`` folds the log into a fresh snapshot (compaction);
  ``close()`` releases file handles.

Engines are single-collection: binding one engine to two collections
is an error.  Three flavours live behind the seam: :class:`MemoryEngine`
is the trivial implementation (all hooks are no-ops);
:class:`~repro.store.durable.DurableEngine` is the WAL + snapshot
implementation; and :class:`~repro.store.sharded.ShardedEngine`
composes N of either into a hash-partitioned fleet -- each shard is an
ordinary engine-backed collection, so the per-shard commit hooks (and
their ordering invariant) are exactly the ones above, while the
coordinator owns id assignment, scatter-gather execution and the
worker pool.

This module also owns the **versioned snapshot codec**: the plain-dict
format :meth:`Collection.snapshot` emits carries ``format`` and
``version`` fields, and :func:`decode_snapshot` refuses payloads it
does not understand -- future engine changes cannot silently misread
old snapshots.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.errors import StorageFormatError, StoreError
from repro.store.indexes import Entry, decode_entry_counts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store.collection import Collection

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "EngineHealth",
    "RecoveredState",
    "SnapshotData",
    "StorageEngine",
    "MemoryEngine",
    "decode_snapshot",
]

#: The ``format`` tag of a collection snapshot (what the loader keys
#: its "is this mine?" check on).
SNAPSHOT_FORMAT = "repro-collection-snapshot"

#: Current snapshot format version.  Loaders accept exactly the
#: versions they know how to read; anything newer (or unrecognisably
#: older) raises :class:`~repro.errors.StorageFormatError`.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SnapshotData:
    """A decoded (but not yet materialised) collection snapshot.

    ``docs`` preserves document ids -- ids are never reused, so the
    tombstone layout matters; ``encoded_entries`` keeps the counted
    index refcounts in their wire form (decode per document with
    :func:`repro.store.indexes.decode_entry_counts` only for documents
    the WAL replay left untouched).
    """

    next_id: int
    ops: int
    extended: bool
    docs: list[tuple[int, Any]]
    encoded_entries: dict[int, list] | None


@dataclass(frozen=True)
class EngineHealth:
    """One engine's write-availability status.

    ``ok`` means the engine accepts writes.  ``degraded`` means a
    commit or checkpoint hit an I/O failure and the engine has gone
    read-only to keep memory and disk from diverging: ``reason`` holds
    the human-readable root cause and ``error`` the original
    :class:`~repro.errors.StorageIOError`.  Reads keep working either
    way; reopening the database recovers the acknowledged prefix and
    restores a healthy engine.
    """

    ok: bool
    degraded: bool = False
    reason: str | None = None
    error: Exception | None = None


#: The health every non-degradable (memory) engine reports.
HEALTHY = EngineHealth(ok=True)


@dataclass(frozen=True)
class RecoveredState:
    """What an engine hands the collection to restore on open.

    ``docs`` are ``(doc_id, value)`` pairs in id order; ``entries``
    maps the ids whose counted index refcounts survived recovery
    verbatim (snapshot documents no WAL record touched) -- the
    collection loads those postings without re-walking the tree, and
    walks the rest.  ``version`` seeds the collection's mutation
    counter so it keeps increasing across restarts.
    """

    next_id: int
    version: int
    extended: bool
    docs: list[tuple[int, Any]]
    entries: dict[int, dict[Entry, int]]


def decode_snapshot(data: Any) -> SnapshotData:
    """Validate and decode a :meth:`Collection.snapshot` payload.

    The loader-side half of the versioned format: a payload whose
    ``format`` tag or ``version`` is not recognised raises
    :class:`~repro.errors.StorageFormatError` instead of being
    misread.
    """
    if not isinstance(data, dict):
        raise StorageFormatError(
            f"a collection snapshot is a JSON object, got {type(data).__name__}"
        )
    found = data.get("format")
    if found != SNAPSHOT_FORMAT:
        raise StorageFormatError(
            f"not a collection snapshot (format={found!r}, "
            f"expected {SNAPSHOT_FORMAT!r})"
        )
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise StorageFormatError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    try:
        next_id = data["next_id"]
        ops = data["ops"]
        extended = data["extended"]
        docs = [(doc_id, value) for doc_id, value in data["docs"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"malformed collection snapshot: {exc}") from exc
    if not isinstance(next_id, int) or not isinstance(ops, int):
        raise StorageFormatError(
            "malformed collection snapshot: next_id/ops must be integers"
        )
    for doc_id, _ in docs:
        if not isinstance(doc_id, int) or not 0 <= doc_id < next_id:
            raise StorageFormatError(
                f"malformed collection snapshot: document id {doc_id!r} "
                f"outside [0, {next_id})"
            )
    raw_entries = data.get("index_entries")
    encoded: dict[int, list] | None = None
    if raw_entries is not None:
        if not isinstance(raw_entries, dict):
            raise StorageFormatError(
                "malformed collection snapshot: index_entries must be an object"
            )
        # JSON object keys are strings; ids travel as decimal text.
        encoded = {int(doc_id): entries for doc_id, entries in raw_entries.items()}
    return SnapshotData(
        next_id=next_id,
        ops=ops,
        extended=bool(extended),
        docs=docs,
        encoded_entries=encoded,
    )


class StorageEngine:
    """Base class / protocol for collection storage engines.

    Subclasses override the hooks they need; the defaults make this
    class itself a valid (volatile) engine.  ``durable`` tells the
    collection whether commit hooks need plain-value payloads at all --
    the memory engine never pays the ``to_value`` materialisation.
    """

    durable: bool = False

    def __init__(self) -> None:
        self._collection: "Collection | None" = None

    # -- lifecycle ------------------------------------------------------

    def bind(self, collection: "Collection") -> RecoveredState | None:
        """Attach to ``collection`` (once); return state to restore."""
        if self._collection is not None:
            raise StoreError(
                "storage engine is already bound to a collection "
                "(engines are single-collection; create a new one)"
            )
        self._collection = collection
        return self._recover()

    def _recover(self) -> RecoveredState | None:
        """Engine-specific recovery, run from :meth:`bind`."""
        return None

    @property
    def collection(self) -> "Collection | None":
        return self._collection

    @property
    def health(self) -> EngineHealth:
        """Write availability; memory engines are always healthy."""
        return HEALTHY

    # -- commit hooks (called between validate and in-memory apply) ----

    def commit_insert(
        self, doc_ids: Sequence[int], values: Sequence[Any]
    ) -> None:
        """Persist an insert batch (ids are pre-assigned, dense)."""

    def commit_remove(self, doc_id: int) -> None:
        """Persist a removal."""

    def commit_update(self, changes: Iterable[tuple[int, Any]]) -> None:
        """Persist update post-images as ``(doc_id, new_value)`` pairs."""

    def commit_applied(self) -> None:
        """Called after the in-memory apply of a committed mutation.

        The one hook that runs with memory and log in agreement --
        maintenance that snapshots the collection (auto-compaction)
        belongs here, not in the pre-apply commit hooks.
        """

    @contextmanager
    def group(self) -> Iterator[None]:
        """Batch the commits made inside the block into one group commit.

        The serving tier's single writer task wraps each drained batch
        of write requests in one ``group()`` block: a durable engine
        defers every per-record sync inside the block and issues **one**
        WAL fsync when the block exits -- N concurrent writes, one
        platter round-trip.  No write in the group is durable (and none
        must be acknowledged to its client) until the block exits
        cleanly; a failure rolls the whole batch off the log and
        degrades the engine, exactly like a single failed append.

        The base implementation is a no-op: memory engines have nothing
        to sync, and nesting is an error only where it could matter
        (the durable override refuses it).
        """
        yield

    # -- maintenance ----------------------------------------------------

    def checkpoint(self):
        """Fold the log into a fresh snapshot; no-op for memory."""
        return None

    def close(self) -> None:
        """Release any resources; the collection stays readable."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MemoryEngine(StorageEngine):
    """The volatile engine: every hook is a no-op.

    Exists so the collection has exactly one code path -- commits
    always route through an engine -- and so call sites state their
    durability choice explicitly (or go through
    :func:`repro.api.collection` /
    :class:`repro.store.Database`, which state it for them).
    """

    durable = False
