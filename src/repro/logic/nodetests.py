"""The ``NodeTests`` atomic predicates of the JSON Schema Logic.

Section 5.2 defines the set NodeTests with the predicates ``Arr``,
``Obj``, ``Str``, ``Int``, ``Unique``, ``Pattern(e)``, ``Min(i)``,
``Max(i)``, ``MultOf(i)``, ``MinCh(k)``, ``MaxCh(k)`` and ``~(A)``.
This module gives each a frozen dataclass and a single semantic entry
point :func:`node_test_holds` implementing the ``|=`` relation of the
paper verbatim:

* ``Min(i)`` holds iff the value is a number **strictly greater** than
  ``i`` (likewise ``Max(i)`` is strict);
* ``MinCh(i)``/``MaxCh(i)`` count children of objects *and* arrays;
* ``Unique`` holds on array nodes whose children are pairwise distinct
  *as subtrees*;
* ``~(A)`` compares the whole subtree with the constant document ``A``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.keylang import KeyLang
from repro.model.equality import all_children_distinct, canonical_hash, subtree_equal
from repro.model.tree import JSONTree, Kind

__all__ = [
    "NodeTest",
    "IsObject",
    "IsArray",
    "IsString",
    "IsNumber",
    "Unique",
    "Pattern",
    "MinVal",
    "MaxVal",
    "MultOf",
    "MinCh",
    "MaxCh",
    "EqDocTest",
    "node_test_holds",
    "nodes_satisfying_test",
]


class NodeTest:
    """Base class of the atomic predicates in NodeTests."""

    __slots__ = ()

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class IsObject(NodeTest):
    """``Obj``: the node is an object."""

    def describe(self) -> str:
        return "Obj"


@dataclass(frozen=True)
class IsArray(NodeTest):
    """``Arr``: the node is an array."""

    def describe(self) -> str:
        return "Arr"


@dataclass(frozen=True)
class IsString(NodeTest):
    """``Str``: the node is a string."""

    def describe(self) -> str:
        return "Str"


@dataclass(frozen=True)
class IsNumber(NodeTest):
    """``Int``: the node is a number."""

    def describe(self) -> str:
        return "Int"


@dataclass(frozen=True)
class Unique(NodeTest):
    """``Unique``: an array whose children are pairwise distinct values."""

    def describe(self) -> str:
        return "Unique"


@dataclass(frozen=True)
class Pattern(NodeTest):
    """``Pattern(e)``: a string belonging to the language of ``e``."""

    lang: KeyLang

    def describe(self) -> str:
        return f"Pattern({self.lang.describe()})"


@dataclass(frozen=True)
class MinVal(NodeTest):
    """``Min(i)``: a number strictly greater than ``i``."""

    bound: int

    def describe(self) -> str:
        return f"Min({self.bound})"


@dataclass(frozen=True)
class MaxVal(NodeTest):
    """``Max(i)``: a number strictly smaller than ``i``."""

    bound: int

    def describe(self) -> str:
        return f"Max({self.bound})"


@dataclass(frozen=True)
class MultOf(NodeTest):
    """``MultOf(i)``: a number that is a multiple of ``i``."""

    divisor: int

    def describe(self) -> str:
        return f"MultOf({self.divisor})"


@dataclass(frozen=True)
class MinCh(NodeTest):
    """``MinCh(i)``: the node has at least ``i`` children."""

    count: int

    def describe(self) -> str:
        return f"MinCh({self.count})"


@dataclass(frozen=True)
class MaxCh(NodeTest):
    """``MaxCh(i)``: the node has at most ``i`` children."""

    count: int

    def describe(self) -> str:
        return f"MaxCh({self.count})"


@dataclass(frozen=True)
class EqDocTest(NodeTest):
    """``~(A)``: the subtree at the node equals the document ``A``."""

    doc: JSONTree

    def describe(self) -> str:
        return f"~({self.doc.to_json()})"

    def doc_hash(self) -> int:
        return canonical_hash(self.doc, self.doc.root)


def nodes_satisfying_test(
    tree: JSONTree, test: NodeTest, *, exact_unique: bool = False
) -> frozenset[int]:
    """All nodes of ``tree`` satisfying ``test`` (set-at-a-time).

    Semantically ``{n | node_test_holds(tree, n, test)}``, but the test
    is dispatched once and the arena arrays are scanned in a tight
    loop -- this is the form the efficient evaluator's ``Atom`` case
    uses, where the per-node isinstance ladder of
    :func:`node_test_holds` showed up in profiles.
    """
    kinds = tree.node_kinds()
    values = tree.node_values()
    if isinstance(test, IsObject):
        wanted = Kind.OBJECT
    elif isinstance(test, IsArray):
        wanted = Kind.ARRAY
    elif isinstance(test, IsString):
        wanted = Kind.STRING
    elif isinstance(test, IsNumber):
        wanted = Kind.NUMBER
    else:
        wanted = None
    if wanted is not None:
        return frozenset(
            node for node, kind in enumerate(kinds) if kind is wanted
        )
    if isinstance(test, Pattern):
        matches = test.lang.matches
        return frozenset(
            node
            for node, kind in enumerate(kinds)
            if kind is Kind.STRING and matches(str(values[node]))
        )
    if isinstance(test, MinVal):
        bound = test.bound
        return frozenset(
            node
            for node, kind in enumerate(kinds)
            if kind is Kind.NUMBER
            and int(values[node]) > bound  # type: ignore[arg-type]
        )
    if isinstance(test, MaxVal):
        bound = test.bound
        return frozenset(
            node
            for node, kind in enumerate(kinds)
            if kind is Kind.NUMBER
            and int(values[node]) < bound  # type: ignore[arg-type]
        )
    return frozenset(
        node
        for node in tree.nodes()
        if node_test_holds(tree, node, test, exact_unique=exact_unique)
    )


def node_test_holds(
    tree: JSONTree, node: int, test: NodeTest, *, exact_unique: bool = False
) -> bool:
    """The satisfaction relation ``(J, n) |= test`` of Section 5.2.

    ``exact_unique=True`` switches ``Unique`` to the naive pairwise
    comparison (the paper's quadratic bound) instead of hash grouping;
    both are exact, only their running time differs.
    """
    kind = tree.kind(node)
    if isinstance(test, IsObject):
        return kind is Kind.OBJECT
    if isinstance(test, IsArray):
        return kind is Kind.ARRAY
    if isinstance(test, IsString):
        return kind is Kind.STRING
    if isinstance(test, IsNumber):
        return kind is Kind.NUMBER
    if isinstance(test, Unique):
        return kind is Kind.ARRAY and all_children_distinct(
            tree, node, exact_pairwise=exact_unique
        )
    if isinstance(test, Pattern):
        return kind is Kind.STRING and test.lang.matches(str(tree.value(node)))
    if isinstance(test, MinVal):
        return kind is Kind.NUMBER and int(tree.value(node)) > test.bound
    if isinstance(test, MaxVal):
        return kind is Kind.NUMBER and int(tree.value(node)) < test.bound
    if isinstance(test, MultOf):
        if kind is not Kind.NUMBER:
            return False
        value = int(tree.value(node))
        if test.divisor == 0:
            return value == 0
        return value % test.divisor == 0
    if isinstance(test, MinCh):
        return tree.num_children(node) >= test.count
    if isinstance(test, MaxCh):
        return tree.num_children(node) <= test.count
    if isinstance(test, EqDocTest):
        return subtree_equal(tree, node, test.doc, test.doc.root)
    raise TypeError(f"unknown node test {test!r}")
