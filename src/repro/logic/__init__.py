"""Shared logical vocabulary: the node tests of Section 5.2.

Both logics are parameterised by their atomic predicates (Theorem 2
shows JNL and JSL coincide once atomic predicates are exchanged), so
the ``NodeTests`` set lives here, importable by both
:mod:`repro.jnl` and :mod:`repro.jsl` without layering cycles.
"""

from repro.logic.nodetests import (
    EqDocTest,
    IsArray,
    IsNumber,
    IsObject,
    IsString,
    MaxCh,
    MaxVal,
    MinCh,
    MinVal,
    MultOf,
    NodeTest,
    Pattern,
    Unique,
    node_test_holds,
)

__all__ = [
    "NodeTest",
    "IsObject",
    "IsArray",
    "IsString",
    "IsNumber",
    "Unique",
    "Pattern",
    "MinVal",
    "MaxVal",
    "MultOf",
    "MinCh",
    "MaxCh",
    "EqDocTest",
    "node_test_holds",
]
