"""Bottom-up PTIME evaluation of recursive JSL (Proposition 9).

The paper's algorithm evaluates all subtrees of ``J`` "in a bottom-up
fashion, proceeding to higher height levels of J only when all the
previous levels have already been computed", resembling Datalog with
stratified negation.  This module implements it as a truth table:

* the *closure* is the set of all subformulas of every definition body
  and of the base expression;
* within one node, subformulas are ordered so that dependencies come
  first -- structural children for boolean connectives and, for a
  reference ``gamma``, its defining body.  Modal operators depend only
  on *children* of the node, which a post-order traversal has already
  completed.  Such an ordering exists precisely because the precedence
  graph is acyclic (well-formedness);
* one pass over the nodes in post-order fills a ``closure x nodes``
  boolean table in ``O(|Delta| * |J|)`` (plus the usual ``Unique``
  caveat of Proposition 6).

Everything is iterative, so trees deeper than Python's recursion limit
evaluate fine -- the Proposition 9 benchmark relies on this.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.jsl import ast
from repro.jsl.recursion import check_well_formed
from repro.logic.nodetests import node_test_holds
from repro.model.tree import JSONTree

__all__ = ["RecursiveJSLEvaluator", "satisfies_recursive"]


class RecursiveJSLEvaluator:
    """Evaluates a well-formed recursive JSL expression over one tree."""

    def __init__(
        self,
        tree: JSONTree,
        expression: ast.RecursiveJSL,
        *,
        exact_unique: bool = False,
    ) -> None:
        check_well_formed(expression)
        self.tree = tree
        self.expression = expression
        self.exact_unique = exact_unique
        self._definitions = expression.definition_map()
        self._order = self._dependency_order()
        self._table: dict[ast.Formula, bytearray] | None = None

    # ------------------------------------------------------------------

    def _dependency_order(self) -> list[ast.Formula]:
        """Same-node dependency order over the closure (topological)."""

        def same_node_deps(formula: ast.Formula) -> list[ast.Formula]:
            if isinstance(formula, ast.Not):
                return [formula.operand]
            if isinstance(formula, (ast.And, ast.Or)):
                return [formula.left, formula.right]
            if isinstance(formula, ast.Ref):
                body = self._definitions.get(formula.name)
                if body is None:
                    raise WellFormednessError(
                        f"undefined symbol {formula.name!r}"
                    )
                return [body]
            # Modal bodies are evaluated at children (cross-node), and
            # they enter the closure through the work stack below.
            return []

        def cross_node_deps(formula: ast.Formula) -> list[ast.Formula]:
            if isinstance(formula, (ast.DiaKey, ast.BoxKey, ast.DiaIdx, ast.BoxIdx)):
                return [formula.body]
            return []

        order: list[ast.Formula] = []
        placed: set[ast.Formula] = set()
        in_progress: set[ast.Formula] = set()
        roots = [self.expression.base] + [
            body for _name, body in self.expression.definitions
        ]
        # Iterative post-order DFS over same-node dependencies; modal
        # bodies are added as independent roots (their evaluation order
        # relative to the parent does not matter within a node).
        stack: list[tuple[ast.Formula, bool]] = [
            (root, False) for root in reversed(roots)
        ]
        while stack:
            formula, expanded = stack.pop()
            if expanded:
                in_progress.discard(formula)
                if formula not in placed:
                    placed.add(formula)
                    order.append(formula)
                continue
            if formula in placed:
                continue
            if formula in in_progress:
                raise WellFormednessError(
                    "cyclic same-node dependency (ill-formed recursion)"
                )
            in_progress.add(formula)
            stack.append((formula, True))
            for dep in reversed(same_node_deps(formula)):
                if dep not in placed:
                    stack.append((dep, False))
            for body in cross_node_deps(formula):
                if body not in placed:
                    # Defer as an independent root: it has no same-node
                    # ordering constraint with ``formula``.
                    stack.insert(0, (body, False))
        return order

    # ------------------------------------------------------------------

    def _compute(self) -> dict[ast.Formula, bytearray]:
        if self._table is not None:
            return self._table
        tree = self.tree
        size = len(tree)
        table: dict[ast.Formula, bytearray] = {
            formula: bytearray(size) for formula in self._order
        }
        for node in tree.postorder():
            for formula in self._order:
                table[formula][node] = self._truth_at(table, formula, node)
        self._table = table
        return table

    def _truth_at(
        self,
        table: dict[ast.Formula, bytearray],
        formula: ast.Formula,
        node: int,
    ) -> bool:
        tree = self.tree
        if isinstance(formula, ast.Top):
            return True
        if isinstance(formula, ast.Not):
            return not table[formula.operand][node]
        if isinstance(formula, ast.And):
            return bool(table[formula.left][node] and table[formula.right][node])
        if isinstance(formula, ast.Or):
            return bool(table[formula.left][node] or table[formula.right][node])
        if isinstance(formula, ast.TestAtom):
            return node_test_holds(
                tree, node, formula.test, exact_unique=self.exact_unique
            )
        if isinstance(formula, ast.Ref):
            return bool(table[self._definitions[formula.name]][node])
        body = table[formula.body]
        if isinstance(formula, ast.DiaKey):
            return any(
                isinstance(label, str)
                and body[child]
                and formula.lang.matches(label)
                for label, child in tree.edges(node)
            )
        if isinstance(formula, ast.BoxKey):
            return all(
                body[child]
                for label, child in tree.edges(node)
                if isinstance(label, str) and formula.lang.matches(label)
            )
        if isinstance(formula, ast.DiaIdx):
            return any(
                isinstance(label, int)
                and body[child]
                and formula.low <= label
                and (formula.high is None or label <= formula.high)
                for label, child in tree.edges(node)
            )
        if isinstance(formula, ast.BoxIdx):
            return all(
                body[child]
                for label, child in tree.edges(node)
                if isinstance(label, int)
                and formula.low <= label
                and (formula.high is None or label <= formula.high)
            )
        raise TypeError(f"unknown JSL formula {formula!r}")

    # ------------------------------------------------------------------

    def satisfies(self, node: int | None = None) -> bool:
        """``J |= Delta`` at ``node`` (default: root)."""
        table = self._compute()
        target = self.tree.root if node is None else node
        return bool(table[self.expression.base][target])

    def nodes_satisfying_base(self) -> frozenset[int]:
        table = self._compute()
        row = table[self.expression.base]
        return frozenset(node for node in self.tree.nodes() if row[node])

    def ref_nodes(self, name: str) -> frozenset[int]:
        """Nodes where the definition ``name`` holds."""
        body = self._definitions.get(name)
        if body is None:
            raise WellFormednessError(f"undefined symbol {name!r}")
        table = self._compute()
        row = table[body]
        return frozenset(node for node in self.tree.nodes() if row[node])


def satisfies_recursive(
    tree: JSONTree,
    expression: ast.RecursiveJSL,
    node: int | None = None,
    *,
    exact_unique: bool = False,
) -> bool:
    """One-shot recursive evaluation (Proposition 9 algorithm)."""
    evaluator = RecursiveJSLEvaluator(tree, expression, exact_unique=exact_unique)
    return evaluator.satisfies(node)
